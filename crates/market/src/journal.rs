//! Crash-safe write-ahead journal of committed sales.
//!
//! The broker's striped ledger is volatile: a crashed `nimbus serve`
//! forgets its revenue books and transaction sequence. This module is the
//! durability layer behind `BrokerBuilder::journal(path)` — an append-only,
//! checksummed, length-prefixed log written *before* a sale is
//! acknowledged, so every commit a buyer ever saw an ACK for can be
//! replayed after process death.
//!
//! # File format
//!
//! ```text
//! +----------------+----------------------------------------------+
//! | "NIMBUSJ1" (8) | record | record | record | ...               |
//! +----------------+----------------------------------------------+
//!
//! record := len:u32 | crc32(payload):u32 | payload[len]
//!
//! payload := 0x01 SALE  tx_id:u64 epoch:u64 x:f64 price:f64 err:f64
//!                       has_nonce:u8 [nonce:u64]
//!          | 0x02 CHECKPOINT  next_tx:u64 max_epoch:u64
//!                             n_tx:u32  (seq:u64 x:f64 price:f64 err:f64)*
//!                             n_key:u32 (epoch:u64 nonce:u64 tx_id:u64)*
//!                             [n_acct:u32 (buyer:u64 spent_x:f64)*]
//!          | 0x03 SALE_BUYER  as SALE, then buyer:u64
//! ```
//!
//! `SALE_BUYER` (tag `0x03`) is a sale attributed to a buyer identity; on
//! replay it additionally charges the buyer's noise-budget account by the
//! sale's inverse NCP `x`. Anonymous sales keep the `0x01` tag, so journals
//! written before buyer accounting replay unchanged. The checkpoint's
//! trailing accounts section is likewise optional on decode: old
//! checkpoints simply replay with empty accounts.
//!
//! All integers and float bit patterns are big-endian, matching the wire
//! protocol. The CRC is CRC-32/ISO-HDLC (the IEEE polynomial used by zip
//! and Ethernet), implemented in-crate — the workspace vendors no
//! checksum crate.
//!
//! # Recovery contract
//!
//! [`Journal::open`] scans the log front to back and stops at the first
//! record that is torn (length prefix or body runs past EOF), corrupt
//! (checksum mismatch, unknown tag, malformed body) or semantically
//! invalid (duplicate transaction id, snapshot-epoch regression). The
//! valid prefix is salvaged — the file is truncated back to it so the next
//! append produces a clean log — and the typed [`JournalError`] that ended
//! the scan is reported in [`Recovery::truncated`]. A `CHECKPOINT` record
//! *replaces* all state accumulated before it, which is what makes
//! compaction (rewrite-the-log-as-one-checkpoint, then rename into place)
//! safe: either the old log or the new one is fully present, never a mix.
//!
//! # Fault injection
//!
//! Every byte the journal writes goes through a [`FaultyFile`], which
//! consults a shared [`FaultPlan`]: fail the nth write outright, write
//! half of it and then fail (a torn record), fail the nth fsync, or flip
//! one bit in the nth write (silent corruption caught by the checksum on
//! recovery). Plans are cheap `Arc` clones, so one plan can govern every
//! handle a journal opens across compactions and test restarts.

use crate::ledger::Transaction;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::time::Duration;

/// Leading bytes of every journal file.
pub const MAGIC: [u8; 8] = *b"NIMBUSJ1";

/// Hard cap on one record's payload; anything larger is treated as a
/// corrupt length prefix rather than an allocation request.
pub const MAX_RECORD_LEN: u32 = 1 << 20;

const TAG_SALE: u8 = 0x01;
const TAG_CHECKPOINT: u8 = 0x02;
const TAG_SALE_BUYER: u8 = 0x03;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), table-driven, std-only.
// ---------------------------------------------------------------------------

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        // nimbus-audit: allow(no-panic) — const-eval loop, i < 256 by the guard
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC-32/ISO-HDLC over `bytes` (the classic zip/Ethernet CRC).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        // nimbus-audit: allow(no-panic) — index masked to 0xFF, table has 256 entries
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed failures of the journal layer.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The file exists but does not start with the journal magic — refuse
    /// to touch it rather than truncate something that isn't ours.
    NotAJournal {
        /// Path of the offending file.
        path: PathBuf,
    },
    /// A record's length prefix or body runs past end of file (torn tail).
    TruncatedRecord {
        /// Byte offset of the record that tore.
        offset: u64,
    },
    /// A record's checksum does not match its payload.
    BadChecksum {
        /// Byte offset of the corrupt record.
        offset: u64,
    },
    /// A record decoded but its body is malformed (unknown tag, short
    /// body, trailing bytes).
    BadRecord {
        /// Byte offset of the malformed record.
        offset: u64,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// A sale record re-uses a transaction id already replayed.
    DuplicateTransaction {
        /// Byte offset of the duplicate.
        offset: u64,
        /// The repeated transaction id.
        tx_id: u64,
    },
    /// A sale record's snapshot epoch went backwards — epochs are monotone
    /// across the broker's lifetime, including restarts.
    EpochRegression {
        /// Byte offset of the regressing record.
        offset: u64,
        /// Highest epoch seen before it.
        previous: u64,
        /// The epoch it carried.
        got: u64,
    },
    /// A record's length prefix exceeds [`MAX_RECORD_LEN`].
    RecordTooLarge {
        /// Byte offset of the record.
        offset: u64,
        /// The claimed payload length.
        len: u32,
    },
    /// A previous append failed and the journal could not restore its
    /// durable tail; further appends are refused.
    Poisoned,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o: {e}"),
            JournalError::NotAJournal { path } => {
                write!(f, "{} is not a nimbus journal (bad magic)", path.display())
            }
            JournalError::TruncatedRecord { offset } => {
                write!(f, "torn record at byte {offset}")
            }
            JournalError::BadChecksum { offset } => {
                write!(f, "checksum mismatch at byte {offset}")
            }
            JournalError::BadRecord { offset, reason } => {
                write!(f, "malformed record at byte {offset}: {reason}")
            }
            JournalError::DuplicateTransaction { offset, tx_id } => {
                write!(f, "duplicate transaction id {tx_id} at byte {offset}")
            }
            JournalError::EpochRegression {
                offset,
                previous,
                got,
            } => write!(
                f,
                "snapshot epoch regressed from {previous} to {got} at byte {offset}"
            ),
            JournalError::RecordTooLarge { offset, len } => {
                write!(f, "record at byte {offset} claims {len} bytes")
            }
            JournalError::Poisoned => {
                write!(f, "journal poisoned by an unrecoverable append failure")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct FaultState {
    writes: AtomicU64,
    syncs: AtomicU64,
    fail_write_at: AtomicU64,
    short_write_at: AtomicU64,
    flip_bit_at: AtomicU64,
    fail_sync_at: AtomicU64,
}

/// A shared plan of injected filesystem faults.
///
/// Counters are 1-based and count *calls*, which for the journal means
/// records: the nth write is the nth record framed to disk (compaction
/// rewrites count too, since they share the plan). A threshold of 0
/// disables that fault. Clones share state, so the plan survives the
/// journal reopening handles.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Arc<FaultState>,
}

impl FaultPlan {
    /// A plan with no faults armed.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Fail the `n`th write outright (nothing reaches the file).
    pub fn fail_nth_write(self, n: u64) -> Self {
        self.inner.fail_write_at.store(n, Ordering::SeqCst);
        self
    }

    /// Write only half of the `n`th write, then fail — a torn record.
    pub fn short_nth_write(self, n: u64) -> Self {
        self.inner.short_write_at.store(n, Ordering::SeqCst);
        self
    }

    /// Silently flip one bit in the middle of the `n`th write.
    pub fn flip_bit_in_nth_write(self, n: u64) -> Self {
        self.inner.flip_bit_at.store(n, Ordering::SeqCst);
        self
    }

    /// Fail the `n`th fsync (data may or may not be durable).
    pub fn fail_nth_sync(self, n: u64) -> Self {
        self.inner.fail_sync_at.store(n, Ordering::SeqCst);
        self
    }

    /// Writes issued through this plan so far.
    pub fn writes_observed(&self) -> u64 {
        self.inner.writes.load(Ordering::SeqCst)
    }

    fn injected(kind: &str) -> io::Error {
        io::Error::other(format!("injected fault: {kind}"))
    }
}

/// A file handle that routes writes and syncs through a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultyFile {
    file: File,
    plan: FaultPlan,
}

impl FaultyFile {
    /// Wraps `file` so writes and syncs consult `plan`.
    pub fn new(file: File, plan: FaultPlan) -> Self {
        FaultyFile { file, plan }
    }

    /// Writes `buf` in full, subject to the plan's armed faults.
    pub fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let n = self.plan.inner.writes.fetch_add(1, Ordering::SeqCst) + 1;
        if n == self.plan.inner.fail_write_at.load(Ordering::SeqCst) {
            return Err(FaultPlan::injected("write failure"));
        }
        if n == self.plan.inner.short_write_at.load(Ordering::SeqCst) {
            // nimbus-audit: allow(no-panic) — len / 2 ≤ len, prefix slice is in bounds
            self.file.write_all(&buf[..buf.len() / 2])?;
            let _ = self.file.sync_data();
            return Err(FaultPlan::injected("short write"));
        }
        if n == self.plan.inner.flip_bit_at.load(Ordering::SeqCst) && !buf.is_empty() {
            let mut corrupt = buf.to_vec();
            let mid = corrupt.len() / 2;
            // nimbus-audit: allow(no-panic) — buf is non-empty here, so mid < len
            corrupt[mid] ^= 0x40;
            return self.file.write_all(&corrupt);
        }
        self.file.write_all(buf)
    }

    /// Flushes file data to stable storage, subject to the plan.
    pub fn sync_data(&mut self) -> io::Result<()> {
        let n = self.plan.inner.syncs.fetch_add(1, Ordering::SeqCst) + 1;
        if n == self.plan.inner.fail_sync_at.load(Ordering::SeqCst) {
            return Err(FaultPlan::injected("fsync failure"));
        }
        self.file.sync_data()
    }
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// One committed sale as journaled: the ledger row, the snapshot epoch it
/// was priced against, and the client's idempotency nonce if it sent one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaleRecord {
    /// The ledger transaction (id, inverse NCP, price, expected error).
    pub transaction: Transaction,
    /// Epoch of the snapshot the sale committed against.
    pub snapshot_epoch: u64,
    /// Client idempotency nonce; the dedup key is `(snapshot_epoch, nonce)`.
    pub nonce: Option<u64>,
    /// Buyer identity charged for this sale, if the commit carried one.
    /// Journaled under the `SALE_BUYER` tag; `None` keeps the legacy tag.
    pub buyer: Option<u64>,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_be_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).and_then(|b| b.first().copied())
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .and_then(|b| b.try_into().ok())
            .map(u32::from_be_bytes)
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .and_then(|b| b.try_into().ok())
            .map(u64::from_be_bytes)
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Encodes a sale payload (tag byte included, no frame header).
pub fn encode_sale_payload(record: &SaleRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(58);
    out.push(if record.buyer.is_some() {
        TAG_SALE_BUYER
    } else {
        TAG_SALE
    });
    put_u64(&mut out, record.transaction.sequence);
    put_u64(&mut out, record.snapshot_epoch);
    put_f64(&mut out, record.transaction.inverse_ncp);
    put_f64(&mut out, record.transaction.price);
    put_f64(&mut out, record.transaction.expected_error);
    match record.nonce {
        Some(nonce) => {
            out.push(1);
            put_u64(&mut out, nonce);
        }
        None => out.push(0),
    }
    if let Some(buyer) = record.buyer {
        put_u64(&mut out, buyer);
    }
    out
}

/// Frames a payload as it appears on disk: `len | crc | payload`.
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    out
}

fn encode_checkpoint_payload(state: &State) -> Vec<u8> {
    let mut out = Vec::with_capacity(17 + 32 * state.transactions.len());
    out.push(TAG_CHECKPOINT);
    put_u64(&mut out, state.next_tx);
    put_u64(&mut out, state.max_epoch);
    put_u32(&mut out, state.transactions.len() as u32);
    for t in &state.transactions {
        put_u64(&mut out, t.sequence);
        put_f64(&mut out, t.inverse_ncp);
        put_f64(&mut out, t.price);
        put_f64(&mut out, t.expected_error);
    }
    put_u32(&mut out, state.dedup.len() as u32);
    for &(epoch, nonce, tx_id) in &state.dedup {
        put_u64(&mut out, epoch);
        put_u64(&mut out, nonce);
        put_u64(&mut out, tx_id);
    }
    // Buyer accounts section (absent in pre-accounting checkpoints; the
    // decoder accepts both shapes). Transactions alone cannot rebuild this
    // — the checkpoint's transaction rows drop buyer attribution.
    put_u32(&mut out, state.accounts.len() as u32);
    for (&buyer, &spent) in &state.accounts {
        put_u64(&mut out, buyer);
        put_f64(&mut out, spent);
    }
    out
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// Everything a broker needs to resume its books after a restart.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Replayed transactions in journal (= commit) order.
    pub transactions: Vec<Transaction>,
    /// Replayed idempotency keys: `(snapshot_epoch, nonce, tx_id)`.
    pub dedup: Vec<(u64, u64, u64)>,
    /// The next transaction id to hand out (max replayed id + 1).
    pub next_tx_id: u64,
    /// The highest snapshot epoch any replayed sale committed against.
    pub max_epoch: u64,
    /// Replayed per-buyer noise-budget spend: `(buyer, cumulative x)`,
    /// sorted by buyer. Recomputed from `SALE_BUYER` records (and the last
    /// checkpoint's accounts section), so accounts always reconcile with
    /// the durable sale history.
    pub accounts: Vec<(u64, f64)>,
    /// Length of the valid prefix, in bytes (including the magic header).
    pub valid_bytes: u64,
    /// The typed error that ended the scan, if the log had a bad tail.
    /// The file has already been truncated back to `valid_bytes`.
    pub truncated: Option<JournalError>,
}

impl Recovery {
    /// Revenue across all replayed sales. Folds from `+0.0` (std's `Sum`
    /// starts at `-0.0`) so an empty recovery reports plain zero.
    pub fn total_revenue(&self) -> f64 {
        self.transactions.iter().fold(0.0, |acc, t| acc + t.price)
    }
}

#[derive(Debug, Default, Clone)]
struct State {
    transactions: Vec<Transaction>,
    dedup: Vec<(u64, u64, u64)>,
    accounts: BTreeMap<u64, f64>,
    next_tx: u64,
    max_epoch: u64,
}

impl State {
    fn apply_sale(&mut self, record: &SaleRecord) {
        self.transactions.push(record.transaction);
        self.next_tx = self.next_tx.max(record.transaction.sequence + 1);
        self.max_epoch = self.max_epoch.max(record.snapshot_epoch);
        if let Some(nonce) = record.nonce {
            self.dedup
                .push((record.snapshot_epoch, nonce, record.transaction.sequence));
        }
        if let Some(buyer) = record.buyer {
            *self.accounts.entry(buyer).or_insert(0.0) += record.transaction.inverse_ncp;
        }
    }
}

/// Big-endian `u32` at `at`, `None` when the slice is too short.
fn be_u32(bytes: &[u8], at: usize) -> Option<u32> {
    bytes
        .get(at..at.checked_add(4)?)?
        .try_into()
        .ok()
        .map(u32::from_be_bytes)
}

/// Scans `bytes` (after the magic) and returns the replayed state, the
/// valid byte count and the error (if any) that stopped the scan.
fn scan(bytes: &[u8]) -> (State, u64, Option<JournalError>) {
    let mut state = State::default();
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut pos: usize = 0;
    let err = loop {
        if pos == bytes.len() {
            break None;
        }
        let offset = (MAGIC.len() + pos) as u64;
        let len = match be_u32(bytes, pos) {
            Some(len) => len,
            None => break Some(JournalError::TruncatedRecord { offset }),
        };
        if len > MAX_RECORD_LEN {
            break Some(JournalError::RecordTooLarge { offset, len });
        }
        let crc = match be_u32(bytes, pos + 4) {
            Some(crc) => crc,
            None => break Some(JournalError::TruncatedRecord { offset }),
        };
        let body_start = pos + 8;
        let body_end = match body_start.checked_add(len as usize) {
            Some(end) => end,
            None => break Some(JournalError::TruncatedRecord { offset }),
        };
        let payload = match bytes.get(body_start..body_end) {
            Some(payload) => payload,
            None => break Some(JournalError::TruncatedRecord { offset }),
        };
        if crc32(payload) != crc {
            break Some(JournalError::BadChecksum { offset });
        }
        match decode_payload(payload, offset, &mut state, &mut seen) {
            Ok(()) => pos = body_end,
            Err(e) => break Some(e),
        }
    };
    let valid = if err.is_some() {
        (MAGIC.len() + pos) as u64
    } else {
        (MAGIC.len() + bytes.len()) as u64
    };
    (state, valid, err)
}

fn decode_payload(
    payload: &[u8],
    offset: u64,
    state: &mut State,
    seen: &mut BTreeSet<u64>,
) -> Result<(), JournalError> {
    let bad = |reason| JournalError::BadRecord { offset, reason };
    let mut c = Cursor::new(payload);
    match c.u8().ok_or(bad("empty payload"))? {
        tag @ (TAG_SALE | TAG_SALE_BUYER) => {
            let tx_id = c.u64().ok_or(bad("short sale record"))?;
            let epoch = c.u64().ok_or(bad("short sale record"))?;
            let inverse_ncp = c.f64().ok_or(bad("short sale record"))?;
            let price = c.f64().ok_or(bad("short sale record"))?;
            let expected_error = c.f64().ok_or(bad("short sale record"))?;
            let nonce = match c.u8().ok_or(bad("short sale record"))? {
                0 => None,
                1 => Some(c.u64().ok_or(bad("short sale record"))?),
                _ => return Err(bad("bad nonce flag")),
            };
            let buyer = if tag == TAG_SALE_BUYER {
                Some(c.u64().ok_or(bad("short sale record"))?)
            } else {
                None
            };
            if !c.done() {
                return Err(bad("trailing bytes in sale record"));
            }
            if !seen.insert(tx_id) {
                return Err(JournalError::DuplicateTransaction { offset, tx_id });
            }
            if epoch < state.max_epoch {
                return Err(JournalError::EpochRegression {
                    offset,
                    previous: state.max_epoch,
                    got: epoch,
                });
            }
            state.apply_sale(&SaleRecord {
                transaction: Transaction {
                    sequence: tx_id,
                    inverse_ncp,
                    price,
                    expected_error,
                },
                snapshot_epoch: epoch,
                nonce,
                buyer,
            });
            Ok(())
        }
        TAG_CHECKPOINT => {
            let next_tx = c.u64().ok_or(bad("short checkpoint"))?;
            let max_epoch = c.u64().ok_or(bad("short checkpoint"))?;
            let n_tx = c.u32().ok_or(bad("short checkpoint"))? as usize;
            let mut fresh = State {
                next_tx,
                max_epoch,
                ..State::default()
            };
            let mut fresh_seen = BTreeSet::new();
            for _ in 0..n_tx {
                let sequence = c.u64().ok_or(bad("short checkpoint"))?;
                let inverse_ncp = c.f64().ok_or(bad("short checkpoint"))?;
                let price = c.f64().ok_or(bad("short checkpoint"))?;
                let expected_error = c.f64().ok_or(bad("short checkpoint"))?;
                if !fresh_seen.insert(sequence) {
                    return Err(JournalError::DuplicateTransaction {
                        offset,
                        tx_id: sequence,
                    });
                }
                if sequence >= next_tx {
                    return Err(bad("checkpoint transaction beyond next_tx"));
                }
                fresh.transactions.push(Transaction {
                    sequence,
                    inverse_ncp,
                    price,
                    expected_error,
                });
            }
            let n_key = c.u32().ok_or(bad("short checkpoint"))? as usize;
            for _ in 0..n_key {
                let epoch = c.u64().ok_or(bad("short checkpoint"))?;
                let nonce = c.u64().ok_or(bad("short checkpoint"))?;
                let tx_id = c.u64().ok_or(bad("short checkpoint"))?;
                fresh.dedup.push((epoch, nonce, tx_id));
            }
            // Optional trailing accounts section: checkpoints written
            // before buyer accounting end here and replay with no accounts.
            if !c.done() {
                let n_acct = c.u32().ok_or(bad("short checkpoint"))? as usize;
                for _ in 0..n_acct {
                    let buyer = c.u64().ok_or(bad("short checkpoint"))?;
                    let spent = c.f64().ok_or(bad("short checkpoint"))?;
                    if fresh.accounts.insert(buyer, spent).is_some() {
                        return Err(bad("duplicate buyer account in checkpoint"));
                    }
                }
            }
            if !c.done() {
                return Err(bad("trailing bytes in checkpoint"));
            }
            *state = fresh;
            *seen = fresh_seen;
            Ok(())
        }
        _ => Err(bad("unknown record tag")),
    }
}

// ---------------------------------------------------------------------------
// The journal proper
// ---------------------------------------------------------------------------

/// An open write-ahead journal: an append handle plus the in-memory mirror
/// of everything durably on disk (the mirror is what checkpoints write).
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: FaultyFile,
    plan: FaultPlan,
    durable_len: u64,
    state: State,
    appends_since_checkpoint: u64,
    checkpoint_every: u64,
    poisoned: bool,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path` and replays it.
    ///
    /// `checkpoint_every` compacts the log after that many sale appends
    /// since the last checkpoint (`0` disables automatic compaction).
    /// A bad tail is salvaged and reported in [`Recovery::truncated`];
    /// a file that is not a journal at all is a hard error.
    pub fn open(
        path: impl Into<PathBuf>,
        checkpoint_every: u64,
        plan: FaultPlan,
    ) -> Result<(Journal, Recovery), JournalError> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let (state, valid_bytes, truncated) = if bytes.is_empty() {
            // Fresh journal: stamp the header.
            file.write_all(&MAGIC)?;
            file.sync_data()?;
            (State::default(), MAGIC.len() as u64, None)
        } else if bytes.len() < MAGIC.len() {
            if MAGIC.starts_with(&bytes) {
                // A crash tore the header itself; restart it.
                file.set_len(0)?;
                file.seek(SeekFrom::Start(0))?;
                file.write_all(&MAGIC)?;
                file.sync_data()?;
                (
                    State::default(),
                    MAGIC.len() as u64,
                    Some(JournalError::TruncatedRecord { offset: 0 }),
                )
            } else {
                return Err(JournalError::NotAJournal { path });
            }
        } else if bytes.get(..MAGIC.len()) != Some(MAGIC.as_slice()) {
            return Err(JournalError::NotAJournal { path });
        } else {
            let (state, valid, err) = scan(bytes.get(MAGIC.len()..).unwrap_or(&[]));
            if err.is_some() {
                file.set_len(valid)?;
            }
            (state, valid, err)
        };

        file.sync_data()?;
        file.seek(SeekFrom::Start(valid_bytes))?;
        let recovery = Recovery {
            transactions: state.transactions.clone(),
            dedup: state.dedup.clone(),
            accounts: state.accounts.iter().map(|(&b, &s)| (b, s)).collect(),
            next_tx_id: state.next_tx,
            max_epoch: state.max_epoch,
            valid_bytes,
            truncated,
        };
        Ok((
            Journal {
                path,
                file: FaultyFile::new(file, plan.clone()),
                plan,
                durable_len: valid_bytes,
                state,
                appends_since_checkpoint: 0,
                checkpoint_every,
                poisoned: false,
            },
            recovery,
        ))
    }

    /// Path this journal writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes durably framed so far (header included).
    pub fn durable_len(&self) -> u64 {
        self.durable_len
    }

    /// Sales currently mirrored in memory (i.e. replayable from disk).
    pub fn sales(&self) -> usize {
        self.state.transactions.len()
    }

    /// Whether an unrecoverable append failure disabled this journal.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Appends one sale and fsyncs before returning — the ACK barrier.
    ///
    /// On failure the sale is *not* durable and the broker must not
    /// acknowledge it: the journal truncates back to its last durable
    /// length so the log stays clean, poisoning itself only if even that
    /// repair fails.
    pub fn append_sale(&mut self, record: &SaleRecord) -> Result<(), JournalError> {
        if self.poisoned {
            return Err(JournalError::Poisoned);
        }
        // Journaled epochs must be non-decreasing (recovery treats a
        // regression as corruption). A commit that raced a re-open and
        // lost is refused here — by the time its older epoch reaches the
        // journal, a newer snapshot has already sold, so the quote is
        // stale and the buyer should re-quote.
        if record.snapshot_epoch < self.state.max_epoch {
            return Err(JournalError::EpochRegression {
                offset: self.durable_len,
                previous: self.state.max_epoch,
                got: record.snapshot_epoch,
            });
        }
        let frame = frame_record(&encode_sale_payload(record));
        if let Err(e) = self
            .file
            .write_all(&frame)
            .and_then(|()| self.file.sync_data())
        {
            self.repair();
            return Err(e.into());
        }
        self.durable_len += frame.len() as u64;
        self.state.apply_sale(record);
        self.appends_since_checkpoint += 1;
        if self.checkpoint_every > 0 && self.appends_since_checkpoint >= self.checkpoint_every {
            // Compaction is an optimization: if it fails the old log is
            // still complete, so the error is deliberately swallowed.
            let _ = self.checkpoint();
        }
        Ok(())
    }

    /// Appends many sales with **one** write and **one** fsync — the group
    /// commit primitive. Returns one result per input record, in order.
    ///
    /// Each record is validated exactly like [`Journal::append_sale`]
    /// would validate it (epoch monotonicity, evolving as the batch is
    /// admitted); rejected records are skipped without aborting the batch.
    /// All admitted records are framed into a single buffer and flushed
    /// with one `write + sync_data`, so the durability barrier costs one
    /// fsync regardless of batch size while every acknowledged record is
    /// still durable before its `Ok` is returned. If the combined write or
    /// the fsync fails, *no* admitted record is durable: the journal
    /// truncates back to its durable tail (exactly as a failed single
    /// append would) and every admitted record reports the failure.
    ///
    /// Under a [`FaultPlan`] the whole batch counts as one write call and
    /// one sync call.
    pub fn append_sales(&mut self, records: &[SaleRecord]) -> Vec<Result<(), JournalError>> {
        if self.poisoned {
            return records
                .iter()
                .map(|_| Err(JournalError::Poisoned))
                .collect();
        }
        let mut results: Vec<Result<(), JournalError>> = Vec::with_capacity(records.len());
        let mut admitted: Vec<usize> = Vec::with_capacity(records.len());
        let mut buf: Vec<u8> = Vec::new();
        let mut max_epoch = self.state.max_epoch;
        for (i, record) in records.iter().enumerate() {
            if record.snapshot_epoch < max_epoch {
                results.push(Err(JournalError::EpochRegression {
                    offset: self.durable_len,
                    previous: max_epoch,
                    got: record.snapshot_epoch,
                }));
                continue;
            }
            max_epoch = max_epoch.max(record.snapshot_epoch);
            buf.extend_from_slice(&frame_record(&encode_sale_payload(record)));
            admitted.push(i);
            results.push(Ok(()));
        }
        if admitted.is_empty() {
            return results;
        }
        if let Err(e) = self
            .file
            .write_all(&buf)
            .and_then(|()| self.file.sync_data())
        {
            self.repair();
            // `io::Error` is not `Clone`: every admitted record gets a
            // freshly built error carrying the original failure's text.
            let reason = e.to_string();
            for &i in &admitted {
                if let Some(slot) = results.get_mut(i) {
                    *slot = Err(JournalError::Io(io::Error::other(format!(
                        "group append failed: {reason}"
                    ))));
                }
            }
            return results;
        }
        self.durable_len += buf.len() as u64;
        for &i in &admitted {
            if let Some(record) = records.get(i) {
                self.state.apply_sale(record);
            }
        }
        self.appends_since_checkpoint += admitted.len() as u64;
        if self.checkpoint_every > 0 && self.appends_since_checkpoint >= self.checkpoint_every {
            // As in `append_sale`: compaction failure never fails the batch.
            let _ = self.checkpoint();
        }
        results
    }

    /// Rewrites the log as `magic + one checkpoint record`, atomically
    /// (write a temp file, fsync, rename over the journal). On any error
    /// the existing log is left untouched and remains authoritative.
    pub fn checkpoint(&mut self) -> Result<(), JournalError> {
        if self.poisoned {
            return Err(JournalError::Poisoned);
        }
        let tmp = self.path.with_extension("journal.tmp");
        let result = (|| -> Result<u64, JournalError> {
            let frame = frame_record(&encode_checkpoint_payload(&self.state));
            let raw = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            let mut out = FaultyFile::new(raw, self.plan.clone());
            out.write_all(&MAGIC)?;
            out.write_all(&frame)?;
            out.sync_data()?;
            std::fs::rename(&tmp, &self.path)?;
            Ok((MAGIC.len() + frame.len()) as u64)
        })();
        match result {
            Ok(new_len) => {
                // The rename replaced the inode under our append handle;
                // reopen on the new file.
                let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
                file.seek(SeekFrom::End(0))?;
                self.file = FaultyFile::new(file, self.plan.clone());
                self.durable_len = new_len;
                self.appends_since_checkpoint = 0;
                Ok(())
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// After a failed append, restore the file to its last durable length
    /// so the next append starts from a clean tail.
    fn repair(&mut self) {
        let restored = (|| -> io::Result<()> {
            let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
            file.set_len(self.durable_len)?;
            file.sync_data()?;
            file.seek(SeekFrom::Start(self.durable_len))?;
            self.file = FaultyFile::new(file, self.plan.clone());
            Ok(())
        })();
        if restored.is_err() {
            self.poisoned = true;
        }
    }
}

// ---------------------------------------------------------------------------
// Group commit
// ---------------------------------------------------------------------------

/// State shared between concurrent committers: the records waiting for the
/// next flush and the results of flushes already performed.
#[derive(Debug, Default)]
struct GroupQueue {
    /// `(ticket, record)` pairs waiting to be flushed, in arrival order.
    queue: Vec<(u64, SaleRecord)>,
    /// Results of flushed tickets, awaiting pickup by their submitters.
    results: BTreeMap<u64, Result<(), JournalError>>,
    /// Next ticket to hand out.
    next_ticket: u64,
    /// Whether some thread is currently leading a flush.
    flushing: bool,
}

/// A commit batcher that coalesces concurrent [`Journal::append_sale`]
/// calls into one `write + fsync` — *group commit*.
///
/// Committers enqueue their record and the first to find no flush in
/// progress becomes the **leader**: it drains the whole queue, appends it
/// with [`Journal::append_sales`] (one fsync for the batch) and deposits
/// the per-record results for the other committers to pick up. Arrivals
/// during a flush simply queue behind the running fsync and are absorbed
/// by the next leader, so batching emerges from contention with **zero
/// added latency** for an uncontended committer.
///
/// An optional gathering `window` (default zero = disabled) makes the
/// leader wait up to that long for stragglers before flushing — bounded
/// extra latency traded for bigger batches. The ACK barrier is preserved
/// either way: `append_sale` only returns `Ok` after the record's fsync
/// completed, so everything the PR 4 recovery corpus guarantees about
/// single appends holds verbatim for batched ones.
#[derive(Debug)]
pub struct GroupCommit {
    /// The journal, locked only by the flush leader (and checkpoints).
    journal: StdMutex<Journal>,
    shared: StdMutex<GroupQueue>,
    /// Signals a windowing leader that another record arrived.
    arrived: Condvar,
    /// Signals waiters that a flush deposited results.
    done: Condvar,
    window: Duration,
}

impl GroupCommit {
    /// Wraps `journal` in a batcher with the given gathering `window`
    /// (clamped to 500µs; `Duration::ZERO` disables gathering).
    pub fn new(journal: Journal, window: Duration) -> Self {
        GroupCommit {
            journal: StdMutex::new(journal),
            shared: StdMutex::new(GroupQueue::default()),
            arrived: Condvar::new(),
            done: Condvar::new(),
            window: window.min(MAX_GROUP_COMMIT_WINDOW),
        }
    }

    /// The configured gathering window.
    pub fn window(&self) -> Duration {
        self.window
    }

    fn lock_shared(&self) -> StdMutexGuard<'_, GroupQueue> {
        // A poisoning panic can only come from a peer committer; the queue
        // state is a plain value store and stays coherent, so recover it.
        self.shared.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn lock_journal(&self) -> StdMutexGuard<'_, Journal> {
        self.journal.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Runs `f` on the wrapped journal (checkpoints, recovery inspection).
    /// Waits for any in-flight flush to release the journal lock.
    pub fn with_journal<R>(&self, f: impl FnOnce(&mut Journal) -> R) -> R {
        f(&mut self.lock_journal())
    }

    /// Compacts the wrapped journal (see [`Journal::checkpoint`]).
    pub fn checkpoint(&self) -> Result<(), JournalError> {
        // nimbus-audit: allow(lock-order) — the journal mutex is the durability serializer: compaction must exclude concurrent flushes
        self.lock_journal().checkpoint()
    }

    /// Appends one sale through the batcher, returning once the record is
    /// durable (its fsync — possibly shared with concurrent committers —
    /// has completed) or failed.
    pub fn append_sale(&self, record: SaleRecord) -> Result<(), JournalError> {
        self.append_sales(vec![record])
            .pop()
            .unwrap_or(Err(JournalError::Poisoned))
    }

    /// Appends many sales through the batcher with one enqueue, returning
    /// one result per record in order. The records share a flush with any
    /// concurrent committers, so `BATCH_COMMIT` and group commit compound:
    /// one fsync can cover many batches.
    pub fn append_sales(&self, records: Vec<SaleRecord>) -> Vec<Result<(), JournalError>> {
        let n = records.len() as u64;
        if n == 0 {
            return Vec::new();
        }
        let mut shared = self.lock_shared();
        let first = shared.next_ticket;
        shared.next_ticket += n;
        for (k, record) in records.into_iter().enumerate() {
            shared.queue.push((first + k as u64, record));
        }
        // Wake a leader gathering inside its window: work has arrived.
        self.arrived.notify_one();
        loop {
            let mine = first..first + n;
            if mine.clone().all(|t| shared.results.contains_key(&t)) {
                return mine
                    .map(|t| {
                        shared
                            .results
                            .remove(&t)
                            .unwrap_or(Err(JournalError::Poisoned))
                    })
                    .collect();
            }
            if !shared.flushing {
                // Become the leader for the next flush.
                shared.flushing = true;
                if !self.window.is_zero() {
                    // Bounded gathering: wait up to `window` for stragglers
                    // (or until one arrives and wakes us).
                    let (guard, _) = self
                        .arrived
                        .wait_timeout(shared, self.window)
                        .unwrap_or_else(|p| p.into_inner());
                    shared = guard;
                }
                let batch = std::mem::take(&mut shared.queue);
                drop(shared);
                let records: Vec<SaleRecord> = batch.iter().map(|(_, r)| *r).collect();
                // nimbus-audit: allow(lock-order) — by design: the leader holds the journal mutex exactly for the group fsync; followers park on the condvar, not the disk
                let results = self.lock_journal().append_sales(&records);
                shared = self.lock_shared();
                for ((ticket, _), result) in batch.into_iter().zip(results) {
                    shared.results.insert(ticket, result);
                }
                shared.flushing = false;
                self.done.notify_all();
                continue;
            }
            shared = self.done.wait(shared).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// Upper bound on the group-commit gathering window — latency added to a
/// commit must stay bounded even under misconfiguration.
pub const MAX_GROUP_COMMIT_WINDOW: Duration = Duration::from_micros(500);

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering as AtomicOrdering};

    fn temp_path(name: &str) -> PathBuf {
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let n = COUNTER.fetch_add(1, AtomicOrdering::SeqCst);
        std::env::temp_dir().join(format!(
            "nimbus-journal-{}-{}-{}.journal",
            std::process::id(),
            name,
            n
        ))
    }

    fn sale(tx_id: u64, epoch: u64, nonce: Option<u64>) -> SaleRecord {
        SaleRecord {
            transaction: Transaction {
                sequence: tx_id,
                inverse_ncp: 10.0 + tx_id as f64,
                price: 2.5 * (tx_id + 1) as f64,
                expected_error: 0.1 / (tx_id + 1) as f64,
            },
            snapshot_epoch: epoch,
            nonce,
            buyer: None,
        }
    }

    fn buyer_sale(tx_id: u64, epoch: u64, nonce: Option<u64>, buyer: u64) -> SaleRecord {
        SaleRecord {
            buyer: Some(buyer),
            ..sale(tx_id, epoch, nonce)
        }
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn fresh_journal_roundtrips_sales() {
        let path = temp_path("roundtrip");
        {
            let (mut j, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
            assert!(rec.transactions.is_empty());
            assert_eq!(rec.next_tx_id, 0);
            j.append_sale(&sale(0, 1, None)).unwrap();
            j.append_sale(&sale(1, 1, Some(0xDEAD))).unwrap();
            j.append_sale(&sale(2, 2, None)).unwrap();
            assert_eq!(j.sales(), 3);
        }
        let (_, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
        assert!(rec.truncated.is_none());
        assert_eq!(rec.transactions.len(), 3);
        assert_eq!(rec.transactions[1], sale(1, 1, None).transaction);
        assert_eq!(rec.next_tx_id, 3);
        assert_eq!(rec.max_epoch, 2);
        assert_eq!(rec.dedup, vec![(1, 0xDEAD, 1)]);
        assert!((rec.total_revenue() - (2.5 + 5.0 + 7.5)).abs() < 1e-12);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn buyer_sales_roundtrip_and_accumulate_accounts() {
        let path = temp_path("buyer-roundtrip");
        {
            let (mut j, _) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
            j.append_sale(&buyer_sale(0, 1, Some(7), 500)).unwrap();
            j.append_sale(&sale(1, 1, None)).unwrap();
            j.append_sale(&buyer_sale(2, 2, None, 500)).unwrap();
            j.append_sale(&buyer_sale(3, 2, None, 501)).unwrap();
        }
        let (_, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
        assert!(rec.truncated.is_none());
        assert_eq!(rec.transactions.len(), 4);
        // x charges are 10 + tx_id; buyer 500 bought tx 0 and tx 2.
        assert_eq!(rec.accounts, vec![(500, 10.0 + 12.0), (501, 13.0)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_preserves_buyer_accounts() {
        let path = temp_path("buyer-checkpoint");
        {
            let (mut j, _) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
            j.append_sale(&buyer_sale(0, 1, None, 9)).unwrap();
            j.append_sale(&buyer_sale(1, 1, None, 9)).unwrap();
            j.checkpoint().unwrap();
            // Post-checkpoint charges stack on the checkpointed spend.
            j.append_sale(&buyer_sale(2, 1, None, 9)).unwrap();
        }
        let (_, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
        assert!(rec.truncated.is_none());
        assert_eq!(rec.accounts, vec![(9, 10.0 + 11.0 + 12.0)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_without_accounts_section_still_decodes() {
        // A checkpoint frame ending right after the dedup section (the
        // pre-accounting shape) must replay with empty accounts.
        let path = temp_path("old-checkpoint");
        let mut payload = Vec::new();
        payload.push(TAG_CHECKPOINT);
        put_u64(&mut payload, 5); // next_tx
        put_u64(&mut payload, 2); // max_epoch
        put_u32(&mut payload, 1); // n_tx
        put_u64(&mut payload, 4);
        put_f64(&mut payload, 14.0);
        put_f64(&mut payload, 12.5);
        put_f64(&mut payload, 0.02);
        put_u32(&mut payload, 0); // n_key — and nothing after it
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&frame_record(&payload));
        std::fs::write(&path, &bytes).unwrap();
        let (_, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
        assert!(rec.truncated.is_none());
        assert_eq!(rec.transactions.len(), 1);
        assert!(rec.accounts.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_compacts_and_preserves_state() {
        let path = temp_path("checkpoint");
        let grown = {
            let (mut j, _) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
            for i in 0..20 {
                let nonce = if i < 2 { Some(1000 + i) } else { None };
                j.append_sale(&sale(i, 1, nonce)).unwrap();
            }
            let grown = j.durable_len();
            j.checkpoint().unwrap();
            assert!(j.durable_len() < grown);
            // The journal stays appendable after compaction.
            j.append_sale(&sale(20, 2, None)).unwrap();
            grown
        };
        let (j, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
        assert!(rec.truncated.is_none());
        assert_eq!(rec.transactions.len(), 21);
        assert_eq!(rec.next_tx_id, 21);
        assert_eq!(rec.max_epoch, 2);
        assert_eq!(rec.dedup.len(), 2);
        assert!(j.durable_len() < grown);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn automatic_checkpoint_bounds_file_size() {
        let path = temp_path("auto-checkpoint");
        let (mut j, _) = Journal::open(&path, 4, FaultPlan::new()).unwrap();
        for i in 0..100 {
            j.append_sale(&sale(i, 1, None)).unwrap();
        }
        // 100 appends at ~50 bytes each would be ~5 KB; compaction keeps
        // the live log near one checkpoint of 100 rows (~3.2 KB) instead
        // of the full append history.
        let uncompacted = 100 * frame_record(&encode_sale_payload(&sale(0, 1, None))).len() as u64;
        assert!(j.durable_len() < uncompacted);
        drop(j);
        let (_, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
        assert_eq!(rec.transactions.len(), 100);
        assert_eq!(rec.next_tx_id, 100);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_salvaged_and_log_stays_usable() {
        let path = temp_path("torn");
        {
            let (mut j, _) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
            j.append_sale(&sale(0, 1, None)).unwrap();
            j.append_sale(&sale(1, 1, None)).unwrap();
        }
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-append: half a record at the tail.
        let frame = frame_record(&encode_sale_payload(&sale(2, 1, None)));
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&frame[..frame.len() / 2]).unwrap();
        drop(f);
        let (mut j, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
        assert!(matches!(
            rec.truncated,
            Some(JournalError::TruncatedRecord { offset }) if offset == clean_len
        ));
        assert_eq!(rec.transactions.len(), 2);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        // Appending after salvage produces a clean log.
        j.append_sale(&sale(2, 1, None)).unwrap();
        drop(j);
        let (_, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
        assert!(rec.truncated.is_none());
        assert_eq!(rec.transactions.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_is_caught_by_checksum_on_recovery() {
        let path = temp_path("bitflip");
        // The magic header goes through the raw handle, so appends count
        // from write 1: corrupt the second sale.
        let plan = FaultPlan::new().flip_bit_in_nth_write(2);
        {
            let (mut j, _) = Journal::open(&path, 0, plan).unwrap();
            j.append_sale(&sale(0, 1, None)).unwrap();
            j.append_sale(&sale(1, 1, None)).unwrap(); // silently corrupted
            j.append_sale(&sale(2, 1, None)).unwrap();
        }
        let (_, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
        assert!(matches!(
            rec.truncated,
            Some(JournalError::BadChecksum { .. })
        ));
        // Only the prefix before the corruption survives.
        assert_eq!(rec.transactions.len(), 1);
        assert_eq!(rec.next_tx_id, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_write_is_not_acked_and_journal_recovers() {
        let path = temp_path("failwrite");
        let plan = FaultPlan::new().fail_nth_write(2);
        let (mut j, _) = Journal::open(&path, 0, plan).unwrap();
        j.append_sale(&sale(0, 1, None)).unwrap();
        assert!(matches!(
            j.append_sale(&sale(1, 1, None)),
            Err(JournalError::Io(_))
        ));
        assert!(!j.is_poisoned());
        // The journal repaired its tail; the next append succeeds.
        j.append_sale(&sale(2, 1, None)).unwrap();
        drop(j);
        let (_, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
        assert!(rec.truncated.is_none());
        let ids: Vec<u64> = rec.transactions.iter().map(|t| t.sequence).collect();
        assert_eq!(ids, vec![0, 2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn short_write_leaves_no_partial_record_behind() {
        let path = temp_path("shortwrite");
        let plan = FaultPlan::new().short_nth_write(1);
        let (mut j, _) = Journal::open(&path, 0, plan).unwrap();
        assert!(j.append_sale(&sale(0, 1, None)).is_err());
        j.append_sale(&sale(1, 1, None)).unwrap();
        drop(j);
        let (_, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
        assert!(rec.truncated.is_none());
        let ids: Vec<u64> = rec.transactions.iter().map(|t| t.sequence).collect();
        assert_eq!(ids, vec![1]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fsync_failure_fails_the_append() {
        let path = temp_path("fsync");
        let plan = FaultPlan::new().fail_nth_sync(1);
        let (mut j, _) = Journal::open(&path, 0, plan).unwrap();
        assert!(matches!(
            j.append_sale(&sale(0, 1, None)),
            Err(JournalError::Io(_))
        ));
        j.append_sale(&sale(1, 1, None)).unwrap();
        drop(j);
        let (_, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
        let ids: Vec<u64> = rec.transactions.iter().map(|t| t.sequence).collect();
        assert_eq!(ids, vec![1]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn refuses_files_that_are_not_journals() {
        let path = temp_path("notajournal");
        std::fs::write(&path, b"hello world, definitely not a journal").unwrap();
        assert!(matches!(
            Journal::open(&path, 0, FaultPlan::new()),
            Err(JournalError::NotAJournal { .. })
        ));
        // The file was not destroyed by the refusal.
        assert!(std::fs::read(&path).unwrap().starts_with(b"hello"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_sales_is_one_write_one_fsync() {
        let path = temp_path("groupwrite");
        let plan = FaultPlan::new();
        let (mut j, _) = Journal::open(&path, 0, plan.clone()).unwrap();
        let results = j.append_sales(&[sale(0, 1, None), sale(1, 1, Some(7)), sale(2, 2, None)]);
        assert!(results.iter().all(|r| r.is_ok()));
        // The magic header goes through the raw handle; the whole batch is
        // exactly one faultable write.
        assert_eq!(plan.writes_observed(), 1);
        assert_eq!(j.sales(), 3);
        drop(j);
        let (_, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
        assert!(rec.truncated.is_none());
        assert_eq!(rec.transactions.len(), 3);
        assert_eq!(rec.max_epoch, 2);
        assert_eq!(rec.dedup, vec![(1, 7, 1)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_sales_rejects_epoch_regressions_per_record() {
        let path = temp_path("groupepoch");
        let (mut j, _) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
        j.append_sale(&sale(0, 5, None)).unwrap();
        let results = j.append_sales(&[
            sale(1, 4, None), // regresses vs the journaled epoch 5
            sale(2, 5, None),
            sale(3, 6, None),
            sale(4, 5, None), // regresses vs epoch 6 admitted earlier in the batch
        ]);
        assert!(matches!(
            results[0],
            Err(JournalError::EpochRegression {
                previous: 5,
                got: 4,
                ..
            })
        ));
        assert!(results[1].is_ok());
        assert!(results[2].is_ok());
        assert!(matches!(
            results[3],
            Err(JournalError::EpochRegression {
                previous: 6,
                got: 5,
                ..
            })
        ));
        drop(j);
        let (_, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
        assert!(rec.truncated.is_none());
        let ids: Vec<u64> = rec.transactions.iter().map(|t| t.sequence).collect();
        assert_eq!(ids, vec![0, 2, 3]);
        assert_eq!(rec.max_epoch, 6);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_group_write_acks_nothing_and_repairs() {
        let path = temp_path("groupfail");
        let plan = FaultPlan::new().fail_nth_write(2);
        let (mut j, _) = Journal::open(&path, 0, plan).unwrap();
        j.append_sale(&sale(0, 1, None)).unwrap();
        let results = j.append_sales(&[sale(1, 1, None), sale(2, 1, None), sale(3, 1, None)]);
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(matches!(r, Err(JournalError::Io(_))), "{r:?}");
        }
        assert!(!j.is_poisoned());
        // The tail was repaired; appends keep working.
        j.append_sale(&sale(4, 1, None)).unwrap();
        drop(j);
        let (_, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
        assert!(rec.truncated.is_none());
        let ids: Vec<u64> = rec.transactions.iter().map(|t| t.sequence).collect();
        assert_eq!(ids, vec![0, 4]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_batches_a_multi_record_enqueue_into_one_write() {
        let path = temp_path("groupcommit-batch");
        let plan = FaultPlan::new();
        let (j, _) = Journal::open(&path, 0, plan.clone()).unwrap();
        let gc = GroupCommit::new(j, Duration::ZERO);
        let results = gc.append_sales(vec![sale(0, 1, None), sale(1, 1, None), sale(2, 1, None)]);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(plan.writes_observed(), 1);
        gc.checkpoint().unwrap();
        assert_eq!(gc.with_journal(|j| j.sales()), 3);
        drop(gc);
        let (_, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
        assert_eq!(rec.transactions.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_is_correct_under_concurrency() {
        let path = temp_path("groupcommit-threads");
        let plan = FaultPlan::new();
        let (j, _) = Journal::open(&path, 0, plan.clone()).unwrap();
        let gc = std::sync::Arc::new(GroupCommit::new(j, Duration::from_micros(200)));
        let threads = 8;
        let per_thread = 16;
        std::thread::scope(|s| {
            for t in 0..threads {
                let gc = gc.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        let id = (t * per_thread + i) as u64;
                        gc.append_sale(sale(id, 1, None)).unwrap();
                    }
                });
            }
        });
        // Every record became durable exactly once…
        let (_, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
        assert!(rec.truncated.is_none());
        assert_eq!(rec.transactions.len(), threads * per_thread);
        let mut ids: Vec<u64> = rec.transactions.iter().map(|t| t.sequence).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..(threads * per_thread) as u64).collect::<Vec<_>>());
        // …and contention produced at least some coalescing: fewer flushes
        // than records (each flush is one faultable write).
        assert!(
            plan.writes_observed() <= (threads * per_thread) as u64,
            "flushes {} > records",
            plan.writes_observed()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_clamps_the_window() {
        let path = temp_path("groupcommit-window");
        let (j, _) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
        let gc = GroupCommit::new(j, Duration::from_secs(10));
        assert_eq!(gc.window(), MAX_GROUP_COMMIT_WINDOW);
        drop(gc);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn error_display_is_informative() {
        let e = JournalError::EpochRegression {
            offset: 42,
            previous: 3,
            got: 1,
        };
        assert!(e.to_string().contains("regressed"));
        assert!(JournalError::Poisoned.to_string().contains("poisoned"));
        assert!(JournalError::BadChecksum { offset: 9 }
            .to_string()
            .contains("checksum"));
    }
}
