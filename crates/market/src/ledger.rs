//! The broker's transaction ledger.

/// One completed sale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transaction {
    /// Monotone sequence number assigned by the ledger.
    pub sequence: u64,
    /// Inverse NCP of the version sold.
    pub inverse_ncp: f64,
    /// Price paid.
    pub price: f64,
    /// Expected error quoted at sale time.
    pub expected_error: f64,
}

/// Append-only record of every sale, with revenue accounting.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    transactions: Vec<Transaction>,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Records a sale, assigning the next sequence number.
    pub fn record(&mut self, inverse_ncp: f64, price: f64, expected_error: f64) -> Transaction {
        let tx = Transaction {
            sequence: self.transactions.len() as u64,
            inverse_ncp,
            price,
            expected_error,
        };
        self.transactions.push(tx);
        tx
    }

    /// All transactions in order.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Number of sales.
    pub fn count(&self) -> usize {
        self.transactions.len()
    }

    /// Total revenue across all sales.
    pub fn total_revenue(&self) -> f64 {
        self.transactions.iter().map(|t| t.price).sum()
    }

    /// Average sale price (`None` when no sales yet).
    pub fn average_price(&self) -> Option<f64> {
        if self.transactions.is_empty() {
            None
        } else {
            Some(self.total_revenue() / self.transactions.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_sequence() {
        let mut l = Ledger::new();
        let t0 = l.record(10.0, 5.0, 0.1);
        let t1 = l.record(20.0, 8.0, 0.05);
        assert_eq!(t0.sequence, 0);
        assert_eq!(t1.sequence, 1);
        assert_eq!(l.count(), 2);
        assert_eq!(l.transactions()[1].price, 8.0);
    }

    #[test]
    fn revenue_accounting() {
        let mut l = Ledger::new();
        assert_eq!(l.total_revenue(), 0.0);
        assert!(l.average_price().is_none());
        l.record(1.0, 3.0, 1.0);
        l.record(2.0, 7.0, 0.5);
        assert_eq!(l.total_revenue(), 10.0);
        assert_eq!(l.average_price(), Some(5.0));
    }
}
