//! The broker's transaction ledger.
//!
//! Two representations back the broker's accounting:
//!
//! * [`Ledger`] — the classic append-only, sequence-ordered record, used
//!   standalone and as the merged read-side view;
//! * [`LedgerShard`] — one stripe of the broker's sharded write path.
//!   Concurrent sales hash their (globally unique, atomically assigned)
//!   transaction id onto a stripe, so writers contend only 1/N of the time.
//!   [`Ledger::from_shards`] merges stripes back into a sequence-ordered
//!   [`Ledger`] on demand.

/// One completed sale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transaction {
    /// Monotone sequence number assigned by the ledger.
    pub sequence: u64,
    /// Inverse NCP of the version sold.
    pub inverse_ncp: f64,
    /// Price paid.
    pub price: f64,
    /// Expected error quoted at sale time.
    pub expected_error: f64,
}

/// Append-only record of every sale, with revenue accounting.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    transactions: Vec<Transaction>,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Records a sale, assigning the next sequence number.
    pub fn record(&mut self, inverse_ncp: f64, price: f64, expected_error: f64) -> Transaction {
        let tx = Transaction {
            sequence: self.transactions.len() as u64,
            inverse_ncp,
            price,
            expected_error,
        };
        self.transactions.push(tx);
        tx
    }

    /// All transactions in order.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Number of sales.
    pub fn count(&self) -> usize {
        self.transactions.len()
    }

    /// Total revenue across all sales.
    pub fn total_revenue(&self) -> f64 {
        self.transactions.iter().map(|t| t.price).sum()
    }

    /// Average sale price (`None` when no sales yet).
    pub fn average_price(&self) -> Option<f64> {
        if self.transactions.is_empty() {
            None
        } else {
            Some(self.total_revenue() / self.transactions.len() as f64)
        }
    }

    /// Merges striped shards into one ledger ordered by global transaction
    /// id — i.e. replay order equals commit order, regardless of how the
    /// broker's concurrent writers interleaved onto stripes (a stripe's
    /// local order is arrival order, which under contention is *not* id
    /// order even within the stripe). Sequence numbers come pre-assigned
    /// by the broker's atomic counter and are globally unique, so the
    /// merge is a sort on them, not a renumbering; `sort_unstable` is safe
    /// because no two transactions share an id.
    pub fn from_shards<'a>(shards: impl IntoIterator<Item = &'a LedgerShard>) -> Self {
        let mut transactions: Vec<Transaction> = shards
            .into_iter()
            .flat_map(|s| s.transactions().iter().copied())
            .collect();
        transactions.sort_unstable_by_key(|t| t.sequence);
        Ledger { transactions }
    }
}

/// One stripe of the broker's sharded ledger.
///
/// Unlike [`Ledger`], a shard does not assign sequence numbers: the broker
/// hands each sale a globally unique transaction id from an atomic counter
/// and records it on the stripe `id % N`. That keeps ids unique and totals
/// exact under any thread interleaving, while writers only contend with the
/// ~1/N of sales that hash to the same stripe.
#[derive(Debug, Clone, Default)]
pub struct LedgerShard {
    transactions: Vec<Transaction>,
}

impl LedgerShard {
    /// Creates an empty stripe.
    pub fn new() -> Self {
        LedgerShard::default()
    }

    /// Records a sale under a broker-assigned sequence number.
    pub fn record_assigned(
        &mut self,
        sequence: u64,
        inverse_ncp: f64,
        price: f64,
        expected_error: f64,
    ) -> Transaction {
        let tx = Transaction {
            sequence,
            inverse_ncp,
            price,
            expected_error,
        };
        self.transactions.push(tx);
        tx
    }

    /// Transactions on this stripe, in local arrival order.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Number of sales on this stripe.
    pub fn count(&self) -> usize {
        self.transactions.len()
    }

    /// Revenue collected on this stripe.
    pub fn total_revenue(&self) -> f64 {
        self.transactions.iter().map(|t| t.price).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_sequence() {
        let mut l = Ledger::new();
        let t0 = l.record(10.0, 5.0, 0.1);
        let t1 = l.record(20.0, 8.0, 0.05);
        assert_eq!(t0.sequence, 0);
        assert_eq!(t1.sequence, 1);
        assert_eq!(l.count(), 2);
        assert_eq!(l.transactions()[1].price, 8.0);
    }

    #[test]
    fn shards_merge_in_sequence_order() {
        let mut a = LedgerShard::new();
        let mut b = LedgerShard::new();
        // Interleaved ids landing on two stripes, recorded out of order.
        b.record_assigned(1, 20.0, 8.0, 0.05);
        a.record_assigned(2, 30.0, 9.0, 0.03);
        a.record_assigned(0, 10.0, 5.0, 0.1);
        let merged = Ledger::from_shards([&a, &b]);
        let seqs: Vec<u64> = merged.transactions().iter().map(|t| t.sequence).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(merged.count(), 3);
        assert!((merged.total_revenue() - 22.0).abs() < 1e-12);
        assert!((a.total_revenue() + b.total_revenue() - 22.0).abs() < 1e-12);
        assert_eq!(a.count() + b.count(), 3);
    }

    #[test]
    fn replay_order_equals_commit_order() {
        // Commit order is transaction-id order. Scatter ids over stripes
        // with deliberately shuffled arrival order — within stripes too,
        // as happens when two commits on one stripe race — and assert the
        // merged ledger replays exactly in id order.
        let n_shards = 4;
        let mut shards: Vec<LedgerShard> = (0..n_shards).map(|_| LedgerShard::new()).collect();
        let ids: Vec<u64> = vec![7, 0, 13, 2, 9, 4, 15, 6, 1, 8, 3, 10, 5, 12, 11, 14];
        for &id in &ids {
            shards[(id % n_shards as u64) as usize].record_assigned(id, id as f64, 1.0, 0.1);
        }
        // Stripe 1 received 13 before 9 before 1 — arrival order is not
        // id order inside the stripe.
        let stripe1: Vec<u64> = shards[1]
            .transactions()
            .iter()
            .map(|t| t.sequence)
            .collect();
        assert_eq!(stripe1, vec![13, 9, 1, 5]);
        let merged = Ledger::from_shards(shards.iter());
        let seqs: Vec<u64> = merged.transactions().iter().map(|t| t.sequence).collect();
        assert_eq!(seqs, (0..16).collect::<Vec<u64>>());
        for t in merged.transactions() {
            assert_eq!(t.inverse_ncp, t.sequence as f64);
        }
    }

    #[test]
    fn revenue_accounting() {
        let mut l = Ledger::new();
        assert_eq!(l.total_revenue(), 0.0);
        assert!(l.average_price().is_none());
        l.record(1.0, 3.0, 1.0);
        l.record(2.0, 7.0, 0.5);
        assert_eq!(l.total_revenue(), 10.0);
        assert_eq!(l.average_price(), Some(5.0));
    }
}
