//! End-to-end marketplace simulation — the Nimbus demo flow.
//!
//! Wires every layer of the reproduction together into the three-agent
//! market of Figure 1:
//!
//! * the [`seller::Seller`] lists a dataset together with the value and
//!   demand curves obtained from market research ([`curves`]);
//! * the [`broker::Broker`] trains the optimal model once (caching it
//!   behind a lock — the one-time cost of §4), transforms the curves
//!   through the error-inverse, optimizes prices with `nimbus-optim`, and
//!   serves buyers through the three §3.2 purchase options, recording every
//!   sale in a [`ledger::Ledger`];
//! * [`buyer::BuyerPopulation`] draws buyers from the demand curve, each
//!   with a valuation from the value curve, who decide to buy iff the
//!   posted price does not exceed their valuation.
//!
//! [`simulation`] runs strategy comparisons (MBP vs Lin/MaxC/MedC/OptC vs
//! the exact brute force) on a shared population — the machinery behind
//! Figures 7–14 — and stages the arbitrage demonstration of Figure 3.
//! [`transform`] implements the Figure 2(a)→(b) pipeline: market research
//! expressed over *model error* is mapped onto the inverse-NCP axis through
//! the (analytic or Monte-Carlo) error-transformation curve.
//! [`parallel`] adds a small crossbeam-scoped map used to fan experiment
//! sweeps across cores. [`persist`] round-trips a posted market through
//! CSV, re-validating arbitrage-freeness on load. [`marketplace`] hosts a
//! menu of models (§3.1), one broker per listing.

pub mod broker;
pub mod buyer;
pub mod curves;
pub mod error;
pub mod ledger;
pub mod marketplace;
pub mod parallel;
pub mod persist;
pub mod seller;
pub mod simulation;
pub mod transform;

pub use broker::{Broker, BrokerConfig, PurchaseRequest, Sale};
pub use buyer::{Buyer, BuyerPopulation};
pub use curves::{DemandCurve, MarketCurves, ValueCurve};
pub use error::MarketError;
pub use ledger::{Ledger, Transaction};
pub use marketplace::{Marketplace, MenuEntry};
pub use persist::PostedMarket;
pub use seller::Seller;
pub use simulation::{compare_strategies, PricingStrategy, StrategyOutcome};
pub use transform::transform_research;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, MarketError>;
