// Unit tests exercise failure paths where `unwrap`/`panic!` are the
// point; the serving-path hygiene lints apply to shipped code only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::panic))]

//! End-to-end marketplace simulation — the Nimbus demo flow.
//!
//! Wires every layer of the reproduction together into the three-agent
//! market of Figure 1:
//!
//! * the [`seller::Seller`] lists a dataset together with the value and
//!   demand curves obtained from market research ([`curves`]);
//! * the [`broker::Broker`] trains the optimal model once (caching it
//!   behind a lock — the one-time cost of §4), transforms the curves
//!   through the error-inverse, optimizes prices with `nimbus-optim`, and
//!   serves buyers through the three §3.2 purchase options via an explicit
//!   quote→commit protocol, recording every sale in a sharded
//!   [`ledger::Ledger`];
//! * [`buyer::BuyerPopulation`] draws buyers from the demand curve, each
//!   with a valuation from the value curve, who decide to buy iff the
//!   posted price does not exceed their valuation.
//!
//! # Concurrency model
//!
//! The broker is built for a read-mostly serving workload: the posted menu
//! is immutable between `open_market()` calls, while many buyers quote and
//! purchase concurrently. Three mechanisms make the hot path scale with
//! cores instead of serializing on locks:
//!
//! 1. **Snapshot publication.** `Broker::open_market()` bundles the revenue
//!    problem, the optimized price table and the trained optimal model into
//!    an immutable [`broker::MarketSnapshot`] and publishes it through an
//!    atomic pointer. Every read — `quote`, `quote_request`, `posted_menu`,
//!    `expected_revenue` — is one atomic load, **no lock**. Superseded
//!    snapshots stay alive in an append-only history for the broker's
//!    lifetime, and each carries an epoch: a [`broker::Quote`] issued
//!    against epoch `k` is rejected with [`MarketError::QuoteExpired`] if
//!    epoch `k+1` has been posted by the time the buyer commits.
//! 2. **Striped ledger.** Commits record onto one of N
//!    `Mutex<`[`ledger::LedgerShard`]`>` stripes chosen by transaction id;
//!    [`Broker::ledger`](broker::Broker::ledger) merges the stripes into a
//!    sequence-ordered [`ledger::Ledger`] on demand.
//! 3. **Per-transaction RNG streams.** Each sale's transaction id comes
//!    from an atomic counter and seeds its own
//!    `seeded_rng(split_stream(seed, id))`, so the noise a buyer receives
//!    is a pure function of `(seed, transaction id, x)` — reproducible
//!    under any thread interleaving, with zero shared RNG state on the
//!    serving path.
//!
//! [`broker::Broker::purchase_batch`] fans a slice of requests over
//! [`parallel::parallel_map`] to exploit all of this from a single call.
//!
//! [`simulation`] runs strategy comparisons (MBP vs Lin/MaxC/MedC/OptC vs
//! the exact brute force) on a shared population — the machinery behind
//! Figures 7–14 — and stages the arbitrage demonstration of Figure 3.
//! [`transform`] implements the Figure 2(a)→(b) pipeline: market research
//! expressed over *model error* is mapped onto the inverse-NCP axis through
//! the (analytic or Monte-Carlo) error-transformation curve.
//! [`parallel`] re-exports the order-preserving crossbeam-scoped map (now
//! hosted in `nimbus-core`, which also uses it for deterministic parallel
//! error-curve estimation) used to fan experiment sweeps across cores.
//! [`persist`] round-trips a posted market through
//! CSV, re-validating arbitrage-freeness on load. [`marketplace`] hosts a
//! menu of models (§3.1), one broker per listing, behind a lock-free
//! listing directory with a draft → published → retired lifecycle and
//! per-listing journals recovered in parallel.

pub mod account;
pub mod broker;
pub mod buyer;
pub mod clock;
pub mod curves;
pub mod error;
pub mod journal;
pub mod ledger;
pub mod marketplace;
pub mod parallel;
pub mod persist;
pub mod seller;
pub mod simulation;
pub mod transform;

pub use account::BuyerAccounts;
pub use broker::{
    BatchCommitItem, Broker, BrokerBuilder, BrokerConfig, MarketSnapshot, MarketStats,
    PurchaseRequest, Quote, Sale,
};
pub use buyer::{Buyer, BuyerPopulation};
pub use curves::{DemandCurve, MarketCurves, ValueCurve};
pub use error::MarketError;
pub use journal::{
    FaultPlan, FaultyFile, GroupCommit, Journal, JournalError, Recovery, SaleRecord,
    MAX_GROUP_COMMIT_WINDOW,
};
pub use ledger::{Ledger, LedgerShard, Transaction};
pub use marketplace::{
    ListingBuilder, ListingMeta, ListingState, ListingStats, Marketplace, MarketplaceStats,
    MenuEntry,
};
pub use persist::PostedMarket;
pub use seller::Seller;
pub use simulation::{compare_strategies, PricingStrategy, StrategyOutcome};
pub use transform::transform_research;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, MarketError>;
