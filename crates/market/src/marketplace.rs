//! The multi-model marketplace of §3.1, grown into a concurrent routing
//! layer for the serving stack.
//!
//! "The broker specifies a menu of ML models `M` she can support (e.g.
//! logistic regression for classification and ordinary least squares for
//! regression)." A [`Marketplace`] manages one [`Broker`] per listing;
//! buyers first pick a listing from the menu (the first step of the §3.2
//! interaction) and then purchase a version of its model.
//!
//! # Concurrency model
//!
//! The marketplace sits on the serving hot path: every networked request
//! resolves a listing name before it touches a broker. Lookup therefore
//! uses the same snapshot-publication idiom as the broker itself — the
//! listing directory is an immutable [`BTreeMap`] published through one
//! `AtomicPtr`, so [`Marketplace::route`] is a single Acquire load plus a
//! map lookup, **no lock**. Admin mutations (listing, publishing,
//! retiring) serialize on a directory lock, build a new directory, and
//! publish it with a Release store; superseded directories stay alive in
//! an append-only history for the marketplace's lifetime, exactly like
//! superseded market snapshots inside a broker.
//!
//! # Listing lifecycle
//!
//! Every listing walks a one-way state machine:
//!
//! ```text
//! draft ──publish──▶ published ──retire──▶ retired
//!                        │  ▲
//!                        └──┘ publish (re-publish: new snapshot epoch,
//!                                      outstanding quotes expire)
//! ```
//!
//! * **Draft** listings exist in the directory but refuse to quote or
//!   sell ([`MarketError::MarketNotOpen`]).
//! * **Publishing** opens (or re-opens) the broker's market. Re-publishing
//!   reuses the broker's epoch protocol: a new [`crate::MarketSnapshot`]
//!   is posted, and every quote priced against the previous epoch dies
//!   with [`MarketError::QuoteExpired`] at commit time.
//! * **Retired** listings answer every request with
//!   [`MarketError::ListingRetired`]; retirement is terminal. The ledger
//!   and journal stay intact for audit.
//!
//! Listing names are stable routing keys: creating a second listing under
//! an existing name is [`MarketError::DuplicateListing`], never a silent
//! replace.
//!
//! # Per-listing journals
//!
//! Each listing may journal its sales independently. The canonical disk
//! layout is one directory per listing under a common root —
//! `<root>/<listing>/journal.log`, see [`Marketplace::journal_path_for`]
//! and [`ListingBuilder::journal_root`] — and
//! [`Marketplace::open_listings`] recovers all listings **in parallel**
//! on startup (journal replay and the one-time model training both
//! parallelize across listings).

use crate::broker::{Broker, BrokerBuilder, BrokerConfig, PurchaseRequest, Quote, Sale};
use crate::journal::FaultPlan;
use crate::parallel::parallel_map;
use crate::seller::Seller;
use crate::{MarketError, Result};
use nimbus_core::RandomizedMechanism;
use nimbus_ml::{ErrorMetric, Trainer};
use nimbus_optim::RevenueProblem;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

/// Where a listing is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListingState {
    /// Created but not yet published: visible to admins, refuses buyers.
    Draft,
    /// Live: quotes and sells against the broker's published snapshot.
    Published,
    /// Permanently withdrawn: every request is answered with
    /// [`MarketError::ListingRetired`].
    Retired,
}

impl ListingState {
    /// Stable lowercase name (wire and metrics label).
    pub fn name(self) -> &'static str {
        match self {
            ListingState::Draft => "draft",
            ListingState::Published => "published",
            ListingState::Retired => "retired",
        }
    }
}

/// Descriptive metadata for one listing, returned alongside its broker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListingMeta {
    /// The listing name buyers route by.
    pub name: String,
    /// Trainer identifier (e.g. `"linear_regression"`).
    pub model_kind: &'static str,
    /// Mechanism identifier (e.g. `"gaussian"`).
    pub mechanism: &'static str,
    /// Lifecycle state at snapshot time.
    pub state: ListingState,
}

/// One entry of the broker's model menu.
#[derive(Debug, Clone)]
pub struct MenuEntry {
    /// The listing name the buyer selects by.
    pub name: String,
    /// Trainer identifier (e.g. `"linear_regression"`).
    pub model_kind: &'static str,
    /// Mechanism identifier (e.g. `"gaussian"`).
    pub mechanism: &'static str,
    /// Lifecycle state of the listing.
    pub state: ListingState,
    /// Whether the market for this model is open and serving.
    pub open: bool,
    /// Expected revenue of the posted prices (0 until published).
    pub expected_revenue: f64,
}

/// Accounting for one listing inside a [`MarketplaceStats`] snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ListingStats {
    /// Listing name.
    pub name: String,
    /// Lifecycle state at snapshot time.
    pub state: ListingState,
    /// Epoch of the listing's published snapshot (0 before first publish).
    pub epoch: u64,
    /// Expected revenue of the posted prices (0 before first publish).
    pub expected_revenue: f64,
    /// Completed sales so far.
    pub sales: u64,
    /// Revenue collected so far.
    pub revenue: f64,
    /// Commits rejected because a buyer's noise budget was exhausted.
    pub budget_rejects: u64,
    /// Buyers whose remaining noise budget is zero (0 when unmetered).
    pub exhausted_buyers: u64,
}

/// One consistent accounting snapshot over the whole marketplace:
/// per-listing counters and their aggregates, all read against a single
/// listing directory (a listing cannot appear in the totals but be
/// missing from the rows, or vice versa).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MarketplaceStats {
    /// Per-listing accounting, in name order.
    pub listings: Vec<ListingStats>,
    /// Sales summed over every listing row above.
    pub total_sales: u64,
    /// Revenue summed over every listing row above.
    pub total_revenue: f64,
}

/// One listed model: its broker plus routing metadata. Clones share the
/// broker.
#[derive(Clone)]
struct Listing {
    broker: Arc<Broker>,
    model_kind: &'static str,
    mechanism: &'static str,
    state: ListingState,
}

impl Listing {
    fn meta(&self, name: &str) -> ListingMeta {
        ListingMeta {
            name: name.to_string(),
            model_kind: self.model_kind,
            mechanism: self.mechanism,
            state: self.state,
        }
    }
}

/// An immutable published view of the listing directory.
struct Directory {
    listings: BTreeMap<String, Listing>,
}

/// What a [`ListingBuilder`] wraps: either a broker configuration still
/// to be built, or an adopted pre-built broker.
enum ListingSource {
    Build(Box<BrokerBuilder>),
    Ready(Arc<Broker>),
}

/// Validating builder for one marketplace listing, mirroring
/// [`BrokerBuilder`]: name, model configuration (trainer, mechanism,
/// metric, pricing), and the journal path.
///
/// ```no_run
/// # use nimbus_market::{Marketplace, marketplace::ListingBuilder, Seller};
/// # fn doc(seller: Seller) -> nimbus_market::Result<()> {
/// let market = Marketplace::new();
/// market.list(
///     ListingBuilder::new("acme-data", seller)
///         .model_kind("linear_regression")
///         .n_price_points(50)
///         .seed(42),
/// )?;
/// # Ok(()) }
/// ```
pub struct ListingBuilder {
    name: String,
    source: ListingSource,
    model_kind: &'static str,
    mechanism_name: &'static str,
    journal_root: Option<PathBuf>,
    reconfigured_ready: bool,
}

impl ListingBuilder {
    /// Starts a builder for a new listing over `seller`'s dataset, with
    /// [`BrokerBuilder`]'s defaults (ridge trainer, Gaussian mechanism,
    /// square-loss metric).
    pub fn new(name: impl Into<String>, seller: Seller) -> Self {
        ListingBuilder {
            name: name.into(),
            source: ListingSource::Build(Box::new(BrokerBuilder::new(seller))),
            model_kind: "linear_regression",
            mechanism_name: "gaussian",
            journal_root: None,
            reconfigured_ready: false,
        }
    }

    /// Adopts an already-built broker (e.g. one that replayed its own
    /// journal) instead of building one. Broker-configuration setters are
    /// rejected at build time on an adopted broker.
    pub fn from_broker(name: impl Into<String>, broker: Arc<Broker>) -> Self {
        ListingBuilder {
            name: name.into(),
            source: ListingSource::Ready(broker),
            model_kind: "linear_regression",
            mechanism_name: "gaussian",
            journal_root: None,
            reconfigured_ready: false,
        }
    }

    /// Sets the menu's trainer identifier (e.g. `"logistic_regression"`).
    pub fn model_kind(mut self, kind: &'static str) -> Self {
        self.model_kind = kind;
        self
    }

    /// Sets the menu's mechanism identifier (e.g. `"laplace"`).
    pub fn mechanism_name(mut self, name: &'static str) -> Self {
        self.mechanism_name = name;
        self
    }

    fn map_builder(mut self, f: impl FnOnce(BrokerBuilder) -> BrokerBuilder) -> Self {
        match self.source {
            ListingSource::Build(builder) => {
                self.source = ListingSource::Build(Box::new(f(*builder)));
            }
            ListingSource::Ready(_) => self.reconfigured_ready = true,
        }
        self
    }

    /// Sets the trainer (see [`BrokerBuilder::trainer`]).
    pub fn trainer(self, trainer: impl Trainer + Send + Sync + 'static) -> Self {
        self.map_builder(|b| b.trainer(trainer))
    }

    /// Sets an already-boxed trainer (for dynamic selection).
    pub fn boxed_trainer(self, trainer: Box<dyn Trainer + Send + Sync>) -> Self {
        self.map_builder(|b| b.boxed_trainer(trainer))
    }

    /// Sets the randomized mechanism (see [`BrokerBuilder::mechanism`]).
    pub fn mechanism(self, mechanism: impl RandomizedMechanism + Send + Sync + 'static) -> Self {
        self.map_builder(|b| b.mechanism(mechanism))
    }

    /// Sets an already-boxed mechanism (for dynamic selection).
    pub fn boxed_mechanism(self, mechanism: Box<dyn RandomizedMechanism + Send + Sync>) -> Self {
        self.map_builder(|b| b.boxed_mechanism(mechanism))
    }

    /// Sets the buyer-facing error metric the market is denominated in.
    pub fn error_metric(self, metric: impl ErrorMetric + 'static) -> Self {
        self.map_builder(|b| b.error_metric(metric))
    }

    /// Sets an already-boxed error metric (for dynamic selection).
    pub fn boxed_error_metric(self, metric: Box<dyn ErrorMetric>) -> Self {
        self.map_builder(|b| b.boxed_error_metric(metric))
    }

    /// Replaces the whole broker configuration.
    pub fn config(self, config: BrokerConfig) -> Self {
        self.map_builder(|b| b.config(config))
    }

    /// Sets the number of menu price points.
    pub fn n_price_points(self, n: usize) -> Self {
        self.map_builder(|b| b.n_price_points(n))
    }

    /// Sets the Monte-Carlo samples per δ for error-curve estimation.
    pub fn error_curve_samples(self, n: usize) -> Self {
        self.map_builder(|b| b.error_curve_samples(n))
    }

    /// Sets the seed of the broker's deterministic noise streams.
    pub fn seed(self, seed: u64) -> Self {
        self.map_builder(|b| b.seed(seed))
    }

    /// Sets the commission rate.
    pub fn commission(self, rate: f64) -> Self {
        self.map_builder(|b| b.commission(rate))
    }

    /// Journals every committed sale to the write-ahead log at `path`.
    pub fn journal(self, path: impl Into<PathBuf>) -> Self {
        self.map_builder(|b| b.journal(path))
    }

    /// Journals under the marketplace's canonical per-listing layout:
    /// `<root>/<listing>/journal.log`. The listing's directory is created
    /// at build time; an existing journal there is replayed.
    pub fn journal_root(mut self, root: impl Into<PathBuf>) -> Self {
        self.journal_root = Some(root.into());
        self
    }

    /// Compacts the journal after this many appends.
    pub fn journal_checkpoint_every(self, every: u64) -> Self {
        self.map_builder(|b| b.journal_checkpoint_every(every))
    }

    /// Coalesces concurrent journal appends into one write + fsync per
    /// `window` (clamped to [`crate::journal::MAX_GROUP_COMMIT_WINDOW`]).
    /// Zero (the default) fsyncs every sale individually.
    pub fn journal_group_commit_window(self, window: std::time::Duration) -> Self {
        self.map_builder(|b| b.journal_group_commit_window(window))
    }

    /// Routes journal writes through an injected [`FaultPlan`].
    pub fn journal_faults(self, plan: FaultPlan) -> Self {
        self.map_builder(|b| b.journal_faults(plan))
    }

    /// Caps each buyer's cumulative noise-precision spend `Σ x` on this
    /// listing (see [`BrokerBuilder::buyer_budget`]).
    pub fn buyer_budget(self, budget: f64) -> Self {
        self.map_builder(|b| b.buyer_budget(budget))
    }

    /// Validates and builds the listing (state: draft).
    fn into_listing(self) -> Result<(String, Listing)> {
        if self.name.is_empty() || self.name.len() > 256 {
            return Err(MarketError::InvalidConfig {
                reason: format!(
                    "listing name must be 1..=256 bytes, got {} bytes",
                    self.name.len()
                ),
            });
        }
        if self.name.contains(['/', '\\', '\0']) {
            return Err(MarketError::InvalidConfig {
                reason: format!(
                    "listing name {:?} may not contain path separators or NUL",
                    self.name
                ),
            });
        }
        if self.reconfigured_ready {
            return Err(MarketError::InvalidConfig {
                reason: format!(
                    "listing {:?} adopts a pre-built broker; its configuration cannot be changed",
                    self.name
                ),
            });
        }
        let broker = match self.source {
            ListingSource::Ready(broker) => {
                if self.journal_root.is_some() {
                    return Err(MarketError::InvalidConfig {
                        reason: format!(
                            "listing {:?} adopts a pre-built broker; configure its journal via BrokerBuilder",
                            self.name
                        ),
                    });
                }
                broker
            }
            ListingSource::Build(builder) => {
                let builder = match self.journal_root {
                    Some(root) => {
                        let dir = root.join(&self.name);
                        std::fs::create_dir_all(&dir).map_err(crate::journal::JournalError::Io)?;
                        builder.journal(dir.join("journal.log"))
                    }
                    None => *builder,
                };
                Arc::new(builder.build()?)
            }
        };
        Ok((
            self.name,
            Listing {
                broker,
                model_kind: self.model_kind,
                mechanism: self.mechanism_name,
                state: ListingState::Draft,
            },
        ))
    }
}

/// A marketplace hosting several model listings behind lock-free routing.
pub struct Marketplace {
    /// The currently published directory. Readers do one Acquire load;
    /// admin mutations publish a replacement with a Release store.
    current: AtomicPtr<Directory>,
    /// Owns every directory ever published, keeping the target of
    /// `current` alive for the marketplace's lifetime. Locked only by
    /// admin mutations, which thereby also serialize with each other.
    history: Mutex<Vec<Arc<Directory>>>,
}

impl Default for Marketplace {
    fn default() -> Self {
        Marketplace::new()
    }
}

impl Marketplace {
    /// Creates an empty marketplace.
    pub fn new() -> Self {
        let empty = Arc::new(Directory {
            listings: BTreeMap::new(),
        });
        let ptr = Arc::as_ptr(&empty) as *mut Directory;
        Marketplace {
            current: AtomicPtr::new(ptr),
            history: Mutex::new(vec![empty]),
        }
    }

    /// Builds and publishes every listing **in parallel** — journal
    /// replay and one-time model training are per-listing work — and
    /// returns the marketplace serving all of them. This is the startup
    /// path for a server recovering a `--journal-dir` tree.
    pub fn open_listings(builders: Vec<ListingBuilder>) -> Result<Marketplace> {
        let opened: Vec<Result<(String, Listing, f64)>> = parallel_map(builders, None, |builder| {
            let (name, listing) = builder.into_listing()?;
            if !listing.broker.is_open() {
                listing.broker.open_market()?;
            }
            let listing = Listing {
                state: ListingState::Published,
                ..listing
            };
            Ok((name, listing, 0.0))
        });
        let market = Marketplace::new();
        market.mutate(|listings| {
            for result in opened {
                let (name, listing, _) = result?;
                if listings.contains_key(&name) {
                    return Err(MarketError::DuplicateListing { name });
                }
                listings.insert(name, listing);
            }
            Ok(())
        })?;
        Ok(market)
    }

    /// The canonical per-listing journal path under a journal root:
    /// `<root>/<listing>/journal.log`.
    pub fn journal_path_for(root: &Path, listing: &str) -> PathBuf {
        root.join(listing).join("journal.log")
    }

    /// Lists and immediately publishes a new listing, returning the
    /// expected revenue of its posted prices. A name that already exists
    /// is [`MarketError::DuplicateListing`] — refresh a live listing with
    /// [`Marketplace::publish`] instead.
    pub fn list(&self, builder: ListingBuilder) -> Result<f64> {
        let (name, listing) = builder.into_listing()?;
        if !listing.broker.is_open() {
            listing.broker.open_market()?;
        }
        let expected = listing.broker.expected_revenue()?;
        self.mutate(|listings| {
            if listings.contains_key(&name) {
                return Err(MarketError::DuplicateListing { name: name.clone() });
            }
            listings.insert(
                name.clone(),
                Listing {
                    state: ListingState::Published,
                    ..listing.clone()
                },
            );
            Ok(())
        })?;
        Ok(expected)
    }

    /// Lists a new listing in the draft state: present in the directory,
    /// not yet serving. Publish it with [`Marketplace::publish`].
    pub fn draft(&self, builder: ListingBuilder) -> Result<()> {
        let (name, listing) = builder.into_listing()?;
        self.mutate(|listings| {
            if listings.contains_key(&name) {
                return Err(MarketError::DuplicateListing { name: name.clone() });
            }
            listings.insert(name.clone(), listing.clone());
            Ok(())
        })
    }

    /// Publishes (or re-publishes) a listing and returns the expected
    /// revenue of the freshly posted prices.
    ///
    /// A draft goes live. A published listing is *re-published*: the
    /// broker posts a new market snapshot with a higher epoch, so every
    /// outstanding quote dies with [`MarketError::QuoteExpired`] at
    /// commit time — the same invalidation a local `open_market()` call
    /// performs. A retired listing refuses with
    /// [`MarketError::ListingRetired`].
    pub fn publish(&self, name: &str) -> Result<f64> {
        self.mutate(|listings| {
            let listing = match listings.get(name) {
                None => {
                    return Err(MarketError::UnknownListing {
                        name: name.to_string(),
                    })
                }
                Some(l) => l.clone(),
            };
            if listing.state == ListingState::Retired {
                return Err(MarketError::ListingRetired {
                    name: name.to_string(),
                });
            }
            let expected = listing.broker.open_market()?;
            listings.insert(
                name.to_string(),
                Listing {
                    state: ListingState::Published,
                    ..listing
                },
            );
            Ok(expected)
        })
    }

    /// Re-publishes a *published* listing's price table from a
    /// caller-supplied [`RevenueProblem`] — the direct in-process
    /// counterpart of the admin wire path's re-PUBLISH, used by
    /// demand-fed re-pricers that observed an empirical demand curve and
    /// want the posted prices re-optimized against it.
    ///
    /// Epoch-kill semantics are identical to [`Marketplace::publish`]:
    /// the broker posts a new snapshot with a higher epoch and every
    /// outstanding quote dies with [`MarketError::QuoteExpired`] at
    /// commit time. Unlike `publish`, a draft refuses with
    /// [`MarketError::MarketNotOpen`] (there is no current table to
    /// re-price) and a retired listing with
    /// [`MarketError::ListingRetired`]. Returns the expected revenue of
    /// the new table under the supplied demand.
    pub fn republish_pricing(&self, name: &str, problem: RevenueProblem) -> Result<f64> {
        self.mutate(|listings| {
            let listing = match listings.get(name) {
                None => {
                    return Err(MarketError::UnknownListing {
                        name: name.to_string(),
                    })
                }
                Some(l) => l.clone(),
            };
            if listing.state == ListingState::Retired {
                return Err(MarketError::ListingRetired {
                    name: name.to_string(),
                });
            }
            listing.broker.republish_with_problem(problem)
        })
    }

    /// Retires a listing: it stops quoting and selling permanently, while
    /// its ledger (and journal) remain for audit. Retiring a retired
    /// listing is [`MarketError::ListingRetired`].
    pub fn retire(&self, name: &str) -> Result<()> {
        self.mutate(|listings| {
            let listing = match listings.get(name) {
                None => {
                    return Err(MarketError::UnknownListing {
                        name: name.to_string(),
                    })
                }
                Some(l) => l.clone(),
            };
            if listing.state == ListingState::Retired {
                return Err(MarketError::ListingRetired {
                    name: name.to_string(),
                });
            }
            listings.insert(
                name.to_string(),
                Listing {
                    state: ListingState::Retired,
                    ..listing
                },
            );
            Ok(())
        })
    }

    /// The menu shown to buyers, in name order.
    pub fn menu(&self) -> Vec<MenuEntry> {
        self.directory()
            .listings
            .iter()
            .map(|(name, l)| MenuEntry {
                name: name.clone(),
                model_kind: l.model_kind,
                mechanism: l.mechanism,
                state: l.state,
                open: l.state == ListingState::Published && l.broker.is_open(),
                expected_revenue: l.broker.expected_revenue().unwrap_or(0.0),
            })
            .collect()
    }

    /// Listing names, in name order.
    pub fn names(&self) -> Vec<String> {
        self.directory().listings.keys().cloned().collect()
    }

    /// Number of listings (any state).
    pub fn len(&self) -> usize {
        self.directory().listings.len()
    }

    /// Whether the marketplace has no listings.
    pub fn is_empty(&self) -> bool {
        self.directory().listings.is_empty()
    }

    /// The named listing's broker plus its metadata, in any lifecycle
    /// state (admin/introspection surface; buyers route with
    /// [`Marketplace::route`]).
    pub fn broker(&self, name: &str) -> Result<(Arc<Broker>, ListingMeta)> {
        match self.directory().listings.get(name) {
            None => Err(MarketError::UnknownListing {
                name: name.to_string(),
            }),
            Some(l) => Ok((l.broker.clone(), l.meta(name))),
        }
    }

    /// Resolves a listing name to its serving broker — the hot path: one
    /// atomic load, one map lookup, no lock. Only published listings
    /// serve; drafts answer [`MarketError::MarketNotOpen`], retired
    /// listings [`MarketError::ListingRetired`], unknown names
    /// [`MarketError::UnknownListing`].
    pub fn route(&self, name: &str) -> Result<Arc<Broker>> {
        match self.directory().listings.get(name) {
            None => Err(MarketError::UnknownListing {
                name: name.to_string(),
            }),
            Some(l) => match l.state {
                ListingState::Published => Ok(l.broker.clone()),
                ListingState::Draft => Err(MarketError::MarketNotOpen),
                ListingState::Retired => Err(MarketError::ListingRetired {
                    name: name.to_string(),
                }),
            },
        }
    }

    /// Quotes a purchase request against the named listing's snapshot.
    pub fn quote_request(&self, name: &str, request: PurchaseRequest) -> Result<Quote> {
        self.route(name)?.quote_request(request)
    }

    /// Redeems a quote from [`Marketplace::quote_request`] at the named
    /// listing.
    pub fn commit(&self, name: &str, quote: Quote, payment: f64) -> Result<Sale> {
        self.route(name)?.commit(quote, payment)
    }

    /// Buys a version of the named model (quote + commit in one step).
    pub fn purchase(&self, name: &str, request: PurchaseRequest, payment: f64) -> Result<Sale> {
        let broker = self.route(name)?;
        let quote = broker.quote_request(request)?;
        broker.commit(quote, payment)
    }

    /// One consistent accounting snapshot: per-listing counters plus the
    /// aggregates, all computed from a single published directory.
    pub fn stats(&self) -> MarketplaceStats {
        let mut out = MarketplaceStats::default();
        for (name, l) in &self.directory().listings {
            let stats = l.broker.market_stats();
            let row = ListingStats {
                name: name.clone(),
                state: l.state,
                epoch: stats.epoch.unwrap_or(0),
                expected_revenue: stats.expected_revenue.unwrap_or(0.0),
                sales: stats.sales as u64,
                revenue: stats.revenue,
                budget_rejects: stats.budget_rejects,
                exhausted_buyers: stats.exhausted_buyers,
            };
            out.total_sales += row.sales;
            // nimbus-audit: allow(money-safety) — per-listing revenue aggregates sales already validated at commit
            out.total_revenue += row.revenue;
            out.listings.push(row);
        }
        out
    }

    /// Total revenue collected across every listing (one
    /// [`Marketplace::stats`] snapshot).
    pub fn total_collected_revenue(&self) -> f64 {
        self.stats().total_revenue
    }

    /// Total completed sales across every listing (one
    /// [`Marketplace::stats`] snapshot).
    pub fn total_sales(&self) -> usize {
        self.stats().total_sales as usize
    }

    /// Compacts every listing's journal (no-ops for unjournalled
    /// listings). Attempts all listings; the first error is returned
    /// after the sweep.
    pub fn checkpoint_journals(&self) -> Result<()> {
        let mut first_err = None;
        for l in self.directory().listings.values() {
            if let Err(e) = l.broker.checkpoint_journal() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// The currently published directory: one Acquire load, no lock.
    fn directory(&self) -> &Directory {
        let ptr = self.current.load(Ordering::Acquire);
        // SAFETY: `ptr` came from `Arc::as_ptr` on an Arc that
        // `self.history` holds (append-only, never cleared) for as long
        // as `self` lives, so the target outlives the returned borrow.
        // `new()` publishes a first directory before `self` exists, so
        // the pointer is never null, and the Release store in `mutate`
        // happened-before this Acquire load, so the directory behind it
        // is fully initialized.
        unsafe { &*ptr }
    }

    /// Runs one serialized admin mutation: clones the live directory,
    /// applies `f`, and publishes the result. On error nothing is
    /// published.
    fn mutate<T>(&self, f: impl FnOnce(&mut BTreeMap<String, Listing>) -> Result<T>) -> Result<T> {
        let mut history = self.history.lock();
        let mut listings = match history.last() {
            Some(dir) => dir.listings.clone(),
            None => BTreeMap::new(),
        };
        let out = f(&mut listings)?;
        let next = Arc::new(Directory { listings });
        let ptr = Arc::as_ptr(&next) as *mut Directory;
        history.push(next);
        // Release pairs with the Acquire in `directory()`: a reader that
        // sees `ptr` also sees the fully built directory behind it.
        self.current.store(ptr, Ordering::Release);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curves::{DemandCurve, MarketCurves, ValueCurve};
    use crate::seller::Seller;
    use nimbus_core::GaussianMechanism;
    use nimbus_data::catalog::{DatasetSpec, PaperDataset};
    use nimbus_ml::{LinearRegressionTrainer, LogisticRegressionTrainer};

    fn regression_seller(seed: u64) -> Seller {
        let (tt, _) = DatasetSpec::scaled(PaperDataset::Simulated1, 500)
            .materialize(seed)
            .unwrap();
        Seller::new(
            "reg",
            tt,
            MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform),
        )
    }

    fn regression_listing(name: &str, seed: u64) -> ListingBuilder {
        ListingBuilder::new(name, regression_seller(seed))
            .trainer(LinearRegressionTrainer::ridge(1e-6))
            .mechanism(GaussianMechanism)
            .model_kind("linear_regression")
            .n_price_points(20)
            .error_curve_samples(20)
            .seed(seed)
    }

    fn classification_listing(name: &str, seed: u64) -> ListingBuilder {
        let (tt, _) = DatasetSpec::scaled(PaperDataset::Simulated2, 500)
            .materialize(seed)
            .unwrap();
        let seller = Seller::new(
            "cls",
            tt,
            MarketCurves::new(
                ValueCurve::standard_sigmoid(),
                DemandCurve::MidPeaked { width: 0.2 },
            ),
        );
        ListingBuilder::new(name, seller)
            .trainer(LogisticRegressionTrainer::new(1e-4))
            .mechanism(GaussianMechanism)
            .model_kind("logistic_regression")
            .n_price_points(20)
            .error_curve_samples(20)
            .seed(seed)
    }

    #[test]
    fn menu_lists_all_models() {
        let mp = Marketplace::new();
        mp.list(regression_listing("ols-on-simulated1", 1)).unwrap();
        mp.list(classification_listing("logreg-on-simulated2", 2))
            .unwrap();
        let menu = mp.menu();
        assert_eq!(menu.len(), 2);
        assert!(menu.iter().all(|e| e.open));
        assert!(menu.iter().all(|e| e.state == ListingState::Published));
        assert!(menu.iter().all(|e| e.expected_revenue > 0.0));
        let names: Vec<&str> = menu.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["logreg-on-simulated2", "ols-on-simulated1"]);
    }

    #[test]
    fn purchases_route_to_the_right_broker() {
        let mp = Marketplace::new();
        mp.list(regression_listing("reg", 3)).unwrap();
        mp.list(classification_listing("cls", 4)).unwrap();
        let reg_sale = mp
            .purchase("reg", PurchaseRequest::AtInverseNcp(10.0), 1e12)
            .unwrap();
        let cls_sale = mp
            .purchase("cls", PurchaseRequest::AtInverseNcp(10.0), 1e12)
            .unwrap();
        assert_eq!(reg_sale.model.dim(), 20);
        assert_eq!(cls_sale.model.dim(), 20);
        assert_eq!(mp.total_sales(), 2);
        assert!((mp.total_collected_revenue() - (reg_sale.price + cls_sale.price)).abs() < 1e-9);
    }

    #[test]
    fn quote_then_commit_through_the_marketplace() {
        let mp = Marketplace::new();
        mp.list(regression_listing("reg", 9)).unwrap();
        let quote = mp
            .quote_request("reg", PurchaseRequest::AtInverseNcp(8.0))
            .unwrap();
        assert!(quote.price > 0.0);
        let sale = mp.commit("reg", quote, quote.price).unwrap();
        assert!((sale.inverse_ncp - 8.0).abs() < 1e-12);
        assert_eq!(mp.total_sales(), 1);
    }

    #[test]
    fn unknown_listing_is_typed() {
        let mp = Marketplace::new();
        assert!(matches!(
            mp.broker("nope"),
            Err(MarketError::UnknownListing { name }) if name == "nope"
        ));
        assert!(matches!(
            mp.purchase("nope", PurchaseRequest::AtInverseNcp(1.0), 1.0),
            Err(MarketError::UnknownListing { .. })
        ));
        assert!(matches!(
            mp.publish("nope"),
            Err(MarketError::UnknownListing { .. })
        ));
        assert!(matches!(
            mp.retire("nope"),
            Err(MarketError::UnknownListing { .. })
        ));
        assert!(mp.is_empty());
    }

    #[test]
    fn duplicate_listing_is_rejected_not_replaced() {
        let mp = Marketplace::new();
        mp.list(regression_listing("m", 5)).unwrap();
        mp.purchase("m", PurchaseRequest::AtInverseNcp(5.0), 1e12)
            .unwrap();
        assert_eq!(mp.total_sales(), 1);
        assert!(matches!(
            mp.list(regression_listing("m", 6)),
            Err(MarketError::DuplicateListing { name }) if name == "m"
        ));
        // The original listing (and its ledger) is untouched.
        assert_eq!(mp.total_sales(), 1);
        assert_eq!(mp.len(), 1);
    }

    #[test]
    fn draft_listings_refuse_buyers_until_published() {
        let mp = Marketplace::new();
        mp.draft(regression_listing("d", 7)).unwrap();
        assert!(matches!(
            mp.quote_request("d", PurchaseRequest::AtInverseNcp(5.0)),
            Err(MarketError::MarketNotOpen)
        ));
        let menu = mp.menu();
        assert_eq!(menu.len(), 1);
        assert!(!menu[0].open);
        assert_eq!(menu[0].state, ListingState::Draft);

        let expected = mp.publish("d").unwrap();
        assert!(expected > 0.0);
        mp.purchase("d", PurchaseRequest::AtInverseNcp(5.0), 1e12)
            .unwrap();
        let (_, meta) = mp.broker("d").unwrap();
        assert_eq!(meta.state, ListingState::Published);
        assert_eq!(meta.model_kind, "linear_regression");
        assert_eq!(meta.mechanism, "gaussian");
    }

    #[test]
    fn republish_invalidates_outstanding_quotes() {
        let mp = Marketplace::new();
        mp.list(regression_listing("m", 11)).unwrap();
        let stale = mp
            .quote_request("m", PurchaseRequest::AtInverseNcp(4.0))
            .unwrap();
        mp.publish("m").unwrap();
        assert!(matches!(
            mp.commit("m", stale, stale.price),
            Err(MarketError::QuoteExpired { .. })
        ));
        // A fresh quote against the new epoch commits fine.
        let fresh = mp
            .quote_request("m", PurchaseRequest::AtInverseNcp(4.0))
            .unwrap();
        assert!(fresh.snapshot_epoch > 1);
        mp.commit("m", fresh, fresh.price).unwrap();
    }

    #[test]
    fn republish_pricing_kills_stale_quotes_with_quote_expired() {
        let mp = Marketplace::new();
        mp.list(regression_listing("m", 29)).unwrap();
        let stale = mp
            .quote_request("m", PurchaseRequest::AtInverseNcp(4.0))
            .unwrap();

        // An "observed" demand problem on the posted menu grid: same
        // inverse-NCP points and valuations, demand concentrated on the
        // accurate end as live traffic might reveal.
        let (broker, _) = mp.broker("m").unwrap();
        let posted = broker.posted_menu().unwrap();
        let n = posted.len();
        let snapshot_problem = {
            let quote = mp
                .quote_request("m", PurchaseRequest::AtInverseNcp(posted[0].0))
                .unwrap();
            assert_eq!(quote.snapshot_epoch, stale.snapshot_epoch);
            let a: Vec<f64> = posted.iter().map(|&(x, _)| x).collect();
            let v: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
            let b: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
            RevenueProblem::from_slices(&a, &b, &v).unwrap()
        };

        let expected = mp.republish_pricing("m", snapshot_problem).unwrap();
        assert!(expected > 0.0);

        // The pre-republish quote carries a dead epoch.
        assert!(matches!(
            mp.commit("m", stale, stale.price),
            Err(MarketError::QuoteExpired { quoted, current })
                if quoted == stale.snapshot_epoch && current > quoted
        ));
        // Fresh quotes against the re-priced table commit fine.
        let fresh = mp
            .quote_request("m", PurchaseRequest::AtInverseNcp(4.0))
            .unwrap();
        assert!(fresh.snapshot_epoch > stale.snapshot_epoch);
        mp.commit("m", fresh, fresh.price).unwrap();
    }

    #[test]
    fn republish_pricing_refuses_drafts_and_retired() {
        let mp = Marketplace::new();
        mp.draft(regression_listing("d", 31)).unwrap();
        let (broker, _) = mp.broker("d").unwrap();
        assert!(!broker.is_open());
        let problem = RevenueProblem::from_slices(&[1.0, 2.0], &[1.0, 1.0], &[1.0, 2.0]).unwrap();
        assert!(matches!(
            mp.republish_pricing("d", problem.clone()),
            Err(MarketError::MarketNotOpen)
        ));
        mp.list(regression_listing("m", 33)).unwrap();
        mp.retire("m").unwrap();
        assert!(matches!(
            mp.republish_pricing("m", problem.clone()),
            Err(MarketError::ListingRetired { .. })
        ));
        assert!(matches!(
            mp.republish_pricing("nope", problem),
            Err(MarketError::UnknownListing { .. })
        ));
    }

    #[test]
    fn retirement_is_terminal_and_typed() {
        let mp = Marketplace::new();
        mp.list(regression_listing("m", 13)).unwrap();
        mp.retire("m").unwrap();
        assert!(matches!(
            mp.quote_request("m", PurchaseRequest::AtInverseNcp(2.0)),
            Err(MarketError::ListingRetired { name }) if name == "m"
        ));
        assert!(matches!(
            mp.publish("m"),
            Err(MarketError::ListingRetired { .. })
        ));
        assert!(matches!(
            mp.retire("m"),
            Err(MarketError::ListingRetired { .. })
        ));
        // Metadata remains inspectable for audit.
        let (_, meta) = mp.broker("m").unwrap();
        assert_eq!(meta.state, ListingState::Retired);
        assert_eq!(meta.state.name(), "retired");
    }

    #[test]
    fn stats_snapshot_is_internally_consistent() {
        let mp = Marketplace::new();
        mp.list(regression_listing("a", 17)).unwrap();
        mp.list(regression_listing("b", 19)).unwrap();
        mp.purchase("a", PurchaseRequest::AtInverseNcp(3.0), 1e12)
            .unwrap();
        mp.purchase("b", PurchaseRequest::AtInverseNcp(3.0), 1e12)
            .unwrap();
        mp.purchase("b", PurchaseRequest::AtInverseNcp(6.0), 1e12)
            .unwrap();
        let stats = mp.stats();
        assert_eq!(stats.listings.len(), 2);
        assert_eq!(stats.total_sales, 3);
        let row_sales: u64 = stats.listings.iter().map(|l| l.sales).sum();
        let row_revenue: f64 = stats.listings.iter().map(|l| l.revenue).sum();
        assert_eq!(stats.total_sales, row_sales);
        assert!((stats.total_revenue - row_revenue).abs() < 1e-12);
        assert!(stats.listings.iter().all(|l| l.epoch >= 1));
        assert_eq!(mp.total_sales(), 3);
    }

    #[test]
    fn open_listings_builds_and_publishes_in_parallel() {
        let builders = vec![
            regression_listing("p0", 21),
            regression_listing("p1", 22),
            classification_listing("p2", 23),
        ];
        let mp = Marketplace::open_listings(builders).unwrap();
        assert_eq!(mp.names(), vec!["p0", "p1", "p2"]);
        for name in mp.names() {
            mp.purchase(&name, PurchaseRequest::AtInverseNcp(4.0), 1e12)
                .unwrap();
        }
        assert_eq!(mp.total_sales(), 3);
    }

    #[test]
    fn journal_root_uses_per_listing_layout() {
        let root =
            std::env::temp_dir().join(format!("nimbus-marketplace-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mp = Marketplace::new();
        mp.list(regression_listing("j", 29).journal_root(&root))
            .unwrap();
        mp.purchase("j", PurchaseRequest::AtInverseNcp(5.0), 1e12)
            .unwrap();
        let path = Marketplace::journal_path_for(&root, "j");
        assert_eq!(path, root.join("j").join("journal.log"));
        assert!(path.is_file(), "journal written under <root>/<listing>/");
        mp.checkpoint_journals().unwrap();

        // A fresh marketplace over the same root replays the listing's
        // sales from its own journal.
        let mp2 = Marketplace::open_listings(vec![regression_listing("j", 29).journal_root(&root)])
            .unwrap();
        assert_eq!(mp2.total_sales(), 1);
        let (broker, _) = mp2.broker("j").unwrap();
        assert!(broker.recovery().is_some());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn invalid_listing_names_are_rejected() {
        let mp = Marketplace::new();
        assert!(matches!(
            mp.list(regression_listing("", 31)),
            Err(MarketError::InvalidConfig { .. })
        ));
        assert!(matches!(
            mp.list(regression_listing("a/b", 31)),
            Err(MarketError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn adopted_broker_rejects_reconfiguration() {
        let broker = Arc::new(
            Broker::builder(regression_seller(37))
                .trainer(LinearRegressionTrainer::ridge(1e-6))
                .mechanism(GaussianMechanism)
                .n_price_points(20)
                .error_curve_samples(20)
                .seed(37)
                .build()
                .unwrap(),
        );
        let mp = Marketplace::new();
        assert!(matches!(
            mp.list(ListingBuilder::from_broker("m", broker.clone()).seed(9)),
            Err(MarketError::InvalidConfig { .. })
        ));
        mp.list(ListingBuilder::from_broker("m", broker)).unwrap();
        mp.purchase("m", PurchaseRequest::AtInverseNcp(5.0), 1e12)
            .unwrap();
    }

    #[test]
    fn routing_stays_lock_free_under_concurrent_admin_churn() {
        let mp = Arc::new(Marketplace::new());
        mp.list(regression_listing("hot", 41)).unwrap();
        std::thread::scope(|s| {
            let admin = {
                let mp = mp.clone();
                s.spawn(move || {
                    for i in 0..8 {
                        mp.publish("hot").unwrap();
                        mp.draft(regression_listing(&format!("churn-{i}"), 50 + i))
                            .unwrap();
                    }
                })
            };
            for _ in 0..4 {
                let mp = mp.clone();
                s.spawn(move || {
                    for _ in 0..200 {
                        // Quotes always succeed; commits may race a
                        // re-publish and die with the epoch check — both
                        // are valid outcomes, nothing may panic or block.
                        let quote = mp
                            .quote_request("hot", PurchaseRequest::AtInverseNcp(5.0))
                            .unwrap();
                        match mp.commit("hot", quote, quote.price) {
                            Ok(_) => {}
                            Err(MarketError::QuoteExpired { .. }) => {}
                            Err(other) => panic!("unexpected error: {other}"),
                        }
                    }
                });
            }
            admin.join().unwrap();
        });
        assert_eq!(mp.len(), 9);
    }
}
