//! The multi-model marketplace of §3.1.
//!
//! "The broker specifies a menu of ML models `M` she can support (e.g.
//! logistic regression for classification and ordinary least squares for
//! regression)." A [`Marketplace`] manages one [`Broker`] per listed model,
//! each with its own dataset, trainer, mechanism and optimized price curve;
//! buyers first pick a model from the menu (the first step of the §3.2
//! interaction) and then purchase a version of it.

use crate::broker::{Broker, PurchaseRequest, Quote, Sale};
use crate::{MarketError, Result};
use std::collections::BTreeMap;

/// One entry of the broker's model menu.
#[derive(Debug, Clone)]
pub struct MenuEntry {
    /// The listing name the buyer selects by.
    pub name: String,
    /// Trainer identifier (e.g. `"linear_regression"`).
    pub model_kind: &'static str,
    /// Mechanism identifier (e.g. `"gaussian"`).
    pub mechanism: &'static str,
    /// Whether the market for this model is open.
    pub open: bool,
    /// Expected revenue of the posted prices (0 until open).
    pub expected_revenue: f64,
}

/// A marketplace hosting several model listings.
#[derive(Default)]
pub struct Marketplace {
    listings: BTreeMap<String, ListedBroker>,
}

struct ListedBroker {
    broker: Broker,
    model_kind: &'static str,
    mechanism: &'static str,
}

impl Marketplace {
    /// Creates an empty marketplace.
    pub fn new() -> Self {
        Marketplace::default()
    }

    /// Lists a configured broker under `name`, opening its market
    /// immediately. Returns the expected revenue. Re-listing an existing
    /// name replaces the previous listing.
    pub fn list(
        &mut self,
        name: impl Into<String>,
        broker: Broker,
        model_kind: &'static str,
        mechanism: &'static str,
    ) -> Result<f64> {
        let revenue = broker.open_market()?;
        self.listings.insert(
            name.into(),
            ListedBroker {
                broker,
                model_kind,
                mechanism,
            },
        );
        Ok(revenue)
    }

    /// The menu shown to buyers, in name order.
    pub fn menu(&self) -> Vec<MenuEntry> {
        self.listings
            .iter()
            .map(|(name, l)| MenuEntry {
                name: name.clone(),
                model_kind: l.model_kind,
                mechanism: l.mechanism,
                open: l.broker.is_open(),
                expected_revenue: l.broker.expected_revenue().unwrap_or(0.0),
            })
            .collect()
    }

    /// Number of listings.
    pub fn len(&self) -> usize {
        self.listings.len()
    }

    /// Whether the marketplace has no listings.
    pub fn is_empty(&self) -> bool {
        self.listings.is_empty()
    }

    /// Borrow a listed broker for curve queries.
    pub fn broker(&self, name: &str) -> Result<&Broker> {
        self.listings
            .get(name)
            .map(|l| &l.broker)
            .ok_or(MarketError::MarketNotOpen)
    }

    /// Quotes a purchase request against the named model's snapshot.
    pub fn quote_request(&self, name: &str, request: PurchaseRequest) -> Result<Quote> {
        self.broker(name)?.quote_request(request)
    }

    /// Redeems a quote from [`Marketplace::quote_request`] at the named
    /// listing.
    pub fn commit(&self, name: &str, quote: Quote, payment: f64) -> Result<Sale> {
        self.broker(name)?.commit(quote, payment)
    }

    /// Buys a version of the named model (quote + commit in one step).
    pub fn purchase(&self, name: &str, request: PurchaseRequest, payment: f64) -> Result<Sale> {
        let broker = self.broker(name)?;
        let quote = broker.quote_request(request)?;
        broker.commit(quote, payment)
    }

    /// Total revenue collected across every listing.
    pub fn total_collected_revenue(&self) -> f64 {
        self.listings
            .values()
            .map(|l| l.broker.collected_revenue())
            .sum()
    }

    /// Total completed sales across every listing.
    pub fn total_sales(&self) -> usize {
        self.listings.values().map(|l| l.broker.sales_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::BrokerConfig;
    use crate::curves::{DemandCurve, MarketCurves, ValueCurve};
    use crate::seller::Seller;
    use nimbus_core::GaussianMechanism;
    use nimbus_data::catalog::{DatasetSpec, PaperDataset};
    use nimbus_ml::{LinearRegressionTrainer, LogisticRegressionTrainer};

    fn regression_broker(seed: u64) -> Broker {
        let (tt, _) = DatasetSpec::scaled(PaperDataset::Simulated1, 500)
            .materialize(seed)
            .unwrap();
        Broker::new(
            Seller::new(
                "reg",
                tt,
                MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform),
            ),
            Box::new(LinearRegressionTrainer::ridge(1e-6)),
            Box::new(GaussianMechanism),
            BrokerConfig {
                n_price_points: 20,
                error_curve_samples: 20,
                seed,
            },
        )
    }

    fn classification_broker(seed: u64) -> Broker {
        let (tt, _) = DatasetSpec::scaled(PaperDataset::Simulated2, 500)
            .materialize(seed)
            .unwrap();
        Broker::new(
            Seller::new(
                "cls",
                tt,
                MarketCurves::new(
                    ValueCurve::standard_sigmoid(),
                    DemandCurve::MidPeaked { width: 0.2 },
                ),
            ),
            Box::new(LogisticRegressionTrainer::new(1e-4)),
            Box::new(GaussianMechanism),
            BrokerConfig {
                n_price_points: 20,
                error_curve_samples: 20,
                seed,
            },
        )
    }

    #[test]
    fn menu_lists_all_models() {
        let mut mp = Marketplace::new();
        mp.list(
            "ols-on-simulated1",
            regression_broker(1),
            "linear_regression",
            "gaussian",
        )
        .unwrap();
        mp.list(
            "logreg-on-simulated2",
            classification_broker(2),
            "logistic_regression",
            "gaussian",
        )
        .unwrap();
        let menu = mp.menu();
        assert_eq!(menu.len(), 2);
        assert!(menu.iter().all(|e| e.open));
        assert!(menu.iter().all(|e| e.expected_revenue > 0.0));
        let names: Vec<&str> = menu.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["logreg-on-simulated2", "ols-on-simulated1"]);
    }

    #[test]
    fn purchases_route_to_the_right_broker() {
        let mut mp = Marketplace::new();
        mp.list("reg", regression_broker(3), "linear_regression", "gaussian")
            .unwrap();
        mp.list(
            "cls",
            classification_broker(4),
            "logistic_regression",
            "gaussian",
        )
        .unwrap();
        let reg_sale = mp
            .purchase("reg", PurchaseRequest::AtInverseNcp(10.0), 1e12)
            .unwrap();
        let cls_sale = mp
            .purchase("cls", PurchaseRequest::AtInverseNcp(10.0), 1e12)
            .unwrap();
        assert_eq!(reg_sale.model.dim(), 20);
        assert_eq!(cls_sale.model.dim(), 20);
        assert_eq!(mp.total_sales(), 2);
        assert!((mp.total_collected_revenue() - (reg_sale.price + cls_sale.price)).abs() < 1e-9);
    }

    #[test]
    fn quote_then_commit_through_the_marketplace() {
        let mut mp = Marketplace::new();
        mp.list("reg", regression_broker(9), "linear_regression", "gaussian")
            .unwrap();
        let quote = mp
            .quote_request("reg", PurchaseRequest::AtInverseNcp(8.0))
            .unwrap();
        assert!(quote.price > 0.0);
        let sale = mp.commit("reg", quote, quote.price).unwrap();
        assert!((sale.inverse_ncp - 8.0).abs() < 1e-12);
        assert_eq!(mp.total_sales(), 1);
    }

    #[test]
    fn unknown_model_is_rejected() {
        let mp = Marketplace::new();
        assert!(mp.broker("nope").is_err());
        assert!(mp
            .purchase("nope", PurchaseRequest::AtInverseNcp(1.0), 1.0)
            .is_err());
        assert!(mp.is_empty());
    }

    #[test]
    fn relisting_replaces() {
        let mut mp = Marketplace::new();
        mp.list("m", regression_broker(5), "linear_regression", "gaussian")
            .unwrap();
        mp.purchase("m", PurchaseRequest::AtInverseNcp(5.0), 1e12)
            .unwrap();
        assert_eq!(mp.total_sales(), 1);
        // Replace: ledger resets with the new broker.
        mp.list("m", regression_broker(6), "linear_regression", "gaussian")
            .unwrap();
        assert_eq!(mp.total_sales(), 0);
        assert_eq!(mp.len(), 1);
    }
}
