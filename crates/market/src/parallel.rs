//! Re-export of the shared parallel map, which moved to `nimbus-core` so
//! the error-curve estimator can use the same fan-out machinery as the
//! market and experiment layers.

pub use nimbus_core::parallel::parallel_map;
