//! Persistence for posted markets.
//!
//! A production broker must survive restarts without re-running market
//! research or re-optimizing prices: the posted menu *is* the public
//! contract with buyers. This module round-trips a posted market — the
//! `(a_j, b_j, v_j)` problem plus the optimized prices — through the
//! workspace CSV layer, and re-validates arbitrage-freeness on load so a
//! tampered or corrupted file can never resurrect an exploitable menu.

use crate::{MarketError, Result};
use nimbus_core::arbitrage::check_arbitrage_free;
use nimbus_core::pricing::PiecewiseLinearPricing;
use nimbus_data::csv::{read_table_from_path, write_table_to_path, NumericTable};
use nimbus_optim::{PricePoint, RevenueProblem};
use std::path::Path;

/// A persisted posted market: problem points plus posted prices.
#[derive(Debug, Clone, PartialEq)]
pub struct PostedMarket {
    /// The revenue problem the prices were optimized for.
    pub problem: RevenueProblem,
    /// The posted prices, aligned with `problem.points()`.
    pub prices: Vec<f64>,
}

impl PostedMarket {
    /// Bundles a problem with its posted prices; lengths must match.
    pub fn new(problem: RevenueProblem, prices: Vec<f64>) -> Result<Self> {
        if prices.len() != problem.len() {
            return Err(MarketError::Optim(
                nimbus_optim::OptimError::LengthMismatch {
                    prices: prices.len(),
                    points: problem.len(),
                },
            ));
        }
        Ok(PostedMarket { problem, prices })
    }

    /// The piecewise-linear pricing function of the posted menu.
    pub fn pricing(&self) -> Result<PiecewiseLinearPricing> {
        PiecewiseLinearPricing::new(
            self.problem
                .parameters()
                .into_iter()
                .zip(self.prices.iter().copied())
                .collect(),
        )
        .map_err(Into::into)
    }

    /// Saves the market to a CSV file (columns `a, b, v, price`).
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        let rows: Vec<Vec<f64>> = self
            .problem
            .points()
            .iter()
            .zip(&self.prices)
            .map(|(p, &z)| vec![p.a, p.b, p.v, z])
            .collect();
        write_table_to_path(path, &["a", "b", "v", "price"], &rows)?;
        Ok(())
    }

    /// Loads a market from CSV and **re-validates** it: the problem must be
    /// well formed and the posted prices arbitrage-free on the menu grid.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self> {
        let table = read_table_from_path(path, true)?;
        Self::from_table(&table)
    }

    fn from_table(table: &NumericTable) -> Result<Self> {
        let expected = ["a", "b", "v", "price"];
        if table.columns != expected {
            return Err(MarketError::InvalidCurve {
                reason: "posted-market CSV must have columns a,b,v,price",
            });
        }
        let mut points = Vec::with_capacity(table.num_rows());
        let mut prices = Vec::with_capacity(table.num_rows());
        for row in &table.rows {
            points.push(PricePoint {
                a: row[0],
                b: row[1],
                v: row[2],
            });
            prices.push(row[3]);
        }
        let problem = RevenueProblem::new(points).map_err(MarketError::Optim)?;
        let market = PostedMarket::new(problem, prices)?;
        // Tamper check: a menu that admits arbitrage must not load.
        let pricing = market.pricing()?;
        let grid = market.problem.parameters();
        let report = check_arbitrage_free(&pricing, &grid, 1e-7)?;
        if !report.is_arbitrage_free() {
            return Err(MarketError::InvalidCurve {
                reason: "persisted menu is not arbitrage-free (corrupted or tampered)",
            });
        }
        Ok(market)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curves::{DemandCurve, MarketCurves, ValueCurve};
    use nimbus_optim::solve_revenue_dp;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("nimbus_persist_{name}.csv"))
    }

    fn posted_market() -> PostedMarket {
        let problem = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform)
            .build_problem(25)
            .unwrap();
        let prices = solve_revenue_dp(&problem).unwrap().prices;
        PostedMarket::new(problem, prices).unwrap()
    }

    #[test]
    fn save_load_roundtrip() {
        let market = posted_market();
        let path = temp_path("roundtrip");
        market.save(&path).unwrap();
        let loaded = PostedMarket::load(&path).unwrap();
        assert_eq!(loaded.problem.len(), market.problem.len());
        for (a, b) in loaded.prices.iter().zip(&market.prices) {
            assert!((a - b).abs() < 1e-9);
        }
        assert_eq!(loaded.problem.parameters(), market.problem.parameters());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loaded_pricing_matches_original() {
        let market = posted_market();
        let path = temp_path("pricing");
        market.save(&path).unwrap();
        let loaded = PostedMarket::load(&path).unwrap();
        let p0 = market.pricing().unwrap();
        let p1 = loaded.pricing().unwrap();
        for x in [1.0, 17.3, 50.0, 99.0] {
            let x = nimbus_core::InverseNcp::new(x).unwrap();
            use nimbus_core::PricingFunction;
            assert!((p0.price(x) - p1.price(x)).abs() < 1e-9);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tampered_menu_is_rejected() {
        let market = posted_market();
        let path = temp_path("tampered");
        market.save(&path).unwrap();
        // Tamper: bump one mid-menu price way above its neighbors, creating
        // a superadditive kink.
        let content = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = content.lines().map(String::from).collect();
        let mid = lines.len() / 2;
        let mut fields: Vec<String> = lines[mid].split(',').map(String::from).collect();
        let old: f64 = fields[3].parse().unwrap();
        fields[3] = format!("{}", old * 50.0);
        lines[mid] = fields.join(",");
        std::fs::write(&path, lines.join("\n")).unwrap();

        let err = PostedMarket::load(&path);
        assert!(
            matches!(err, Err(MarketError::InvalidCurve { .. })),
            "tampered menu must be rejected, got {err:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_columns_are_rejected() {
        let path = temp_path("wrong_cols");
        nimbus_data::csv::write_table_to_path(&path, &["x", "y"], &[vec![1.0, 2.0]]).unwrap();
        assert!(PostedMarket::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn length_mismatch_rejected() {
        let problem = MarketCurves::new(ValueCurve::standard_linear(), DemandCurve::Uniform)
            .build_problem(5)
            .unwrap();
        assert!(PostedMarket::new(problem, vec![1.0; 3]).is_err());
    }
}
