//! The seller agent.
//!
//! The seller owns a commercially valuable dataset `D = (D_train, D_test)`
//! and, via market research, the value/demand curves for models trained on
//! it (Figure 1(A)). Listing with a broker hands over the dataset and the
//! curves; the broker takes it from there.

use crate::curves::MarketCurves;
use nimbus_data::TrainTest;

/// A seller listing a dataset for model-based sale.
#[derive(Debug, Clone)]
pub struct Seller {
    /// Display name of the seller.
    pub name: String,
    dataset: TrainTest,
    curves: MarketCurves,
}

impl Seller {
    /// Creates a seller from a dataset and market-research curves.
    pub fn new(name: impl Into<String>, dataset: TrainTest, curves: MarketCurves) -> Self {
        Seller {
            name: name.into(),
            dataset,
            curves,
        }
    }

    /// The dataset on offer.
    pub fn dataset(&self) -> &TrainTest {
        &self.dataset
    }

    /// The market research curves.
    pub fn curves(&self) -> &MarketCurves {
        &self.curves
    }

    /// Number of training examples (`n₁`).
    pub fn train_size(&self) -> usize {
        self.dataset.train.len()
    }

    /// Number of test examples (`n₂`).
    pub fn test_size(&self) -> usize {
        self.dataset.test.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curves::{DemandCurve, ValueCurve};
    use nimbus_data::catalog::{DatasetSpec, PaperDataset};

    #[test]
    fn seller_exposes_listing() {
        let (tt, _) = DatasetSpec::scaled(PaperDataset::Casp, 200)
            .materialize(3)
            .unwrap();
        let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
        let seller = Seller::new("uci-proteins", tt, curves);
        assert_eq!(seller.name, "uci-proteins");
        assert!(seller.train_size() > 0);
        assert!(seller.test_size() > 0);
        assert_eq!(seller.curves().value.name(), "concave");
    }
}
