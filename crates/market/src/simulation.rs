//! Strategy comparison and arbitrage demonstration — the machinery behind
//! Figures 5 and 7–14.

use crate::buyer::BuyerPopulation;
use crate::Result;
use nimbus_core::arbitrage::{find_attack, ArbitrageAttack};
use nimbus_core::pricing::PiecewiseLinearPricing;
use nimbus_optim::baselines::{Baseline, BaselineKind};
use nimbus_optim::{
    affordability_ratio, revenue, solve_revenue_brute_force, solve_revenue_dp, RevenueProblem,
};
use nimbus_randkit::NimbusRng;
use std::time::Duration;

/// A pricing strategy under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PricingStrategy {
    /// Model-based pricing: the Algorithm 1 DP (the paper's MBP).
    Mbp,
    /// The exact subadditive optimum via Algorithm 2 (the paper's MILP).
    BruteForce,
    /// One of the four §6.2 baselines.
    Baseline(BaselineKind),
}

impl PricingStrategy {
    /// All six strategies in the figures' presentation order.
    pub const ALL: [PricingStrategy; 6] = [
        PricingStrategy::Mbp,
        PricingStrategy::Baseline(BaselineKind::Lin),
        PricingStrategy::Baseline(BaselineKind::MaxC),
        PricingStrategy::Baseline(BaselineKind::MedC),
        PricingStrategy::Baseline(BaselineKind::OptC),
        PricingStrategy::BruteForce,
    ];

    /// The five polynomial-time strategies (no brute force) used by the
    /// larger-n figures.
    pub const FAST: [PricingStrategy; 5] = [
        PricingStrategy::Mbp,
        PricingStrategy::Baseline(BaselineKind::Lin),
        PricingStrategy::Baseline(BaselineKind::MaxC),
        PricingStrategy::Baseline(BaselineKind::MedC),
        PricingStrategy::Baseline(BaselineKind::OptC),
    ];

    /// Display name as used in the figures.
    pub fn name(&self) -> &'static str {
        match self {
            PricingStrategy::Mbp => "MBP",
            PricingStrategy::BruteForce => "MILP",
            PricingStrategy::Baseline(k) => k.name(),
        }
    }
}

/// Result of pricing a problem with one strategy.
#[derive(Debug, Clone)]
pub struct StrategyOutcome {
    /// Strategy display name.
    pub name: &'static str,
    /// Prices at the problem's points.
    pub prices: Vec<f64>,
    /// Expected revenue under the demand model.
    pub revenue: f64,
    /// Expected affordability ratio.
    pub affordability: f64,
    /// Wall-clock time spent computing the prices.
    pub runtime: Duration,
}

/// Prices `problem` with `strategy`, timing the computation on the wall
/// clock. Convenience wrapper over [`price_with_clock`].
pub fn price_with(strategy: PricingStrategy, problem: &RevenueProblem) -> Result<StrategyOutcome> {
    let clock = crate::clock::wall_clock();
    price_with_clock(strategy, problem, &clock)
}

/// Prices `problem` with `strategy`, timing the computation on a
/// caller-supplied [`crate::clock::Clock`]. With [`crate::clock::null_clock`]
/// the outcome is a pure function of `(strategy, problem)` — no ambient
/// time reaches this module.
pub fn price_with_clock(
    strategy: PricingStrategy,
    problem: &RevenueProblem,
    clock: crate::clock::Clock<'_>,
) -> Result<StrategyOutcome> {
    let start = clock();
    let prices = match strategy {
        PricingStrategy::Mbp => solve_revenue_dp(problem)?.prices,
        PricingStrategy::BruteForce => solve_revenue_brute_force(problem)?.prices,
        PricingStrategy::Baseline(kind) => Baseline::fit(kind, problem)?.prices,
    };
    let runtime = clock().saturating_sub(start);
    let revenue = revenue(&prices, problem)?;
    let affordability = affordability_ratio(&prices, problem)?;
    Ok(StrategyOutcome {
        name: strategy.name(),
        prices,
        revenue,
        affordability,
        runtime,
    })
}

/// Prices `problem` with every listed strategy, fanning the independent
/// solves out over scoped threads (the brute force dominates the wall
/// clock, so the DP and baselines finish in its shadow). Outcomes keep the
/// input strategy order.
pub fn compare_strategies(
    problem: &RevenueProblem,
    strategies: &[PricingStrategy],
) -> Result<Vec<StrategyOutcome>> {
    crate::parallel::parallel_map(strategies.to_vec(), None, |s| price_with(s, problem))
        .into_iter()
        .collect()
}

/// Monte-Carlo check of an outcome against a sampled buyer population:
/// returns `(realized revenue per buyer, realized affordability)`.
pub fn realize_outcome(
    outcome: &StrategyOutcome,
    problem: &RevenueProblem,
    buyers: usize,
    rng: &mut NimbusRng,
) -> Result<(f64, f64)> {
    let pop = BuyerPopulation::sample(problem, buyers, rng)?;
    let (rev, aff) = pop.evaluate_prices(&outcome.prices)?;
    Ok((rev / buyers as f64, aff))
}

/// The staged arbitrage demonstration of Figures 3/5(a): price naively at
/// the (convex) valuation curve and exhibit the cheap combination a savvy
/// buyer would purchase instead.
#[derive(Debug, Clone)]
pub struct ArbitrageDemo {
    /// The naive (valuation-matching) prices.
    pub naive_prices: Vec<f64>,
    /// The found attack, if the naive pricing is indeed vulnerable.
    pub attack: Option<ArbitrageAttack>,
}

/// Runs the arbitrage demonstration against naive valuation pricing.
pub fn arbitrage_demo(problem: &RevenueProblem) -> Result<ArbitrageDemo> {
    let params = problem.parameters();
    let naive_prices = problem.valuations();
    let pricing = PiecewiseLinearPricing::new(
        params
            .iter()
            .copied()
            .zip(naive_prices.iter().copied())
            .collect(),
    )?;
    // Attack the most accurate (most expensive) version.
    let target = *params.last().expect("non-empty problem");
    let attack = find_attack(&pricing, target, &params, 4 * params.len().max(100))?;
    Ok(ArbitrageDemo {
        naive_prices,
        attack,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curves::{DemandCurve, MarketCurves, ValueCurve};
    use nimbus_randkit::seeded_rng;

    fn convex_market(n: usize) -> RevenueProblem {
        MarketCurves::new(ValueCurve::standard_convex(), DemandCurve::Uniform)
            .build_problem(n)
            .unwrap()
    }

    #[test]
    fn mbp_dominates_all_baselines_on_convex_market() {
        // Every baseline (constants; a non-negative-intercept line) is
        // itself relaxed-feasible, so the DP's optimum must weakly dominate
        // all of them on *revenue*. (Affordability dominance is empirical,
        // not a theorem — §6.3 notes MedC can slightly exceed MBP there —
        // so it is asserted only against the revenue-oriented baselines.)
        let problem = convex_market(60);
        let outcomes = compare_strategies(&problem, &PricingStrategy::FAST).unwrap();
        let mbp = &outcomes[0];
        assert_eq!(mbp.name, "MBP");
        for o in &outcomes[1..] {
            assert!(
                mbp.revenue >= o.revenue - 1e-9,
                "{} revenue {} beats MBP {}",
                o.name,
                o.revenue,
                mbp.revenue
            );
        }
        let maxc = outcomes.iter().find(|o| o.name == "MaxC").unwrap();
        let lin = outcomes.iter().find(|o| o.name == "Lin").unwrap();
        assert!(mbp.affordability >= maxc.affordability - 1e-9);
        assert!(mbp.affordability >= lin.affordability - 1e-9);
    }

    /// Convex-valued problem on the integer grid `a = 10, 20, …, 10n` —
    /// grid-rational, as the brute force's covering DP requires.
    fn integer_convex_market(n: usize) -> RevenueProblem {
        let value = ValueCurve::standard_convex();
        let a: Vec<f64> = (1..=n).map(|j| 10.0 * j as f64).collect();
        let v: Vec<f64> = (0..n)
            .map(|j| {
                let t = if n == 1 {
                    0.5
                } else {
                    j as f64 / (n - 1) as f64
                };
                value.value_at(t)
            })
            .collect();
        let b = vec![1.0 / n as f64; n];
        RevenueProblem::from_slices(&a, &b, &v).unwrap()
    }

    #[test]
    fn mbp_within_factor_two_of_brute_force() {
        // Small n so the brute force stays fast.
        let problem = integer_convex_market(10);
        let mbp = price_with(PricingStrategy::Mbp, &problem).unwrap();
        let bf = price_with(PricingStrategy::BruteForce, &problem).unwrap();
        assert!(mbp.revenue <= bf.revenue + 1e-9);
        assert!(mbp.revenue >= bf.revenue / 2.0 - 1e-9);
    }

    #[test]
    fn concave_market_gives_mbp_full_extraction() {
        let problem = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform)
            .build_problem(40)
            .unwrap();
        let mbp = price_with(PricingStrategy::Mbp, &problem).unwrap();
        // A concave value curve is (almost) subadditive, so MBP extracts
        // essentially the entire valuation mass. "Almost": the curve starts
        // at v_min = 2 at x = 1 rather than passing through the origin, so
        // the unit price rises briefly at the very left edge and the DP
        // must shave a little there.
        let full: f64 = problem.points().iter().map(|p| p.b * p.v).sum();
        assert!(
            mbp.revenue >= 0.95 * full,
            "revenue {} below 95% of full extraction {}",
            mbp.revenue,
            full
        );
        assert!(mbp.affordability >= 0.95);
    }

    #[test]
    fn realized_outcomes_match_expected() {
        let problem = convex_market(30);
        let mbp = price_with(PricingStrategy::Mbp, &problem).unwrap();
        let mut rng = seeded_rng(17);
        let (realized_rev, realized_aff) =
            realize_outcome(&mbp, &problem, 40_000, &mut rng).unwrap();
        // Expected revenue is per unit of demand mass (masses sum to 1), so
        // per-buyer realized revenue converges to it.
        assert!(
            (realized_rev - mbp.revenue).abs() < 0.05 * mbp.revenue,
            "realized {realized_rev} vs expected {}",
            mbp.revenue
        );
        assert!((realized_aff - mbp.affordability).abs() < 0.02);
    }

    #[test]
    fn naive_convex_pricing_is_attackable() {
        let problem = convex_market(20);
        let demo = arbitrage_demo(&problem).unwrap();
        let attack = demo
            .attack
            .expect("convex valuation pricing must admit arbitrage");
        assert!(attack.savings() > 0.0);
        assert!(attack.combined_inverse_ncp() >= attack.target - 1e-9);
        // The attack buys strictly more than one instance.
        let count: usize = attack.purchases.iter().map(|(_, c)| *c).sum();
        assert!(count >= 2);
    }

    #[test]
    fn concave_pricing_is_not_attackable() {
        let problem = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform)
            .build_problem(20)
            .unwrap();
        let demo = arbitrage_demo(&problem).unwrap();
        assert!(
            demo.attack.is_none(),
            "concave valuations are subadditive; no attack should exist"
        );
    }

    #[test]
    fn milp_is_slower_than_dp_at_moderate_n() {
        let problem = integer_convex_market(14);
        let mbp = price_with(PricingStrategy::Mbp, &problem).unwrap();
        let bf = price_with(PricingStrategy::BruteForce, &problem).unwrap();
        assert!(
            bf.runtime > mbp.runtime,
            "brute force {:?} should exceed DP {:?}",
            bf.runtime,
            mbp.runtime
        );
    }

    #[test]
    fn strategy_names() {
        let names: Vec<&str> = PricingStrategy::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["MBP", "Lin", "MaxC", "MedC", "OptC", "MILP"]);
    }
}
