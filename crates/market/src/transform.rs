//! The error-curve transformation of Figure 2(a)→(b).
//!
//! Market research naturally expresses buyer value and demand **as functions
//! of model error** ("a model with 5% misclassification is worth $80 to this
//! segment"). The optimizer, however, works over the inverse NCP `x = 1/δ`.
//! The bridge — pushing the research through the monotone error curve onto
//! the φ-mapped grid — lives with the problem type it produces:
//! [`RevenueProblem::on_phi_grid`] in `nimbus-optim`. This module keeps the
//! market-level entry point, which simply delegates and lifts the error.

use crate::Result;
use nimbus_core::ErrorCurve;
use nimbus_optim::RevenueProblem;

/// Transforms error-domain market research onto the inverse-NCP axis.
///
/// * `error_curve` — the broker's estimated (or analytic) transformation
///   curve for the buyer's chosen error function `ε`; its grid becomes the
///   version menu.
/// * `value_of_error` — buyer value at a given expected error; should be
///   non-increasing in the error (violations are isotonically repaired).
/// * `demand_of_error` — non-negative demand mass at a given expected
///   error; normalized to sum to 1 across the menu.
///
/// Delegates to [`RevenueProblem::on_phi_grid`].
pub fn transform_research<FV, FD>(
    error_curve: &ErrorCurve,
    value_of_error: FV,
    demand_of_error: FD,
) -> Result<RevenueProblem>
where
    FV: Fn(f64) -> f64,
    FD: Fn(f64) -> f64,
{
    RevenueProblem::on_phi_grid(error_curve, value_of_error, demand_of_error).map_err(Into::into)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_core::Ncp;

    fn square_loss_curve() -> ErrorCurve {
        // δ grid 0.05..1 → x grid 1..20, E[ε_s] = δ.
        let deltas: Vec<Ncp> = (1..=20)
            .map(|i| Ncp::new(i as f64 * 0.05).unwrap())
            .collect();
        ErrorCurve::analytic_square_loss(&deltas).unwrap()
    }

    #[test]
    fn transforms_value_and_demand() {
        let curve = square_loss_curve();
        // Value: $100 at zero error, linearly down to $0 at error 1.
        // Demand: uniform over errors.
        let problem = transform_research(&curve, |e| 100.0 * (1.0 - e), |_| 1.0).unwrap();
        assert_eq!(problem.len(), 20);
        // Ascending x with ascending v.
        let a = problem.parameters();
        assert!(a.windows(2).all(|w| w[1] > w[0]));
        let v = problem.valuations();
        assert!(v.windows(2).all(|w| w[1] >= w[0]));
        // Highest-accuracy version (x = 1/0.05 = 20, error 0.05) is worth 95.
        assert!((v.last().unwrap() - 95.0).abs() < 1e-9);
        // Demand normalized.
        assert!((problem.total_demand() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn demand_can_concentrate_on_low_error() {
        let curve = square_loss_curve();
        let problem = transform_research(
            &curve,
            |e| 100.0 / (1.0 + e),
            // Only errors below 0.2 have demand.
            |e| if e < 0.2 { 1.0 } else { 0.0 },
        )
        .unwrap();
        let demands = problem.demands();
        let positive: usize = demands.iter().filter(|&&b| b > 0.0).count();
        assert_eq!(positive, 3, "errors 0.05, 0.10, 0.15 qualify");
        // All demand mass sits on the most accurate versions (largest a).
        let pts = problem.points();
        assert!(pts[pts.len() - 1].b > 0.0);
        assert_eq!(pts[0].b, 0.0);
    }

    #[test]
    fn non_monotone_research_is_repaired() {
        let curve = square_loss_curve();
        // A wiggly value function: not monotone in error.
        let problem =
            transform_research(&curve, |e| 50.0 + 10.0 * (e * 40.0).sin(), |_| 1.0).unwrap();
        let v = problem.valuations();
        assert!(v.windows(2).all(|w| w[1] >= w[0] - 1e-12));
    }

    #[test]
    fn rejects_degenerate_research() {
        let curve = square_loss_curve();
        assert!(transform_research(&curve, |_| f64::NAN, |_| 1.0).is_err());
        assert!(transform_research(&curve, |_| 1.0, |_| -1.0).is_err());
        assert!(transform_research(&curve, |_| 1.0, |_| 0.0).is_err());
    }

    #[test]
    fn end_to_end_with_revenue_dp() {
        let curve = square_loss_curve();
        let problem = transform_research(&curve, |e| 100.0 * (1.0 - e).max(0.0), |_| 1.0).unwrap();
        let dp = nimbus_optim::solve_revenue_dp(&problem).unwrap();
        assert!(dp.revenue > 0.0);
        // Prices respect the relaxed constraints on the transformed axis.
        assert!(nimbus_optim::objective::satisfies_relaxed_constraints(
            &dp.prices,
            &problem.parameters(),
            1e-9
        ));
    }
}
