// Test code: `unwrap`/`panic!` are assertions here, not serving-path
// hazards — opt out of the workspace panic-hygiene lints.
#![allow(clippy::unwrap_used, clippy::panic)]

//! Concurrency guarantees of the snapshot-serving broker.
//!
//! The redesign's contract: after `open_market()` the serving path is a pure
//! read of one immutable snapshot, sale noise is a function of
//! `(seed, transaction id)` alone, and the striped ledger merges to the same
//! books regardless of thread interleaving. These tests drive 8 threads
//! against one broker and then *replay the same transaction ids
//! sequentially* on a fresh broker — the two runs must agree to the bit.

use nimbus_core::arbitrage::check_arbitrage_free;
use nimbus_core::GaussianMechanism;
use nimbus_data::catalog::{DatasetSpec, PaperDataset};
use nimbus_market::curves::{DemandCurve, MarketCurves, ValueCurve};
use nimbus_market::{Broker, MarketError, PurchaseRequest, Seller};
use nimbus_ml::LinearRegressionTrainer;

const THREADS: usize = 8;
const PURCHASES_PER_THREAD: usize = 100;

fn build_broker(seed: u64) -> Broker {
    let (dataset, _) = DatasetSpec::scaled(PaperDataset::Simulated1, 1_200)
        .materialize(seed)
        .unwrap();
    let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
    Broker::builder(Seller::new("conc", dataset, curves))
        .trainer(LinearRegressionTrainer::ridge(1e-6))
        .mechanism(GaussianMechanism)
        .n_price_points(40)
        .error_curve_samples(20)
        .seed(seed)
        .build()
        .unwrap()
}

/// The x each (thread, iteration) pair asks for — any deterministic spread
/// over the menu's support works; what matters is that threads interleave.
fn requested_x(thread: usize, i: usize) -> f64 {
    1.0 + ((thread * PURCHASES_PER_THREAD + i * 7) % 99) as f64
}

#[test]
fn eight_threads_match_sequential_replay_exactly() {
    let seed = 21;
    let broker = build_broker(seed);
    broker.open_market().unwrap();

    // Phase 1: 8 threads x 100 purchases, racing on one broker. Each sale
    // records (transaction id, x, delivered weights).
    let mut concurrent: Vec<(u64, f64, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let broker = &broker;
                scope.spawn(move || {
                    (0..PURCHASES_PER_THREAD)
                        .map(|i| {
                            let x = requested_x(t, i);
                            let quote = broker
                                .quote_request(PurchaseRequest::AtInverseNcp(x))
                                .unwrap();
                            let sale = broker.commit(quote, quote.price).unwrap();
                            (
                                sale.transaction.sequence,
                                sale.inverse_ncp,
                                sale.model.weights().as_slice().to_vec(),
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    concurrent.sort_by_key(|(seq, _, _)| *seq);

    // Transaction ids are dense: every id in 0..800 was assigned once.
    let total = THREADS * PURCHASES_PER_THREAD;
    assert_eq!(concurrent.len(), total);
    for (expect, (seq, _, _)) in concurrent.iter().enumerate() {
        assert_eq!(*seq, expect as u64);
    }

    // The merged ledger agrees with what the buyers saw.
    let ledger = broker.ledger();
    assert_eq!(ledger.count(), total);
    let seen_revenue: f64 = broker.collected_revenue();
    assert!((ledger.total_revenue() - seen_revenue).abs() < 1e-9);

    // Phase 2: sequential replay. A fresh broker with the same seed is asked
    // for the same x's *in transaction-id order*; ids are re-assigned
    // 0,1,2,... so every sale must reproduce the concurrent run bit-for-bit
    // — noise is a pure function of (seed, transaction id, x).
    let replay = build_broker(seed);
    replay.open_market().unwrap();
    for (seq, x, weights) in &concurrent {
        let quote = replay
            .quote_request(PurchaseRequest::AtInverseNcp(*x))
            .unwrap();
        let sale = replay.commit(quote, quote.price).unwrap();
        assert_eq!(sale.transaction.sequence, *seq);
        assert_eq!(
            sale.model.weights().as_slice(),
            weights.as_slice(),
            "weights diverged at transaction {seq}"
        );
    }
    assert_eq!(replay.sales_count(), broker.sales_count());
    // Entry-by-entry the two merged ledgers are bitwise identical…
    for (c, s) in ledger
        .transactions()
        .iter()
        .zip(replay.ledger().transactions())
    {
        assert_eq!(c.sequence, s.sequence);
        assert_eq!(c.inverse_ncp, s.inverse_ncp);
        assert_eq!(c.price, s.price);
    }
    // …while the running totals accumulate in shard-arrival order, which
    // the race reorders, so the sums agree only up to f64 reassociation.
    assert!(
        (replay.collected_revenue() - broker.collected_revenue()).abs() < 1e-6,
        "ledger totals diverged: sequential {} vs concurrent {}",
        replay.collected_revenue(),
        broker.collected_revenue()
    );

    // And the snapshot the threads were served from is still arbitrage-free.
    let snapshot = broker.snapshot().unwrap();
    let grid: Vec<f64> = snapshot.menu().iter().map(|(x, _)| *x).collect();
    let report = check_arbitrage_free(snapshot.pricing(), &grid, 1e-9).unwrap();
    assert!(report.is_arbitrage_free(), "{report:?}");
}

/// Satellite to the serving layer: one writer thread per ledger stripe.
/// With 16 threads racing and dense transaction ids, every one of the 16
/// stripes takes writes; the merged books must still match a sequential
/// replay of the same purchases.
#[test]
fn sixteen_threads_commit_through_every_ledger_stripe() {
    const THREADS_16: usize = 16;
    const PER_THREAD: usize = 32;
    let broker = build_broker(63);
    broker.open_market().unwrap();

    let mut sales: Vec<(u64, f64, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS_16)
            .map(|t| {
                let broker = &broker;
                scope.spawn(move || {
                    (0..PER_THREAD)
                        .map(|i| {
                            let x = 1.0 + ((t * PER_THREAD + i * 5) % 99) as f64;
                            let quote = broker
                                .quote_request(PurchaseRequest::AtInverseNcp(x))
                                .unwrap();
                            let sale = broker.commit(quote, quote.price).unwrap();
                            (sale.transaction.sequence, sale.inverse_ncp, sale.price)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    sales.sort_by_key(|(seq, _, _)| *seq);

    let total = THREADS_16 * PER_THREAD;
    let ledger = broker.ledger();
    assert_eq!(ledger.count(), total);

    // Dense ids 0..512 mean every residue class mod 16 — i.e. every ledger
    // stripe — recorded exactly `total / 16` transactions.
    let mut per_stripe = [0usize; 16];
    for (seq, _, _) in &sales {
        per_stripe[(*seq % 16) as usize] += 1;
    }
    assert!(
        per_stripe.iter().all(|&n| n == total / 16),
        "{per_stripe:?}"
    );

    // Sequential replay in transaction-id order: same sale count, same
    // per-transaction books, totals equal up to f64 reassociation.
    let replay = build_broker(63);
    replay.open_market().unwrap();
    for (seq, x, price) in &sales {
        let quote = replay
            .quote_request(PurchaseRequest::AtInverseNcp(*x))
            .unwrap();
        let sale = replay.commit(quote, quote.price).unwrap();
        assert_eq!(sale.transaction.sequence, *seq);
        assert_eq!(sale.price, *price, "price diverged at transaction {seq}");
    }
    assert_eq!(replay.sales_count(), broker.sales_count());
    assert!((replay.collected_revenue() - broker.collected_revenue()).abs() < 1e-6);
    assert!((ledger.total_revenue() - replay.ledger().total_revenue()).abs() < 1e-6);
}

/// The quote→commit epoch protocol: a quote priced before `open_market()`
/// re-runs is pinned to the superseded snapshot and must fail with the
/// typed epoch mismatch — never silently honor stale prices.
#[test]
fn quote_from_before_market_reopen_fails_with_epoch_mismatch() {
    let broker = build_broker(77);
    broker.open_market().unwrap();
    let first_epoch = broker.snapshot().unwrap().epoch();
    let stale = broker
        .quote_request(PurchaseRequest::AtInverseNcp(10.0))
        .unwrap();
    assert_eq!(stale.snapshot_epoch, first_epoch);

    // Re-open: a new snapshot (new epoch) replaces the one quoted against.
    broker.open_market().unwrap();
    let current_epoch = broker.snapshot().unwrap().epoch();
    assert!(current_epoch > first_epoch);

    match broker.commit(stale, stale.price) {
        Err(MarketError::QuoteExpired { quoted, current }) => {
            assert_eq!(quoted, first_epoch);
            assert_eq!(current, current_epoch);
        }
        other => panic!("expected QuoteExpired, got {other:?}"),
    }
    assert_eq!(broker.sales_count(), 0, "a stale quote must record no sale");

    // A quote against the new snapshot commits fine.
    let fresh = broker
        .quote_request(PurchaseRequest::AtInverseNcp(10.0))
        .unwrap();
    assert_eq!(fresh.snapshot_epoch, current_epoch);
    broker.commit(fresh, fresh.price).unwrap();
    assert_eq!(broker.sales_count(), 1);
}

#[test]
fn purchase_batch_multithreaded_matches_single_threaded_books() {
    let requests: Vec<PurchaseRequest> = (0..THREADS * PURCHASES_PER_THREAD)
        .map(|i| match i % 3 {
            0 => PurchaseRequest::AtInverseNcp(1.0 + (i % 99) as f64),
            1 => PurchaseRequest::ErrorBudget(1.0 / (1.0 + (i % 80) as f64)),
            _ => PurchaseRequest::PriceBudget(10.0 + (i % 60) as f64),
        })
        .collect();

    let wide = build_broker(33);
    wide.open_market().unwrap();
    let wide_sales = wide.purchase_batch_with(&requests, Some(THREADS));
    assert!(wide_sales.iter().all(|s| s.is_ok()));

    let narrow = build_broker(33);
    narrow.open_market().unwrap();
    let narrow_sales = narrow.purchase_batch_with(&requests, Some(1));

    // Prices come from the immutable snapshot (never from the racing
    // transaction counter), so each request costs the same under either
    // thread count, and the two ledgers record the same multiset of sales.
    for (w, n) in wide_sales.iter().zip(&narrow_sales) {
        let (w, n) = (w.as_ref().unwrap(), n.as_ref().unwrap());
        assert_eq!(w.price, n.price);
        assert_eq!(w.inverse_ncp, n.inverse_ncp);
    }
    // Totals only up to f64 reassociation: shard sums accumulate in
    // arrival order, which differs across thread counts.
    assert!((wide.collected_revenue() - narrow.collected_revenue()).abs() < 1e-6);
}
