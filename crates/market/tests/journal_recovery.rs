// Test code: `unwrap`/`panic!` are assertions here, not serving-path
// hazards — opt out of the workspace panic-hygiene lints.
#![allow(clippy::unwrap_used, clippy::panic)]

//! Crash-recovery integration tests: a journaled broker is killed (dropped
//! or fault-injected mid-commit) and rebuilt from its write-ahead log; the
//! replayed books must reconcile exactly with what buyers were acked, and
//! retried idempotent commits must dedup instead of double-charging.

use nimbus_core::GaussianMechanism;
use nimbus_data::catalog::{DatasetSpec, PaperDataset};
use nimbus_market::curves::{DemandCurve, MarketCurves, ValueCurve};
use nimbus_market::journal::{self, FaultPlan, Journal, JournalError, SaleRecord};
use nimbus_market::{Broker, BrokerBuilder, MarketError, PurchaseRequest, Seller, Transaction};
use nimbus_ml::LinearRegressionTrainer;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

fn temp_path(name: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!(
        "nimbus-recovery-{}-{}-{}.journal",
        std::process::id(),
        name,
        n
    ))
}

fn journaled_builder(path: &Path) -> BrokerBuilder {
    let (tt, _) = DatasetSpec::scaled(PaperDataset::Simulated1, 400)
        .materialize(7)
        .unwrap();
    let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
    Broker::builder(Seller::new("journaled", tt, curves))
        .trainer(LinearRegressionTrainer::ridge(1e-6))
        .mechanism(GaussianMechanism)
        .n_price_points(24)
        .error_curve_samples(12)
        .seed(42)
        .journal(path)
}

#[test]
fn broker_resumes_books_after_restart() {
    let path = temp_path("resume");
    let (acked_ids, acked_revenue) = {
        let broker = journaled_builder(&path).build().unwrap();
        assert_eq!(broker.recovery().unwrap().transactions.len(), 0);
        broker.open_market().unwrap();
        assert_eq!(broker.snapshot().unwrap().epoch(), 1);
        let mut ids = Vec::new();
        let mut revenue = 0.0;
        for x in [5.0, 20.0, 60.0, 90.0] {
            let q = broker
                .quote_request(PurchaseRequest::AtInverseNcp(x))
                .unwrap();
            let sale = broker.commit(q, q.price).unwrap();
            ids.push(sale.transaction.sequence);
            revenue += sale.price;
        }
        (ids, revenue)
        // Dropped without any graceful flush — the WAL is the only record.
    };

    let broker = journaled_builder(&path).build().unwrap();
    let recovery = broker.recovery().unwrap();
    assert!(recovery.truncated.is_none());
    assert_eq!(recovery.transactions.len(), 4);
    // Books reconcile exactly: same count, same ids, same revenue.
    assert_eq!(broker.sales_count(), 4);
    assert!((broker.collected_revenue() - acked_revenue).abs() < 1e-12);
    let ledger = broker.ledger();
    let replayed: Vec<u64> = ledger.transactions().iter().map(|t| t.sequence).collect();
    assert_eq!(replayed, acked_ids);

    // Epochs continue above the pre-crash epoch: the restarted market
    // posts epoch 2, and a quote from the dead process is rejected.
    broker.open_market().unwrap();
    assert_eq!(broker.snapshot().unwrap().epoch(), 2);
    assert!(matches!(
        broker.commit_at(10.0, 1, 1e9),
        Err(MarketError::QuoteExpired {
            quoted: 1,
            current: 2
        })
    ));

    // New sales continue the id sequence past the replayed ids.
    let q = broker
        .quote_request(PurchaseRequest::AtInverseNcp(10.0))
        .unwrap();
    let sale = broker.commit(q, q.price).unwrap();
    assert_eq!(sale.transaction.sequence, 4);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn idempotent_commit_is_exactly_once_within_and_across_restart() {
    let path = temp_path("idempotent");
    let nonce = 0xFEED_F00D_u64;
    let (original_id, original_price, original_weights) = {
        let broker = journaled_builder(&path).build().unwrap();
        broker.open_market().unwrap();
        let q = broker
            .quote_request(PurchaseRequest::AtInverseNcp(30.0))
            .unwrap();
        let first = broker
            .commit_at_idempotent(q.x, q.snapshot_epoch, q.price, nonce)
            .unwrap();
        // A retry with the same key replays the same sale: same id, same
        // price, bitwise-identical noisy model, no new ledger row.
        let retry = broker
            .commit_at_idempotent(q.x, q.snapshot_epoch, q.price, nonce)
            .unwrap();
        assert_eq!(retry.transaction.sequence, first.transaction.sequence);
        assert_eq!(retry.price.to_bits(), first.price.to_bits());
        assert_eq!(
            retry.model.weights().as_slice(),
            first.model.weights().as_slice()
        );
        assert_eq!(broker.sales_count(), 1);
        (
            first.transaction.sequence,
            first.price,
            first.model.weights().as_slice().to_vec(),
        )
    };

    // The journal holds the sale exactly once.
    let (_, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
    assert_eq!(rec.transactions.len(), 1);
    assert_eq!(rec.dedup.len(), 1);
    assert_eq!(rec.dedup[0], (1, nonce, original_id));

    // A retry that lands on a *restarted* broker (the lost-ACK case)
    // still dedups: the key was replayed from the journal and the replay
    // re-derives the identical sale, even though the live epoch moved on.
    let broker = journaled_builder(&path).build().unwrap();
    broker.open_market().unwrap();
    assert_eq!(broker.snapshot().unwrap().epoch(), 2);
    let replayed = broker
        .commit_at_idempotent(30.0, 1, original_price, nonce)
        .unwrap();
    assert_eq!(replayed.transaction.sequence, original_id);
    assert_eq!(replayed.price.to_bits(), original_price.to_bits());
    assert_eq!(replayed.model.weights().as_slice(), original_weights);
    assert_eq!(broker.sales_count(), 1);

    // An *unknown* key against the dead epoch is not replayable — it gets
    // the ordinary staleness rejection, not a silent sale.
    assert!(matches!(
        broker.commit_at_idempotent(30.0, 1, original_price, nonce + 1),
        Err(MarketError::QuoteExpired { .. })
    ));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn faulty_journal_never_acks_an_unjournaled_sale() {
    let path = temp_path("faulty");
    let plan = FaultPlan::new().fail_nth_write(3).short_nth_write(6);
    let mut acked: Vec<(u64, f64)> = Vec::new();
    let mut rejected = 0;
    {
        let broker = journaled_builder(&path)
            .journal_faults(plan)
            .build()
            .unwrap();
        broker.open_market().unwrap();
        for i in 0..10 {
            let x = 5.0 + 9.0 * i as f64;
            let q = broker
                .quote_request(PurchaseRequest::AtInverseNcp(x))
                .unwrap();
            match broker.commit(q, q.price) {
                Ok(sale) => acked.push((sale.transaction.sequence, sale.price)),
                Err(MarketError::Journal(_)) => rejected += 1,
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        // Both armed faults fired; everything else was acked.
        assert_eq!(rejected, 2);
        assert_eq!(acked.len(), 8);
        // The in-memory ledger already reconciles with the acks.
        assert_eq!(broker.sales_count(), 8);
    }

    // Kill and restart: the replayed ledger is exactly the acked set —
    // same ids, same prices, same total — and nothing that failed.
    let broker = journaled_builder(&path).build().unwrap();
    let recovery = broker.recovery().unwrap();
    assert!(recovery.truncated.is_none(), "{:?}", recovery.truncated);
    let ledger = broker.ledger();
    let replayed: Vec<(u64, f64)> = ledger
        .transactions()
        .iter()
        .map(|t| (t.sequence, t.price))
        .collect();
    assert_eq!(replayed, acked);
    let acked_total: f64 = acked.iter().map(|&(_, p)| p).sum();
    assert!((broker.collected_revenue() - acked_total).abs() < 1e-12);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn concurrent_journaled_commits_replay_in_commit_order() {
    let path = temp_path("concurrent");
    let threads = 4;
    let per_thread = 25;
    {
        let broker = std::sync::Arc::new(journaled_builder(&path).build().unwrap());
        broker.open_market().unwrap();
        std::thread::scope(|s| {
            for t in 0..threads {
                let b = broker.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        let x = 1.0 + ((t * per_thread + i) % 99) as f64;
                        let q = b.quote_request(PurchaseRequest::AtInverseNcp(x)).unwrap();
                        b.commit(q, q.price).unwrap();
                    }
                });
            }
        });
    }
    let broker = journaled_builder(&path).build().unwrap();
    assert_eq!(broker.sales_count(), threads * per_thread);
    // Replay order equals commit (transaction-id) order: the merged
    // ledger is exactly 0..N in sequence, with every id exactly once.
    let ledger = broker.ledger();
    let seqs: Vec<u64> = ledger.transactions().iter().map(|t| t.sequence).collect();
    assert_eq!(
        seqs,
        (0..(threads * per_thread) as u64).collect::<Vec<u64>>()
    );
    std::fs::remove_file(&path).unwrap();
}

// ---------------------------------------------------------------------------
// Corruption corpus: handcrafted bad journals, each asserting the typed
// error and that the valid prefix is salvaged (file truncated back to it).
// ---------------------------------------------------------------------------

fn sale_frame(tx_id: u64, epoch: u64) -> Vec<u8> {
    journal::frame_record(&journal::encode_sale_payload(&SaleRecord {
        transaction: Transaction {
            sequence: tx_id,
            inverse_ncp: 10.0,
            price: 3.0,
            expected_error: 0.1,
        },
        snapshot_epoch: epoch,
        nonce: None,
        buyer: None,
    }))
}

fn buyer_sale_frame(tx_id: u64, epoch: u64, buyer: u64) -> Vec<u8> {
    journal::frame_record(&journal::encode_sale_payload(&SaleRecord {
        transaction: Transaction {
            sequence: tx_id,
            inverse_ncp: 10.0,
            price: 3.0,
            expected_error: 0.1,
        },
        snapshot_epoch: epoch,
        nonce: None,
        buyer: Some(buyer),
    }))
}

fn write_journal(name: &str, tail: &[u8], valid_records: &[Vec<u8>]) -> PathBuf {
    let path = temp_path(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(&journal::MAGIC).unwrap();
    for r in valid_records {
        f.write_all(r).unwrap();
    }
    f.write_all(tail).unwrap();
    path
}

#[test]
fn corpus_truncated_length_prefix() {
    // Two good sales, then a torn length prefix (2 of 4 bytes).
    let good = vec![sale_frame(0, 1), sale_frame(1, 1)];
    let path = write_journal("corpus-torn-len", &[0x00, 0x00], &good);
    let valid_len = (journal::MAGIC.len() + good[0].len() + good[1].len()) as u64;
    let (_, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
    assert!(matches!(
        rec.truncated,
        Some(JournalError::TruncatedRecord { offset }) if offset == valid_len
    ));
    assert_eq!(rec.transactions.len(), 2);
    assert_eq!(rec.valid_bytes, valid_len);
    assert_eq!(std::fs::metadata(&path).unwrap().len(), valid_len);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn corpus_bad_checksum() {
    let good = vec![sale_frame(0, 1)];
    let mut corrupt = sale_frame(1, 1);
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x01; // payload no longer matches its CRC
    let path = write_journal("corpus-bad-crc", &corrupt, &good);
    let valid_len = (journal::MAGIC.len() + good[0].len()) as u64;
    let (_, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
    assert!(matches!(
        rec.truncated,
        Some(JournalError::BadChecksum { offset }) if offset == valid_len
    ));
    assert_eq!(rec.transactions.len(), 1);
    assert_eq!(std::fs::metadata(&path).unwrap().len(), valid_len);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn corpus_duplicate_transaction_id() {
    let good = vec![sale_frame(0, 1), sale_frame(1, 1)];
    let dup = sale_frame(1, 1);
    let path = write_journal("corpus-dup-tx", &dup, &good);
    let (_, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
    assert!(matches!(
        rec.truncated,
        Some(JournalError::DuplicateTransaction { tx_id: 1, .. })
    ));
    assert_eq!(rec.transactions.len(), 2);
    assert_eq!(rec.next_tx_id, 2);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn corpus_epoch_regression() {
    let good = vec![sale_frame(0, 2)];
    let regressing = sale_frame(1, 1);
    let path = write_journal("corpus-epoch", &regressing, &good);
    let (_, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
    assert!(matches!(
        rec.truncated,
        Some(JournalError::EpochRegression {
            previous: 2,
            got: 1,
            ..
        })
    ));
    assert_eq!(rec.transactions.len(), 1);
    assert_eq!(rec.max_epoch, 2);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn corpus_torn_buyer_sale_tail_salvages_accounts() {
    // A buyer-attributed sale torn mid-record: the salvage must keep the
    // complete prefix *and* the per-buyer spend it implies — the torn
    // record contributes neither a transaction nor a charge.
    let good = vec![sale_frame(0, 1), buyer_sale_frame(1, 1, 7)];
    let torn = buyer_sale_frame(2, 1, 7);
    let tail = &torn[..torn.len() / 2];
    let path = write_journal("corpus-torn-buyer", tail, &good);
    let valid_len = (journal::MAGIC.len() + good[0].len() + good[1].len()) as u64;
    let (_, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
    assert!(matches!(
        rec.truncated,
        Some(JournalError::TruncatedRecord { offset }) if offset == valid_len
    ));
    assert_eq!(rec.transactions.len(), 2);
    assert_eq!(rec.accounts, vec![(7, 10.0)]);
    assert_eq!(std::fs::metadata(&path).unwrap().len(), valid_len);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn corpus_bit_flipped_buyer_tag_is_a_bad_record() {
    // Flip one bit in the SALE_BUYER tag (0x03 → 0x0B) and re-frame so
    // the checksum is *valid* — the decoder must still reject it as an
    // unknown tag, not replay garbage, and salvage the buyer accounts of
    // the intact prefix.
    let good = vec![buyer_sale_frame(0, 1, 7), buyer_sale_frame(1, 1, 8)];
    let mut payload = journal::encode_sale_payload(&SaleRecord {
        transaction: Transaction {
            sequence: 2,
            inverse_ncp: 10.0,
            price: 3.0,
            expected_error: 0.1,
        },
        snapshot_epoch: 1,
        nonce: None,
        buyer: Some(9),
    });
    assert_eq!(payload[0], 0x03, "SALE_BUYER tag moved; update the flip");
    payload[0] ^= 0x08;
    let tail = journal::frame_record(&payload);
    let path = write_journal("corpus-flipped-tag", &tail, &good);
    let (_, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
    match rec.truncated {
        Some(JournalError::BadRecord { ref reason, .. }) => {
            assert!(reason.contains("unknown record tag"), "{reason}");
        }
        ref other => panic!("expected BadRecord, got {other:?}"),
    }
    assert_eq!(rec.transactions.len(), 2);
    assert_eq!(rec.accounts, vec![(7, 10.0), (8, 10.0)]);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn corpus_checkpoint_with_short_accounts_section() {
    // A checkpoint whose accounts section claims two entries but carries
    // one: structurally well-framed (valid CRC), semantically short. The
    // scan must stop with a typed BadRecord and keep the prefix's books.
    let good = vec![buyer_sale_frame(0, 1, 9)];
    let mut payload = vec![0x02u8]; // TAG_CHECKPOINT
    payload.extend_from_slice(&1u64.to_be_bytes()); // next_tx
    payload.extend_from_slice(&1u64.to_be_bytes()); // max_epoch
    payload.extend_from_slice(&0u32.to_be_bytes()); // no transactions
    payload.extend_from_slice(&0u32.to_be_bytes()); // no dedup keys
    payload.extend_from_slice(&2u32.to_be_bytes()); // claims 2 accounts…
    payload.extend_from_slice(&9u64.to_be_bytes()); // …delivers half of one
    let tail = journal::frame_record(&payload);
    let path = write_journal("corpus-short-accounts", &tail, &good);
    let valid_len = (journal::MAGIC.len() + good[0].len()) as u64;
    let (_, rec) = Journal::open(&path, 0, FaultPlan::new()).unwrap();
    assert!(matches!(
        rec.truncated,
        Some(JournalError::BadRecord { offset, .. }) if offset == valid_len
    ));
    assert_eq!(rec.transactions.len(), 1);
    assert_eq!(rec.accounts, vec![(9, 10.0)]);
    assert_eq!(std::fs::metadata(&path).unwrap().len(), valid_len);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn corpus_salvaged_prefix_restores_a_broker() {
    // End-to-end over a corrupt log: the broker still builds, resuming
    // from the salvaged prefix and reporting the truncation.
    let good = vec![sale_frame(0, 1), sale_frame(1, 1), sale_frame(2, 1)];
    let mut corrupt = sale_frame(3, 1);
    corrupt[9] ^= 0x80;
    let path = write_journal("corpus-broker", &corrupt, &good);
    let broker = journaled_builder(&path).build().unwrap();
    let recovery = broker.recovery().unwrap();
    assert!(matches!(
        recovery.truncated,
        Some(JournalError::BadChecksum { .. })
    ));
    assert_eq!(broker.sales_count(), 3);
    assert!((broker.collected_revenue() - 9.0).abs() < 1e-12);
    broker.open_market().unwrap();
    // The salvaged books keep the sequence monotone: next sale is tx 3.
    let q = broker
        .quote_request(PurchaseRequest::AtInverseNcp(10.0))
        .unwrap();
    assert_eq!(broker.commit(q, q.price).unwrap().transaction.sequence, 3);
    std::fs::remove_file(&path).unwrap();
}
