// Test code: `unwrap`/`panic!` are assertions here, not serving-path
// hazards — opt out of the workspace panic-hygiene lints.
#![allow(clippy::unwrap_used, clippy::panic)]

//! Property-based tests for the marketplace layer.

use nimbus_core::GaussianMechanism;
use nimbus_data::catalog::{DatasetSpec, PaperDataset};
use nimbus_market::curves::{DemandCurve, MarketCurves, ValueCurve};
use nimbus_market::{Broker, BrokerConfig, BuyerPopulation, PurchaseRequest, Seller};
use nimbus_ml::LinearRegressionTrainer;
use nimbus_randkit::seeded_rng;
use proptest::prelude::*;

fn any_value_curve() -> impl Strategy<Value = ValueCurve> {
    prop_oneof![
        (0.1..20.0f64, 20.0..200.0f64, 1.1..6.0f64).prop_map(|(v_min, v_max, power)| {
            ValueCurve::Convex {
                v_min,
                v_max,
                power,
            }
        }),
        (0.1..20.0f64, 20.0..200.0f64, 0.1..0.9f64).prop_map(|(v_min, v_max, power)| {
            ValueCurve::Concave {
                v_min,
                v_max,
                power,
            }
        }),
        (0.1..20.0f64, 20.0..200.0f64)
            .prop_map(|(v_min, v_max)| ValueCurve::Linear { v_min, v_max }),
        (0.1..20.0f64, 20.0..200.0f64, 0.1..0.9f64, 2.0..20.0f64).prop_map(
            |(v_min, v_max, midpoint, steepness)| ValueCurve::Sigmoid {
                v_min,
                v_max,
                midpoint,
                steepness
            }
        ),
    ]
}

fn any_demand_curve() -> impl Strategy<Value = DemandCurve> {
    prop_oneof![
        Just(DemandCurve::Uniform),
        (0.05..0.5f64).prop_map(|width| DemandCurve::MidPeaked { width }),
        (0.05..0.5f64).prop_map(|width| DemandCurve::BimodalExtremes { width }),
        Just(DemandCurve::Increasing),
        Just(DemandCurve::Decreasing),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_curve_pair_builds_a_valid_problem(
        value in any_value_curve(),
        demand in any_demand_curve(),
        n in 2usize..60,
    ) {
        let problem = MarketCurves::new(value, demand).build_problem(n).unwrap();
        prop_assert_eq!(problem.len(), n);
        prop_assert!((problem.total_demand() - 1.0).abs() < 1e-9);
        // Valuations monotone, parameters strictly increasing — the DP's
        // preconditions for every shape combination.
        let v = problem.valuations();
        prop_assert!(v.windows(2).all(|w| w[1] >= w[0]));
        let a = problem.parameters();
        prop_assert!(a.windows(2).all(|w| w[1] > w[0]));
        // And the optimizer runs on it.
        let dp = nimbus_optim::solve_revenue_dp(&problem).unwrap();
        prop_assert!(dp.revenue >= 0.0);
    }

    #[test]
    fn mbp_dominates_constant_baselines_for_any_shape(
        value in any_value_curve(),
        demand in any_demand_curve(),
    ) {
        let problem = MarketCurves::new(value, demand).build_problem(25).unwrap();
        let dp = nimbus_optim::solve_revenue_dp(&problem).unwrap();
        for baseline in nimbus_optim::Baseline::fit_all(&problem).unwrap() {
            let r = nimbus_optim::revenue(&baseline.prices, &problem).unwrap();
            prop_assert!(
                dp.revenue >= r - 1e-9,
                "{} ({r}) beats MBP ({}) on {}x{}",
                baseline.kind.name(),
                dp.revenue,
                problem.points()[0].v,
                problem.len()
            );
        }
    }

    #[test]
    fn population_realization_converges_to_expectation(
        demand in any_demand_curve(),
        seed in 0u64..300,
    ) {
        let problem = MarketCurves::new(ValueCurve::standard_concave(), demand)
            .build_problem(20)
            .unwrap();
        let dp = nimbus_optim::solve_revenue_dp(&problem).unwrap();
        let expected = dp.revenue;
        let mut rng = seeded_rng(seed);
        let pop = BuyerPopulation::sample(&problem, 30_000, &mut rng).unwrap();
        let (rev, _) = pop.evaluate_prices(&dp.prices).unwrap();
        let per_buyer = rev / 30_000.0;
        prop_assert!(
            (per_buyer - expected).abs() < 0.1 * expected.max(1.0),
            "realized {per_buyer} vs expected {expected}"
        );
    }
}

// Broker invariants are slow to set up, so exercise them deterministically
// over a handful of purchase points rather than via proptest shrinking.
#[test]
fn broker_resolve_is_consistent_with_quote_across_the_menu() {
    let (tt, _) = DatasetSpec::scaled(PaperDataset::Simulated1, 600)
        .materialize(3)
        .unwrap();
    let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
    let broker = Broker::new(
        Seller::new("prop", tt, curves),
        Box::new(LinearRegressionTrainer::ridge(1e-6)),
        Box::new(GaussianMechanism),
        BrokerConfig {
            n_price_points: 30,
            error_curve_samples: 20,
            seed: 9,
        },
    );
    broker.open_market().unwrap();
    for i in 1..=30 {
        let x = 1.0 + (i as f64 / 30.0) * 99.0;
        let q = broker
            .quote_request(PurchaseRequest::AtInverseNcp(x))
            .unwrap();
        assert_eq!(q.x, x);
        assert!((q.delta - 1.0 / x).abs() < 1e-12);
        assert!((q.price - broker.quote(x).unwrap()).abs() < 1e-12);
        // Error budgets resolve to prices no greater than buying 1/e directly.
        let e = 1.0 / x;
        let bq = broker
            .quote_request(PurchaseRequest::ErrorBudget(e))
            .unwrap();
        assert!(bq.price <= q.price + 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Per-buyer budget accounting vs the arbitrage-free menu: averaging k noisy
// instances at inverse NCPs x₁..xₖ yields effective precision Σxᵢ (the
// multi-purchase analogue of Theorem 5), so the ledger meters exactly Σxᵢ
// and the money collected must be at least the posted price of the combined
// model — otherwise splitting a purchase would be an arbitrage.
// ---------------------------------------------------------------------------

fn shared_metered_broker() -> &'static Broker {
    use std::sync::OnceLock;
    static BROKER: OnceLock<Broker> = OnceLock::new();
    BROKER.get_or_init(|| {
        let (tt, _) = DatasetSpec::scaled(PaperDataset::Simulated1, 600)
            .materialize(3)
            .unwrap();
        let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
        let broker = Broker::new(
            Seller::new("prop-budget", tt, curves),
            Box::new(LinearRegressionTrainer::ridge(1e-6)),
            Box::new(GaussianMechanism),
            BrokerConfig {
                n_price_points: 30,
                error_curve_samples: 20,
                seed: 9,
            },
        );
        broker.open_market().unwrap();
        broker
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn k_purchases_charge_at_least_the_subadditive_bound(
        xs in prop::collection::vec(1.0..100.0f64, 1..6),
    ) {
        let broker = shared_metered_broker();
        // One fresh buyer per case: the shared ledger never mixes cases.
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        let buyer = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut paid = 0.0f64;
        let mut precision = 0.0f64;
        for &x in &xs {
            let q = broker
                .quote_request(PurchaseRequest::AtInverseNcp(x))
                .unwrap();
            let sale = broker.commit_for(q, q.price, buyer).unwrap();
            paid += sale.transaction.price;
            precision += sale.transaction.inverse_ncp;
        }
        // The ledger meters exactly the precision sold, accumulated in
        // commit order — bit for bit.
        prop_assert_eq!(
            broker.accounts().spent(buyer).to_bits(),
            precision.to_bits(),
            "ledger drifted from the sold precision"
        );
        // Subadditive floor: the k instances average into a model of
        // effective precision Σxᵢ (capped at the menu's support), whose
        // posted price the buyer must have at least paid.
        let combined = precision.min(100.0);
        let bound = broker.quote(combined).unwrap();
        prop_assert!(
            paid >= bound - 1e-6 * bound.abs().max(1.0),
            "k-split arbitrage: paid {paid} for effective x={combined}, menu asks {bound}"
        );
    }
}
