//! Error type for training and evaluation.

use std::fmt;

/// Errors produced by the `nimbus-ml` crate.
#[derive(Debug)]
pub enum MlError {
    /// Model dimensionality does not match the dataset's feature count.
    DimensionMismatch {
        /// Model weight count.
        model: usize,
        /// Dataset feature count.
        data: usize,
    },
    /// Training was attempted on an empty dataset.
    EmptyDataset,
    /// An iterative trainer failed to converge within its iteration budget.
    DidNotConverge {
        /// Iterations performed.
        iterations: usize,
        /// Final gradient norm (or objective change) observed.
        residual: f64,
    },
    /// A loss was asked for a derivative it does not have (e.g. the 0/1
    /// loss has no gradient).
    NotDifferentiable {
        /// Name of the loss.
        loss: &'static str,
    },
    /// An invalid hyperparameter was supplied.
    InvalidHyperparameter {
        /// Name of the hyperparameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The training loss requires binary labels but the dataset is a
    /// regression dataset (or vice versa).
    TaskMismatch {
        /// What the loss expected.
        expected: &'static str,
    },
    /// Underlying linear-algebra failure (singular/ill-conditioned system).
    Linalg(nimbus_linalg::LinalgError),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::DimensionMismatch { model, data } => write!(
                f,
                "model has {model} weights but dataset has {data} features"
            ),
            MlError::EmptyDataset => write!(f, "cannot train on an empty dataset"),
            MlError::DidNotConverge {
                iterations,
                residual,
            } => write!(
                f,
                "trainer did not converge after {iterations} iterations (residual {residual:e})"
            ),
            MlError::NotDifferentiable { loss } => {
                write!(f, "loss {loss} is not differentiable")
            }
            MlError::InvalidHyperparameter { name, value } => {
                write!(f, "invalid hyperparameter {name} = {value}")
            }
            MlError::TaskMismatch { expected } => {
                write!(f, "loss requires a {expected} dataset")
            }
            MlError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for MlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MlError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nimbus_linalg::LinalgError> for MlError {
    fn from(e: nimbus_linalg::LinalgError) -> Self {
        MlError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_details() {
        let e = MlError::DimensionMismatch { model: 3, data: 5 };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('5'));
        let e = MlError::DidNotConverge {
            iterations: 10,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn linalg_conversion_preserves_source() {
        use std::error::Error;
        let e: MlError = nimbus_linalg::LinalgError::NonFinite { op: "x" }.into();
        assert!(e.source().is_some());
    }
}
