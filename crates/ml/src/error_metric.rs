//! Buyer-facing error metrics `ε(h, D)` as first-class objects.
//!
//! The paper's §3.1 separates the *training* loss `λ` (fixed by the broker)
//! from the *buyer's* error function `ε`: Theorem 4 only needs `ε` convex
//! in `h` for the expected error to be monotone in the NCP, and Theorem 6
//! prices any strictly convex `ε` through the error-inverse map `φ`. An
//! [`ErrorMetric`] bundles an `ε` with the data it is evaluated on, so the
//! curve-estimation and pricing layers can be generic over the metric:
//!
//! * [`SquareDistanceMetric`] — `ε_s(h) = ‖h − h*‖²`, the paper's default,
//!   with the Lemma 3 closed form `E[ε_s(h^δ)] = δ` (no Monte Carlo
//!   needed);
//! * [`LossMetric`] — any Table 2 loss on a held-out dataset: logistic
//!   loss, hinge loss, test-set mean squared error, or the (non-convex,
//!   evaluation-only) 0/1 misclassification rate.

use crate::loss::{Convexity, HingeLoss, LogisticLoss, Loss, SquaredLoss, ZeroOneLoss};
use crate::{LinearModel, Result};
use nimbus_data::Dataset;

/// A buyer-facing error function `ε(·, D)` partially applied to its data.
///
/// Implementations must be cheap to call many times (Monte-Carlo curve
/// estimation evaluates thousands of noisy models) and thread-safe, since
/// the curve estimator fans evaluations out over scoped threads.
pub trait ErrorMetric: Send + Sync {
    /// Short stable identifier, used to tag quotes and sales
    /// (e.g. `"square"`, `"logistic"`, `"zero_one"`).
    fn name(&self) -> &'static str;

    /// The error of a (possibly noise-perturbed) model instance.
    fn evaluate(&self, model: &LinearModel) -> Result<f64>;

    /// Exact expected error at noise level δ, when known in closed form.
    ///
    /// Returning `Some` for every δ lets the curve layer skip Monte Carlo
    /// entirely — the square loss returns `Some(delta)` per Lemma 3.
    /// The default is `None` (estimate empirically).
    fn closed_form_expected_error(&self, _delta: f64) -> Option<f64> {
        None
    }

    /// Convexity class of the metric in the model instance `h`.
    ///
    /// [`Convexity::Strict`] is what Theorem 6 requires for the
    /// error-inverse `φ` to be a bijection; non-convex metrics (0/1 error)
    /// still get empirical curves with isotonic repair.
    fn convexity(&self) -> Convexity;
}

/// The paper's default metric: squared L2 distance to the optimal model,
/// `ε_s(h, D) = ‖h − h*_λ(D)‖²` (§3.2).
///
/// Under any unbiased mechanism with total variance δ — in particular the
/// Gaussian mechanism `K_G` — Lemma 3 gives `E[ε_s(h^δ)] = δ` exactly, so
/// this metric reports a closed form and never needs sampling.
#[derive(Debug, Clone)]
pub struct SquareDistanceMetric {
    optimal: LinearModel,
}

impl SquareDistanceMetric {
    /// Creates the metric anchored at the trained optimal model.
    pub fn new(optimal: LinearModel) -> Self {
        SquareDistanceMetric { optimal }
    }

    /// The anchor model `h*`.
    pub fn optimal(&self) -> &LinearModel {
        &self.optimal
    }
}

impl ErrorMetric for SquareDistanceMetric {
    fn name(&self) -> &'static str {
        "square"
    }

    fn evaluate(&self, model: &LinearModel) -> Result<f64> {
        model.distance_squared(&self.optimal)
    }

    fn closed_form_expected_error(&self, delta: f64) -> Option<f64> {
        // Lemma 3: E[‖h^δ − h*‖²] = δ for unbiased mechanisms with total
        // variance δ.
        Some(delta)
    }

    fn convexity(&self) -> Convexity {
        Convexity::Strict
    }
}

/// A Table 2 loss evaluated on a fixed dataset (typically the test split) —
/// the general-`ε` metrics priced through the φ map of Theorem 6.
pub struct LossMetric {
    loss: Box<dyn Loss + Send + Sync>,
    data: Dataset,
}

impl LossMetric {
    /// Wraps an arbitrary loss with its evaluation dataset.
    pub fn new(loss: Box<dyn Loss + Send + Sync>, data: Dataset) -> Self {
        LossMetric { loss, data }
    }

    /// Logistic loss on `data` (strictly convex when regularized).
    pub fn logistic(data: Dataset) -> Self {
        Self::new(Box::new(LogisticLoss::plain()), data)
    }

    /// Hinge (L2-SVM) loss on `data`; errors when `mu` is not positive.
    pub fn hinge(data: Dataset, mu: f64) -> Result<Self> {
        Ok(Self::new(Box::new(HingeLoss::new(mu)?), data))
    }

    /// 0/1 misclassification rate on `data` (evaluation-only, non-convex).
    pub fn zero_one(data: Dataset) -> Self {
        Self::new(Box::new(ZeroOneLoss), data)
    }

    /// Unregularized squared loss on `data` (test-set fit, not the
    /// closed-form distance of [`SquareDistanceMetric`]).
    pub fn test_squared(data: Dataset) -> Self {
        Self::new(Box::new(SquaredLoss::plain()), data)
    }

    /// The evaluation dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }
}

impl ErrorMetric for LossMetric {
    fn name(&self) -> &'static str {
        self.loss.name()
    }

    fn evaluate(&self, model: &LinearModel) -> Result<f64> {
        self.loss.value(model, &self.data)
    }

    fn convexity(&self) -> Convexity {
        self.loss.convexity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_data::Task;
    use nimbus_linalg::{Matrix, Vector};

    fn cls_data() -> Dataset {
        let x = Matrix::from_row_major(4, 1, vec![-2.0, -1.0, 1.0, 2.0]).unwrap();
        let y = Vector::from_vec(vec![0.0, 0.0, 1.0, 1.0]);
        Dataset::new(x, y, Task::BinaryClassification).unwrap()
    }

    #[test]
    fn square_distance_reports_lemma3_closed_form() {
        let opt = LinearModel::new(Vector::from_vec(vec![1.0, -2.0]));
        let m = SquareDistanceMetric::new(opt.clone());
        assert_eq!(m.name(), "square");
        assert_eq!(m.closed_form_expected_error(0.25), Some(0.25));
        assert_eq!(m.convexity(), Convexity::Strict);
        assert_eq!(m.evaluate(&opt).unwrap(), 0.0);
        let off = LinearModel::new(Vector::from_vec(vec![2.0, -2.0]));
        assert!((m.evaluate(&off).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loss_metrics_have_no_closed_form() {
        let m = LossMetric::zero_one(cls_data());
        assert_eq!(m.name(), "zero_one");
        assert_eq!(m.closed_form_expected_error(0.5), None);
        assert_eq!(m.convexity(), Convexity::NonConvex);
        let good = LinearModel::new(Vector::from_vec(vec![1.0]));
        assert_eq!(m.evaluate(&good).unwrap(), 0.0);
    }

    #[test]
    fn logistic_and_hinge_metrics_evaluate() {
        let log = LossMetric::logistic(cls_data());
        assert_eq!(log.name(), "logistic");
        assert_eq!(log.convexity(), Convexity::Convex);
        let strong = LinearModel::new(Vector::from_vec(vec![2.0]));
        let weak = LinearModel::new(Vector::from_vec(vec![0.1]));
        assert!(log.evaluate(&strong).unwrap() < log.evaluate(&weak).unwrap());

        let hinge = LossMetric::hinge(cls_data(), 1e-3).unwrap();
        assert_eq!(hinge.name(), "hinge");
        assert_eq!(hinge.convexity(), Convexity::Strict);
        assert!(hinge.evaluate(&strong).unwrap().is_finite());
        assert!(LossMetric::hinge(cls_data(), 0.0).is_err());
    }

    #[test]
    fn metrics_are_object_safe_and_shareable() {
        let metrics: Vec<Box<dyn ErrorMetric>> = vec![
            Box::new(SquareDistanceMetric::new(LinearModel::zeros(1))),
            Box::new(LossMetric::zero_one(cls_data())),
        ];
        let names: Vec<&str> = metrics.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["square", "zero_one"]);
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn ErrorMetric>();
    }
}
