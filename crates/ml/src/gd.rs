//! Generic batch gradient descent with backtracking line search.
//!
//! This engine is the fallback / cross-check trainer: the closed-form ridge
//! solution and the Newton logistic trainer should agree with it on convex
//! problems, which the test suites of `linreg` and `logreg` verify.

use crate::{LinearModel, Loss, MlError, Result};
use nimbus_data::Dataset;

/// Configuration for [`gradient_descent`].
#[derive(Debug, Clone, Copy)]
pub struct GdConfig {
    /// Maximum iterations before declaring non-convergence.
    pub max_iters: usize,
    /// Convergence threshold on the gradient infinity norm.
    pub tolerance: f64,
    /// Initial step size tried at each iteration.
    pub initial_step: f64,
    /// Multiplicative backtracking factor in `(0, 1)`.
    pub backtrack: f64,
    /// Armijo sufficient-decrease constant in `(0, 1/2]`.
    pub armijo: f64,
}

impl Default for GdConfig {
    fn default() -> Self {
        GdConfig {
            max_iters: 5_000,
            tolerance: 1e-8,
            initial_step: 1.0,
            backtrack: 0.5,
            armijo: 1e-4,
        }
    }
}

/// Outcome of a gradient-descent run.
#[derive(Debug, Clone)]
pub struct GdReport {
    /// The final iterate.
    pub model: LinearModel,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final objective value.
    pub objective: f64,
    /// Final gradient infinity norm.
    pub gradient_norm: f64,
    /// Whether the tolerance was met within the budget.
    pub converged: bool,
}

/// Minimizes `loss` over `data` starting from `init`.
///
/// Uses Armijo backtracking from `initial_step` each iteration; on convex
/// losses this converges to the global optimum. Returns a report rather than
/// erroring on non-convergence so callers can decide whether an inexact
/// solution is acceptable (the strict [`train_to_convergence`] wrapper
/// errors instead).
pub fn gradient_descent<L: Loss>(
    loss: &L,
    data: &Dataset,
    init: LinearModel,
    config: &GdConfig,
) -> Result<GdReport> {
    let mut model = init;
    let mut objective = loss.value(&model, data)?;
    let mut iterations = 0;
    let mut gradient_norm = f64::INFINITY;

    for iter in 0..config.max_iters {
        iterations = iter + 1;
        let grad = loss.gradient(&model, data)?;
        gradient_norm = grad.norm_inf();
        if gradient_norm <= config.tolerance {
            iterations = iter;
            return Ok(GdReport {
                model,
                iterations,
                objective,
                gradient_norm,
                converged: true,
            });
        }
        let gnorm2 = grad.norm2_squared();
        let mut step = config.initial_step;
        let mut accepted = false;
        // Backtrack until the Armijo condition holds (or the step underflows).
        while step > 1e-18 {
            let mut candidate = model.clone();
            candidate.weights_mut().axpy(-step, &grad)?;
            let cand_obj = loss.value(&candidate, data)?;
            if cand_obj <= objective - config.armijo * step * gnorm2 {
                model = candidate;
                objective = cand_obj;
                accepted = true;
                break;
            }
            step *= config.backtrack;
        }
        if !accepted {
            // Line search stalled: we are at numerical precision.
            return Ok(GdReport {
                model,
                iterations,
                objective,
                gradient_norm,
                converged: gradient_norm <= config.tolerance * 100.0,
            });
        }
    }
    Ok(GdReport {
        model,
        iterations,
        objective,
        gradient_norm,
        converged: false,
    })
}

/// Like [`gradient_descent`] but errors with [`MlError::DidNotConverge`]
/// when the tolerance is not reached.
pub fn train_to_convergence<L: Loss>(
    loss: &L,
    data: &Dataset,
    init: LinearModel,
    config: &GdConfig,
) -> Result<LinearModel> {
    let report = gradient_descent(loss, data, init, config)?;
    if report.converged {
        Ok(report.model)
    } else {
        Err(MlError::DidNotConverge {
            iterations: report.iterations,
            residual: report.gradient_norm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{LogisticLoss, SquaredLoss};
    use nimbus_data::Task;
    use nimbus_linalg::{Matrix, Vector};

    fn reg_data() -> Dataset {
        let x =
            Matrix::from_row_major(5, 2, vec![1.0, 1.0, 2.0, 1.0, 3.0, 1.0, 4.0, 1.0, 5.0, 1.0])
                .unwrap();
        // y = 3 x1 - 2 (with the constant column as intercept).
        let y = Vector::from_vec(vec![1.0, 4.0, 7.0, 10.0, 13.0]);
        Dataset::new(x, y, Task::Regression).unwrap()
    }

    #[test]
    fn recovers_exact_linear_fit() {
        let loss = SquaredLoss::plain();
        let report = gradient_descent(
            &loss,
            &reg_data(),
            LinearModel::zeros(2),
            &GdConfig {
                max_iters: 20_000,
                tolerance: 1e-10,
                ..GdConfig::default()
            },
        )
        .unwrap();
        assert!(report.converged, "gd did not converge: {report:?}");
        let w = report.model.weights();
        assert!((w[0] - 3.0).abs() < 1e-5, "w0 {}", w[0]);
        assert!((w[1] + 2.0).abs() < 1e-4, "w1 {}", w[1]);
        assert!(report.objective < 1e-8);
    }

    #[test]
    fn objective_is_monotone_decreasing_under_armijo() {
        let loss = SquaredLoss::ridge(0.01);
        let data = reg_data();
        let mut model = LinearModel::zeros(2);
        let mut prev = loss.value(&model, &data).unwrap();
        let config = GdConfig::default();
        for _ in 0..20 {
            let report = gradient_descent(
                &loss,
                &data,
                model.clone(),
                &GdConfig {
                    max_iters: 1,
                    tolerance: 0.0,
                    ..config
                },
            )
            .unwrap();
            model = report.model;
            assert!(report.objective <= prev + 1e-12);
            prev = report.objective;
        }
    }

    #[test]
    fn strict_wrapper_errors_on_tiny_budget() {
        let loss = LogisticLoss::regularized(0.1);
        let x = Matrix::from_row_major(4, 1, vec![-2.0, -1.0, 1.0, 2.0]).unwrap();
        let y = Vector::from_vec(vec![0.0, 0.0, 1.0, 1.0]);
        let data = Dataset::new(x, y, Task::BinaryClassification).unwrap();
        let err = train_to_convergence(
            &loss,
            &data,
            LinearModel::zeros(1),
            &GdConfig {
                max_iters: 1,
                tolerance: 1e-14,
                ..GdConfig::default()
            },
        );
        assert!(matches!(err, Err(MlError::DidNotConverge { .. })));
    }

    #[test]
    fn converged_at_start_when_gradient_is_zero() {
        // Regularized problem with optimum at 0 when targets are 0.
        let x = Matrix::from_row_major(2, 1, vec![1.0, -1.0]).unwrap();
        let y = Vector::from_vec(vec![0.0, 0.0]);
        let data = Dataset::new(x, y, Task::Regression).unwrap();
        let loss = SquaredLoss::ridge(1.0);
        let report =
            gradient_descent(&loss, &data, LinearModel::zeros(1), &GdConfig::default()).unwrap();
        assert!(report.converged);
        assert_eq!(report.iterations, 0);
    }
}
