//! ML substrate for Nimbus: losses, linear models and trainers.
//!
//! The paper fixes its menu of ML models to those with *strictly convex*
//! training losses over linear hypotheses (Table 2): least-squares linear
//! regression, L2-regularized logistic regression, and the L2 linear SVM.
//! For the buyer-facing error function `ε` it additionally supports the 0/1
//! misclassification rate. This crate implements exactly that menu:
//!
//! * [`LinearModel`] — a hypothesis `h ∈ R^d`; model instances are plain
//!   weight vectors, which is what the Gaussian mechanism perturbs.
//! * [`loss`] — the error functions of Table 2 with values, gradients and
//!   (where used) Hessians, plus the 0/1 loss for evaluation.
//! * [`error_metric`] — the losses repackaged as buyer-facing
//!   [`ErrorMetric`]s: an `ε` bound to its evaluation data, with an
//!   optional closed-form expected error (Lemma 3 for the square loss)
//!   consumed by the error-curve and pricing layers.
//! * [`linreg`] — ordinary least squares / ridge via the normal equations
//!   (one Cholesky solve — the broker's one-time training cost), plus a
//!   gradient-descent path for cross-checking.
//! * [`logreg`] — damped Newton logistic regression with step halving.
//! * [`svm`] — Pegasos stochastic subgradient descent for the L2 SVM.
//! * [`gd`] — a generic batch gradient-descent engine with backtracking.
//! * [`metrics`] — evaluation helpers shared by experiments and tests.
//! * [`streaming`] — one-pass, constant-memory, shard-mergeable least
//!   squares for paper-scale (10M-row) training.
//! * [`model_selection`] — k-fold cross-validation over trainers (the §7
//!   model-selection future-work item, for choosing `μ`).

pub mod error;
pub mod error_metric;
pub mod gd;
pub mod linreg;
pub mod logreg;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod model_selection;
pub mod streaming;
pub mod svm;

pub use error::MlError;
pub use error_metric::{ErrorMetric, LossMetric, SquareDistanceMetric};
pub use linreg::LinearRegressionTrainer;
pub use logreg::LogisticRegressionTrainer;
pub use loss::{HingeLoss, LogisticLoss, Loss, SquaredLoss, ZeroOneLoss};
pub use model::LinearModel;
pub use streaming::{train_least_squares_stream, LeastSquaresAccumulator};
pub use svm::PegasosSvmTrainer;

use nimbus_data::Dataset;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, MlError>;

/// A learning algorithm producing the optimal model instance `h*_λ(D)` for
/// its associated training loss `λ` on a dataset.
pub trait Trainer {
    /// Trains on `data`, returning the fitted model.
    fn train(&self, data: &Dataset) -> Result<LinearModel>;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}
