//! Least-squares linear regression via the normal equations.
//!
//! The broker trains the optimal model instance `h*_λ(D)` once (Section 4:
//! "the broker first trains the optimal model instance, which is a one-time
//! cost"). For the square loss `λ(h, D) = 1/(2n) Σ (hᵀx − y)² + μ‖h‖²` the
//! optimum solves the SPD linear system
//!
//! ```text
//! (XᵀX / n + 2μ I) h = Xᵀy / n
//! ```
//!
//! which we factor with Cholesky: `O(n d²)` to assemble the Gram matrix plus
//! `O(d³)` to solve — the dominant one-time cost that makes subsequent
//! noisy-model sales essentially free.

use crate::loss::SquaredLoss;
use crate::{LinearModel, MlError, Result, Trainer};
use nimbus_data::{Dataset, Task};
use nimbus_linalg::Cholesky;

/// Closed-form trainer for (regularized) least squares.
#[derive(Debug, Clone, Copy)]
pub struct LinearRegressionTrainer {
    /// L2 regularization strength `μ ≥ 0`.
    pub mu: f64,
}

impl LinearRegressionTrainer {
    /// Ordinary least squares (no regularization). Requires full-column-rank
    /// features; otherwise training reports an ill-conditioned system.
    pub fn ols() -> Self {
        LinearRegressionTrainer { mu: 0.0 }
    }

    /// Ridge regression with strength `mu`.
    pub fn ridge(mu: f64) -> Self {
        LinearRegressionTrainer { mu }
    }

    /// The training loss `λ` this trainer minimizes.
    pub fn loss(&self) -> SquaredLoss {
        SquaredLoss { mu: self.mu }
    }
}

impl Trainer for LinearRegressionTrainer {
    fn train(&self, data: &Dataset) -> Result<LinearModel> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if data.task() != Task::Regression {
            return Err(MlError::TaskMismatch {
                expected: "regression",
            });
        }
        if !(self.mu >= 0.0 && self.mu.is_finite()) {
            return Err(MlError::InvalidHyperparameter {
                name: "mu",
                value: self.mu,
            });
        }
        let n = data.len() as f64;
        let mut system = data.features().gram().scaled(1.0 / n);
        system.add_diagonal(2.0 * self.mu)?;
        let mut rhs = data.features().matvec_transposed(data.targets())?;
        rhs.scale(1.0 / n);
        // For μ = 0 on rank-deficient data the Gram matrix is singular;
        // factor_with_jitter nudges it to the minimum-norm-ish solution
        // rather than failing outright.
        let (chol, _jitter) = Cholesky::factor_with_jitter(&system, 24)?;
        let w = chol.solve(&rhs)?;
        Ok(LinearModel::new(w))
    }

    fn name(&self) -> &'static str {
        "linear_regression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gd::{gradient_descent, GdConfig};
    use crate::loss::Loss;
    use nimbus_data::synthetic::{generate_regression, RegressionSpec};
    use nimbus_linalg::{Matrix, Vector};

    fn exact_data() -> Dataset {
        let x =
            Matrix::from_row_major(5, 2, vec![1.0, 1.0, 2.0, 1.0, 3.0, 1.0, 4.0, 1.0, 5.0, 1.0])
                .unwrap();
        let y = Vector::from_vec(vec![1.0, 4.0, 7.0, 10.0, 13.0]);
        Dataset::new(x, y, Task::Regression).unwrap()
    }

    #[test]
    fn ols_recovers_exact_fit() {
        let model = LinearRegressionTrainer::ols().train(&exact_data()).unwrap();
        let w = model.weights();
        assert!((w[0] - 3.0).abs() < 1e-9);
        assert!((w[1] + 2.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_planted_hyperplane() {
        let (data, truth) = generate_regression(&RegressionSpec::simulated1(2_000, 8), 42).unwrap();
        let model = LinearRegressionTrainer::ols().train(&data).unwrap();
        for j in 0..8 {
            assert!(
                (model.weights()[j] - truth[j]).abs() < 1e-6,
                "weight {j}: {} vs {}",
                model.weights()[j],
                truth[j]
            );
        }
    }

    #[test]
    fn ridge_shrinks_weights() {
        let data = exact_data();
        let ols = LinearRegressionTrainer::ols().train(&data).unwrap();
        let ridge = LinearRegressionTrainer::ridge(10.0).train(&data).unwrap();
        assert!(ridge.weights().norm2() < ols.weights().norm2());
    }

    #[test]
    fn closed_form_matches_gradient_descent() {
        let (data, _) = generate_regression(
            &RegressionSpec {
                n: 300,
                d: 4,
                target_noise: 0.5,
                target_scale: 1.0,
                feature_scale: 1.0,
            },
            7,
        )
        .unwrap();
        let trainer = LinearRegressionTrainer::ridge(0.05);
        let closed = trainer.train(&data).unwrap();
        let gd = gradient_descent(
            &trainer.loss(),
            &data,
            LinearModel::zeros(4),
            // 1e-10 on the gradient norm is beyond what backtracking GD
            // reliably reaches in f64 on every data draw; 1e-8 is ample for
            // the 1e-5 weight agreement asserted below.
            &GdConfig {
                max_iters: 50_000,
                tolerance: 1e-8,
                ..GdConfig::default()
            },
        )
        .unwrap();
        assert!(gd.converged);
        for j in 0..4 {
            assert!(
                (closed.weights()[j] - gd.model.weights()[j]).abs() < 1e-5,
                "weight {j}"
            );
        }
    }

    #[test]
    fn trained_model_is_stationary_point() {
        let (data, _) = generate_regression(
            &RegressionSpec {
                n: 200,
                d: 3,
                target_noise: 1.0,
                target_scale: 1.0,
                feature_scale: 1.0,
            },
            9,
        )
        .unwrap();
        let trainer = LinearRegressionTrainer::ridge(0.1);
        let model = trainer.train(&data).unwrap();
        let g = trainer.loss().gradient(&model, &data).unwrap();
        assert!(g.norm_inf() < 1e-8, "gradient at optimum: {}", g.norm_inf());
    }

    #[test]
    fn rejects_bad_inputs() {
        let data = exact_data();
        assert!(LinearRegressionTrainer::ridge(f64::NAN)
            .train(&data)
            .is_err());
        assert!(LinearRegressionTrainer::ridge(-1.0).train(&data).is_err());
        let empty = Dataset::new(Matrix::zeros(0, 2), Vector::zeros(0), Task::Regression).unwrap();
        assert!(matches!(
            LinearRegressionTrainer::ols().train(&empty),
            Err(MlError::EmptyDataset)
        ));
    }

    #[test]
    fn rejects_classification_data() {
        let x = Matrix::zeros(2, 1);
        let y = Vector::from_vec(vec![0.0, 1.0]);
        let d = Dataset::new(x, y, Task::BinaryClassification).unwrap();
        assert!(matches!(
            LinearRegressionTrainer::ols().train(&d),
            Err(MlError::TaskMismatch { .. })
        ));
    }

    #[test]
    fn collinear_features_survive_via_jitter() {
        // Duplicate column: XᵀX is singular; OLS still returns a finite fit.
        let x = Matrix::from_row_major(4, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0]).unwrap();
        let y = Vector::from_vec(vec![2.0, 4.0, 6.0, 8.0]);
        let d = Dataset::new(x, y, Task::Regression).unwrap();
        let model = LinearRegressionTrainer::ols().train(&d).unwrap();
        assert!(model.weights().is_finite());
        // Predictions are still essentially exact.
        let (x0, y0) = d.example(0);
        assert!((model.score(x0) - y0).abs() < 1e-3);
    }
}
