//! Logistic regression via damped Newton iterations.
//!
//! The logistic loss with L2 regularization (Table 2, row 2) is smooth and
//! strictly convex, so Newton's method with step halving converges in a
//! handful of iterations at the paper's dimensionalities (d ≤ 90). Each step
//! solves `(XᵀS X / n + 2μI) Δ = -∇` with `S = diag(σ(1−σ))` via Cholesky.

use crate::loss::{sigmoid, LogisticLoss, Loss};
use crate::{LinearModel, MlError, Result, Trainer};
use nimbus_data::{Dataset, Task};
use nimbus_linalg::{Cholesky, Matrix};

/// Damped-Newton trainer for L2-regularized logistic regression.
#[derive(Debug, Clone, Copy)]
pub struct LogisticRegressionTrainer {
    /// L2 regularization strength `μ ≥ 0`. A small positive value keeps the
    /// Hessian uniformly positive definite and the optimum finite even on
    /// separable data.
    pub mu: f64,
    /// Maximum Newton iterations.
    pub max_iters: usize,
    /// Convergence threshold on the gradient infinity norm.
    pub tolerance: f64,
}

impl LogisticRegressionTrainer {
    /// Default configuration: `μ = 1e-6`, 100 iterations, tolerance `1e-8`.
    pub fn new(mu: f64) -> Self {
        LogisticRegressionTrainer {
            mu,
            max_iters: 100,
            tolerance: 1e-8,
        }
    }

    /// The training loss `λ` this trainer minimizes.
    pub fn loss(&self) -> LogisticLoss {
        LogisticLoss { mu: self.mu }
    }

    fn hessian(&self, model: &LinearModel, data: &Dataset) -> Result<Matrix> {
        let d = model.dim();
        let n = data.len() as f64;
        let mut h = Matrix::zeros(d, d);
        for i in 0..data.len() {
            let (x, _) = data.example(i);
            let p = sigmoid(model.score(x));
            let s = p * (1.0 - p);
            if s == 0.0 {
                continue;
            }
            // Rank-one update s · x xᵀ restricted to the upper triangle.
            for a in 0..d {
                let xa = s * x[a];
                if xa == 0.0 {
                    continue;
                }
                let row = h.row_mut(a);
                for b in a..d {
                    row[b] += xa * x[b];
                }
            }
        }
        for a in 0..d {
            for b in 0..a {
                let v = h.get(b, a);
                h.set(a, b, v);
            }
        }
        let mut h = h.scaled(1.0 / n);
        h.add_diagonal(2.0 * self.mu)?;
        Ok(h)
    }
}

impl Trainer for LogisticRegressionTrainer {
    fn train(&self, data: &Dataset) -> Result<LinearModel> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if data.task() != Task::BinaryClassification {
            return Err(MlError::TaskMismatch {
                expected: "classification",
            });
        }
        if !(self.mu >= 0.0 && self.mu.is_finite()) {
            return Err(MlError::InvalidHyperparameter {
                name: "mu",
                value: self.mu,
            });
        }
        let loss = self.loss();
        let mut model = LinearModel::zeros(data.num_features());
        let mut objective = loss.value(&model, data)?;

        for iter in 0..self.max_iters {
            let grad = loss.gradient(&model, data)?;
            if grad.norm_inf() <= self.tolerance {
                return Ok(model);
            }
            let hess = self.hessian(&model, data)?;
            let (chol, _) = Cholesky::factor_with_jitter(&hess, 24)?;
            let direction = chol.solve(&grad)?;

            // Damped step: halve until the objective decreases.
            let mut step = 1.0;
            let mut accepted = false;
            while step > 1e-12 {
                let mut candidate = model.clone();
                candidate.weights_mut().axpy(-step, &direction)?;
                let cand_obj = loss.value(&candidate, data)?;
                if cand_obj < objective {
                    model = candidate;
                    objective = cand_obj;
                    accepted = true;
                    break;
                }
                step *= 0.5;
            }
            if !accepted {
                // No descent possible: we are at numerical optimum.
                let residual = loss.gradient(&model, data)?.norm_inf();
                if residual <= self.tolerance * 1e3 {
                    return Ok(model);
                }
                return Err(MlError::DidNotConverge {
                    iterations: iter,
                    residual,
                });
            }
        }
        let residual = loss.gradient(&model, data)?.norm_inf();
        if residual <= self.tolerance * 1e3 {
            Ok(model)
        } else {
            Err(MlError::DidNotConverge {
                iterations: self.max_iters,
                residual,
            })
        }
    }

    fn name(&self) -> &'static str {
        "logistic_regression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gd::{gradient_descent, GdConfig};
    use crate::loss::ZeroOneLoss;
    use nimbus_data::synthetic::{generate_classification, ClassificationSpec};
    use nimbus_linalg::{Matrix, Vector};

    fn toy() -> Dataset {
        let x = Matrix::from_row_major(6, 1, vec![-3.0, -2.0, -1.0, 1.0, 2.0, 3.0]).unwrap();
        let y = Vector::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        Dataset::new(x, y, Task::BinaryClassification).unwrap()
    }

    #[test]
    fn separates_toy_data() {
        let model = LogisticRegressionTrainer::new(0.01).train(&toy()).unwrap();
        assert!(model.weights()[0] > 0.0);
        let err = ZeroOneLoss.value(&model, &toy()).unwrap();
        assert_eq!(err, 0.0);
    }

    #[test]
    fn gradient_at_optimum_is_small() {
        let trainer = LogisticRegressionTrainer::new(0.05);
        let (data, _) =
            generate_classification(&ClassificationSpec::simulated2(500, 4), 3).unwrap();
        let model = trainer.train(&data).unwrap();
        let g = trainer.loss().gradient(&model, &data).unwrap();
        assert!(g.norm_inf() < 1e-6, "gradient norm {}", g.norm_inf());
    }

    #[test]
    fn newton_matches_gradient_descent() {
        let trainer = LogisticRegressionTrainer::new(0.1);
        let (data, _) =
            generate_classification(&ClassificationSpec::simulated2(300, 3), 11).unwrap();
        let newton = trainer.train(&data).unwrap();
        let gd = gradient_descent(
            &trainer.loss(),
            &data,
            LinearModel::zeros(3),
            &GdConfig {
                max_iters: 20_000,
                tolerance: 1e-7,
                ..GdConfig::default()
            },
        )
        .unwrap();
        // The strictly convex objective has a unique optimum: both solvers
        // must land on (essentially) the same objective value, and the
        // first-order solutions must be close.
        let loss = trainer.loss();
        let newton_obj = loss.value(&newton, &data).unwrap();
        let gd_obj = loss.value(&gd.model, &data).unwrap();
        assert!(
            (newton_obj - gd_obj).abs() < 1e-6,
            "objectives diverge: newton {newton_obj} vs gd {gd_obj}"
        );
        for j in 0..3 {
            assert!(
                (newton.weights()[j] - gd.model.weights()[j]).abs() < 1e-2,
                "weight {j}: newton {} vs gd {}",
                newton.weights()[j],
                gd.model.weights()[j]
            );
        }
    }

    #[test]
    fn accuracy_beats_chance_on_simulated2() {
        let (data, _) =
            generate_classification(&ClassificationSpec::simulated2(4_000, 8), 21).unwrap();
        let model = LogisticRegressionTrainer::new(1e-4).train(&data).unwrap();
        let err = ZeroOneLoss.value(&model, &data).unwrap();
        // Bayes error is 5%; a good fit should be close to it.
        assert!(err < 0.10, "0/1 error {err}");
    }

    #[test]
    fn recovered_direction_aligns_with_planted_hyperplane() {
        let (data, truth) =
            generate_classification(&ClassificationSpec::simulated2(5_000, 5), 31).unwrap();
        let model = LogisticRegressionTrainer::new(1e-4).train(&data).unwrap();
        let cos = model.weights().dot(&truth).unwrap() / (model.weights().norm2() * truth.norm2());
        assert!(cos > 0.95, "cosine similarity {cos}");
    }

    #[test]
    fn separable_data_with_regularization_stays_finite() {
        // Perfectly separable: unregularized optimum is at infinity, but
        // μ > 0 keeps it finite.
        let model = LogisticRegressionTrainer::new(0.1).train(&toy()).unwrap();
        assert!(model.weights().is_finite());
        assert!(model.weights().norm2() < 100.0);
    }

    #[test]
    fn rejects_regression_data_and_bad_mu() {
        let x = Matrix::zeros(2, 1);
        let y = Vector::from_vec(vec![0.5, 1.5]);
        let d = Dataset::new(x, y, Task::Regression).unwrap();
        assert!(matches!(
            LogisticRegressionTrainer::new(0.1).train(&d),
            Err(MlError::TaskMismatch { .. })
        ));
        assert!(LogisticRegressionTrainer::new(-0.5).train(&toy()).is_err());
    }
}
