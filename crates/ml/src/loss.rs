//! The error functions of Table 2.
//!
//! Each loss measures the goodness of a hypothesis `h` on a dataset and may
//! serve as the training loss `λ` (on `D_train`) and/or the buyer-facing
//! error `ε` (on `D_test` or `D_train`). All aggregate values are averaged
//! over the number of examples, as the paper's Table 2 footnote specifies.
//!
//! Strict convexity matters for the pricing theory: Theorem 4 guarantees
//! monotonicity of the expected error in the noise control parameter for
//! convex `ε` (strictly, for strictly convex), and Theorem 6 needs a strictly
//! convex `ε` to define the error-inverse `φ`. Each loss reports its
//! convexity class via [`Loss::convexity`].

use crate::{LinearModel, MlError, Result};
use nimbus_data::{Dataset, Task};
use nimbus_linalg::Vector;

/// Convexity class of a loss as a function of the model instance `h`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Convexity {
    /// Strictly convex in `h` (unique minimizer; Theorem 6 applies).
    Strict,
    /// Convex but not strictly (Theorem 4's non-strict variant applies).
    Convex,
    /// Not convex (e.g. 0/1 loss); only empirical error curves apply.
    NonConvex,
}

/// An error function `λ` or `ε` over linear hypotheses.
pub trait Loss {
    /// Short stable identifier for reports (e.g. `"square"`).
    fn name(&self) -> &'static str;

    /// Average loss of `model` on `data` (plus any regularization term).
    fn value(&self, model: &LinearModel, data: &Dataset) -> Result<f64>;

    /// Gradient with respect to the model weights. Losses that are not
    /// differentiable everywhere return a subgradient; the 0/1 loss errors.
    fn gradient(&self, model: &LinearModel, data: &Dataset) -> Result<Vector>;

    /// Convexity class of this loss in `h`.
    fn convexity(&self) -> Convexity;

    /// Whether this loss can train (serve as `λ`): requires a usable
    /// (sub)gradient.
    fn trainable(&self) -> bool {
        true
    }
}

fn check_dims(model: &LinearModel, data: &Dataset) -> Result<()> {
    if model.dim() != data.num_features() {
        return Err(MlError::DimensionMismatch {
            model: model.dim(),
            data: data.num_features(),
        });
    }
    if data.is_empty() {
        return Err(MlError::EmptyDataset);
    }
    Ok(())
}

/// Converts a 0/1 label to the ±1 convention used by margin losses.
fn signed(y: f64) -> f64 {
    if y == 1.0 {
        1.0
    } else {
        -1.0
    }
}

/// Least-squares loss `1/(2n) Σ (hᵀx − y)² + μ‖h‖²` (Table 2, row 1).
///
/// Strictly convex whenever `μ > 0` or the design matrix has full column
/// rank; we report strict convexity for `μ > 0` and plain convexity at
/// `μ = 0` to stay on the conservative side.
#[derive(Debug, Clone, Copy)]
pub struct SquaredLoss {
    /// L2 regularization strength `μ ≥ 0`.
    pub mu: f64,
}

impl SquaredLoss {
    /// Unregularized least squares.
    pub fn plain() -> Self {
        SquaredLoss { mu: 0.0 }
    }

    /// Ridge regression with strength `mu`.
    pub fn ridge(mu: f64) -> Self {
        SquaredLoss { mu }
    }
}

impl Loss for SquaredLoss {
    fn name(&self) -> &'static str {
        "square"
    }

    fn value(&self, model: &LinearModel, data: &Dataset) -> Result<f64> {
        check_dims(model, data)?;
        let n = data.len() as f64;
        let mut sse = 0.0;
        for i in 0..data.len() {
            let (x, y) = data.example(i);
            let r = model.score(x) - y;
            sse += r * r;
        }
        Ok(sse / (2.0 * n) + self.mu * model.weights().norm2_squared())
    }

    fn gradient(&self, model: &LinearModel, data: &Dataset) -> Result<Vector> {
        check_dims(model, data)?;
        let n = data.len() as f64;
        let mut g = vec![0.0; model.dim()];
        for i in 0..data.len() {
            let (x, y) = data.example(i);
            let r = model.score(x) - y;
            for (gj, xj) in g.iter_mut().zip(x) {
                *gj += r * xj;
            }
        }
        let mut g = Vector::from_vec(g);
        g.scale(1.0 / n);
        g.axpy(2.0 * self.mu, model.weights())?;
        Ok(g)
    }

    fn convexity(&self) -> Convexity {
        if self.mu > 0.0 {
            Convexity::Strict
        } else {
            Convexity::Convex
        }
    }
}

/// Logistic loss `1/n Σ log(1 + e^{−ỹ hᵀx}) + μ‖h‖²` with `ỹ ∈ {−1, +1}`
/// (Table 2, row 2).
#[derive(Debug, Clone, Copy)]
pub struct LogisticLoss {
    /// L2 regularization strength `μ ≥ 0`.
    pub mu: f64,
}

impl LogisticLoss {
    /// Unregularized logistic loss.
    pub fn plain() -> Self {
        LogisticLoss { mu: 0.0 }
    }

    /// Regularized logistic loss.
    pub fn regularized(mu: f64) -> Self {
        LogisticLoss { mu }
    }
}

/// Numerically stable `log(1 + e^{-z})`.
pub fn log1p_exp_neg(z: f64) -> f64 {
    if z > 0.0 {
        (-z).exp().ln_1p()
    } else {
        -z + z.exp().ln_1p()
    }
}

/// Numerically stable logistic sigmoid `1 / (1 + e^{-z})`.
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl Loss for LogisticLoss {
    fn name(&self) -> &'static str {
        "logistic"
    }

    fn value(&self, model: &LinearModel, data: &Dataset) -> Result<f64> {
        check_dims(model, data)?;
        if data.task() != Task::BinaryClassification {
            return Err(MlError::TaskMismatch {
                expected: "classification",
            });
        }
        let n = data.len() as f64;
        let mut total = 0.0;
        for i in 0..data.len() {
            let (x, y) = data.example(i);
            total += log1p_exp_neg(signed(y) * model.score(x));
        }
        Ok(total / n + self.mu * model.weights().norm2_squared())
    }

    fn gradient(&self, model: &LinearModel, data: &Dataset) -> Result<Vector> {
        check_dims(model, data)?;
        if data.task() != Task::BinaryClassification {
            return Err(MlError::TaskMismatch {
                expected: "classification",
            });
        }
        let n = data.len() as f64;
        let mut g = vec![0.0; model.dim()];
        for i in 0..data.len() {
            let (x, y) = data.example(i);
            let yy = signed(y);
            // d/dw log(1+e^{-y wᵀx}) = -y x σ(-y wᵀx)
            let coeff = -yy * sigmoid(-yy * model.score(x));
            for (gj, xj) in g.iter_mut().zip(x) {
                *gj += coeff * xj;
            }
        }
        let mut g = Vector::from_vec(g);
        g.scale(1.0 / n);
        g.axpy(2.0 * self.mu, model.weights())?;
        Ok(g)
    }

    fn convexity(&self) -> Convexity {
        if self.mu > 0.0 {
            Convexity::Strict
        } else {
            Convexity::Convex
        }
    }
}

/// Hinge loss `1/n Σ max(0, 1 − ỹ hᵀx) + μ‖h‖²` with `μ > 0` (Table 2,
/// row 3 — the L2 linear SVM objective; the regularizer is what makes it
/// strictly convex).
#[derive(Debug, Clone, Copy)]
pub struct HingeLoss {
    /// L2 regularization strength `μ > 0` for the SVM objective.
    pub mu: f64,
}

impl HingeLoss {
    /// Creates the SVM hinge objective; errors when `mu` is not positive,
    /// since the unregularized hinge is not strictly convex and Pegasos
    /// requires `μ > 0`.
    pub fn new(mu: f64) -> Result<Self> {
        if !(mu > 0.0 && mu.is_finite()) {
            return Err(MlError::InvalidHyperparameter {
                name: "mu",
                value: mu,
            });
        }
        Ok(HingeLoss { mu })
    }
}

impl Loss for HingeLoss {
    fn name(&self) -> &'static str {
        "hinge"
    }

    fn value(&self, model: &LinearModel, data: &Dataset) -> Result<f64> {
        check_dims(model, data)?;
        if data.task() != Task::BinaryClassification {
            return Err(MlError::TaskMismatch {
                expected: "classification",
            });
        }
        let n = data.len() as f64;
        let mut total = 0.0;
        for i in 0..data.len() {
            let (x, y) = data.example(i);
            total += (1.0 - signed(y) * model.score(x)).max(0.0);
        }
        Ok(total / n + self.mu * model.weights().norm2_squared())
    }

    fn gradient(&self, model: &LinearModel, data: &Dataset) -> Result<Vector> {
        check_dims(model, data)?;
        if data.task() != Task::BinaryClassification {
            return Err(MlError::TaskMismatch {
                expected: "classification",
            });
        }
        // Subgradient: -y x on the active set {1 - y wᵀx > 0}.
        let n = data.len() as f64;
        let mut g = vec![0.0; model.dim()];
        for i in 0..data.len() {
            let (x, y) = data.example(i);
            let yy = signed(y);
            if 1.0 - yy * model.score(x) > 0.0 {
                for (gj, xj) in g.iter_mut().zip(x) {
                    *gj -= yy * xj;
                }
            }
        }
        let mut g = Vector::from_vec(g);
        g.scale(1.0 / n);
        g.axpy(2.0 * self.mu, model.weights())?;
        Ok(g)
    }

    fn convexity(&self) -> Convexity {
        // μ > 0 is enforced at construction.
        Convexity::Strict
    }
}

/// 0/1 misclassification rate (Table 2 — evaluation-only error for
/// classification models; the paper's `Σ 1_{y = (wᵀx > 0)}` counts matches,
/// so the *error* is one minus that average).
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroOneLoss;

impl Loss for ZeroOneLoss {
    fn name(&self) -> &'static str {
        "zero_one"
    }

    fn value(&self, model: &LinearModel, data: &Dataset) -> Result<f64> {
        check_dims(model, data)?;
        if data.task() != Task::BinaryClassification {
            return Err(MlError::TaskMismatch {
                expected: "classification",
            });
        }
        let mut wrong = 0usize;
        for i in 0..data.len() {
            let (x, y) = data.example(i);
            if model.classify(x) != y {
                wrong += 1;
            }
        }
        Ok(wrong as f64 / data.len() as f64)
    }

    fn gradient(&self, _model: &LinearModel, _data: &Dataset) -> Result<Vector> {
        Err(MlError::NotDifferentiable { loss: "zero_one" })
    }

    fn convexity(&self) -> Convexity {
        Convexity::NonConvex
    }

    fn trainable(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_linalg::Matrix;

    fn reg_data() -> Dataset {
        // y = 2x exactly.
        let x = Matrix::from_row_major(4, 1, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = Vector::from_vec(vec![2.0, 4.0, 6.0, 8.0]);
        Dataset::new(x, y, Task::Regression).unwrap()
    }

    fn cls_data() -> Dataset {
        let x = Matrix::from_row_major(4, 1, vec![-2.0, -1.0, 1.0, 2.0]).unwrap();
        let y = Vector::from_vec(vec![0.0, 0.0, 1.0, 1.0]);
        Dataset::new(x, y, Task::BinaryClassification).unwrap()
    }

    #[test]
    fn squared_loss_zero_at_truth() {
        let loss = SquaredLoss::plain();
        let truth = LinearModel::new(Vector::from_vec(vec![2.0]));
        assert_eq!(loss.value(&truth, &reg_data()).unwrap(), 0.0);
        let g = loss.gradient(&truth, &reg_data()).unwrap();
        assert!(g.norm_inf() < 1e-12);
    }

    #[test]
    fn squared_loss_value_manual() {
        let loss = SquaredLoss::plain();
        let m = LinearModel::new(Vector::from_vec(vec![0.0]));
        // residuals are targets: (4+16+36+64)/(2*4) = 15.
        assert_eq!(loss.value(&m, &reg_data()).unwrap(), 15.0);
    }

    #[test]
    fn ridge_term_adds_mu_norm() {
        let plain = SquaredLoss::plain();
        let ridge = SquaredLoss::ridge(0.5);
        let m = LinearModel::new(Vector::from_vec(vec![3.0]));
        let diff = ridge.value(&m, &reg_data()).unwrap() - plain.value(&m, &reg_data()).unwrap();
        assert!((diff - 0.5 * 9.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_difference_squared() {
        let loss = SquaredLoss::ridge(0.1);
        let m = LinearModel::new(Vector::from_vec(vec![0.7]));
        let g = loss.gradient(&m, &reg_data()).unwrap();
        let eps = 1e-6;
        let up = LinearModel::new(Vector::from_vec(vec![0.7 + eps]));
        let dn = LinearModel::new(Vector::from_vec(vec![0.7 - eps]));
        let fd = (loss.value(&up, &reg_data()).unwrap() - loss.value(&dn, &reg_data()).unwrap())
            / (2.0 * eps);
        assert!((g[0] - fd).abs() < 1e-5, "grad {} vs fd {}", g[0], fd);
    }

    #[test]
    fn gradient_matches_finite_difference_logistic() {
        let loss = LogisticLoss::regularized(0.05);
        let m = LinearModel::new(Vector::from_vec(vec![0.3]));
        let d = cls_data();
        let g = loss.gradient(&m, &d).unwrap();
        let eps = 1e-6;
        let up = LinearModel::new(Vector::from_vec(vec![0.3 + eps]));
        let dn = LinearModel::new(Vector::from_vec(vec![0.3 - eps]));
        let fd = (loss.value(&up, &d).unwrap() - loss.value(&dn, &d).unwrap()) / (2.0 * eps);
        assert!((g[0] - fd).abs() < 1e-5);
    }

    #[test]
    fn logistic_loss_decreases_with_correct_confidence() {
        let loss = LogisticLoss::plain();
        let d = cls_data();
        let weak = LinearModel::new(Vector::from_vec(vec![0.1]));
        let strong = LinearModel::new(Vector::from_vec(vec![2.0]));
        assert!(loss.value(&strong, &d).unwrap() < loss.value(&weak, &d).unwrap());
    }

    #[test]
    fn hinge_loss_zero_beyond_margin() {
        let loss = HingeLoss::new(1e-9).unwrap();
        let d = cls_data();
        // Weight 1.0 gives margins y*wx = 2,1,1,2 >= 1: hinge part is 0.
        let m = LinearModel::new(Vector::from_vec(vec![1.0]));
        assert!(loss.value(&m, &d).unwrap() < 1e-8);
    }

    #[test]
    fn hinge_rejects_zero_mu() {
        assert!(HingeLoss::new(0.0).is_err());
        assert!(HingeLoss::new(-1.0).is_err());
        assert!(HingeLoss::new(f64::NAN).is_err());
    }

    #[test]
    fn hinge_subgradient_matches_fd_off_kink() {
        let loss = HingeLoss::new(0.1).unwrap();
        let d = cls_data();
        // At w = 0.3 no example sits exactly on the hinge kink.
        let m = LinearModel::new(Vector::from_vec(vec![0.3]));
        let g = loss.gradient(&m, &d).unwrap();
        let eps = 1e-7;
        let up = LinearModel::new(Vector::from_vec(vec![0.3 + eps]));
        let dn = LinearModel::new(Vector::from_vec(vec![0.3 - eps]));
        let fd = (loss.value(&up, &d).unwrap() - loss.value(&dn, &d).unwrap()) / (2.0 * eps);
        assert!((g[0] - fd).abs() < 1e-5);
    }

    #[test]
    fn zero_one_counts_mistakes() {
        let loss = ZeroOneLoss;
        let d = cls_data();
        let good = LinearModel::new(Vector::from_vec(vec![1.0]));
        assert_eq!(loss.value(&good, &d).unwrap(), 0.0);
        let bad = LinearModel::new(Vector::from_vec(vec![-1.0]));
        assert_eq!(loss.value(&bad, &d).unwrap(), 1.0);
        assert!(!loss.trainable());
        assert!(matches!(
            loss.gradient(&good, &d),
            Err(MlError::NotDifferentiable { .. })
        ));
    }

    #[test]
    fn classification_losses_reject_regression_data() {
        let d = reg_data();
        let m = LinearModel::zeros(1);
        assert!(LogisticLoss::plain().value(&m, &d).is_err());
        assert!(HingeLoss::new(0.1).unwrap().value(&m, &d).is_err());
        assert!(ZeroOneLoss.value(&m, &d).is_err());
    }

    #[test]
    fn convexity_classes() {
        assert_eq!(SquaredLoss::plain().convexity(), Convexity::Convex);
        assert_eq!(SquaredLoss::ridge(0.1).convexity(), Convexity::Strict);
        assert_eq!(LogisticLoss::plain().convexity(), Convexity::Convex);
        assert_eq!(
            LogisticLoss::regularized(0.1).convexity(),
            Convexity::Strict
        );
        assert_eq!(HingeLoss::new(0.1).unwrap().convexity(), Convexity::Strict);
        assert_eq!(ZeroOneLoss.convexity(), Convexity::NonConvex);
    }

    #[test]
    fn sigmoid_and_log1p_are_stable_at_extremes() {
        assert!(sigmoid(800.0) > 0.999);
        assert!(sigmoid(-800.0) < 1e-300);
        assert!(sigmoid(-800.0) >= 0.0);
        assert!(log1p_exp_neg(800.0).is_finite());
        assert!(log1p_exp_neg(-800.0).is_finite());
        assert!((log1p_exp_neg(0.0) - 2.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn dimension_and_empty_checks() {
        let loss = SquaredLoss::plain();
        let m = LinearModel::zeros(2);
        assert!(matches!(
            loss.value(&m, &reg_data()),
            Err(MlError::DimensionMismatch { .. })
        ));
        let empty = Dataset::new(Matrix::zeros(0, 1), Vector::zeros(0), Task::Regression).unwrap();
        let m1 = LinearModel::zeros(1);
        assert!(matches!(
            loss.value(&m1, &empty),
            Err(MlError::EmptyDataset)
        ));
    }
}
