//! Evaluation metrics shared by experiments and tests.
//!
//! These are thin, allocation-free wrappers over the [`crate::loss`] module
//! plus a few conveniences (accuracy, RMSE, R²) that the figures report.

use crate::loss::{LogisticLoss, Loss, SquaredLoss, ZeroOneLoss};
use crate::{LinearModel, Result};
use nimbus_data::Dataset;

/// Mean squared error `1/n Σ (hᵀx − y)²` (note: *not* halved — this is the
/// reporting convention; the training loss halves it for gradient hygiene).
pub fn mse(model: &LinearModel, data: &Dataset) -> Result<f64> {
    Ok(2.0 * SquaredLoss::plain().value(model, data)?)
}

/// Root mean squared error.
pub fn rmse(model: &LinearModel, data: &Dataset) -> Result<f64> {
    Ok(mse(model, data)?.sqrt())
}

/// Coefficient of determination `R² = 1 − SSE/SST`. Returns 0.0 when the
/// target variance is zero (constant targets).
pub fn r_squared(model: &LinearModel, data: &Dataset) -> Result<f64> {
    let m = mse(model, data)?;
    let mean = data.targets().mean().unwrap_or(0.0);
    let sst: f64 = data
        .targets()
        .as_slice()
        .iter()
        .map(|y| (y - mean) * (y - mean))
        .sum::<f64>()
        / data.len() as f64;
    if sst == 0.0 {
        Ok(0.0)
    } else {
        Ok(1.0 - m / sst)
    }
}

/// Average logistic loss (no regularization term).
pub fn log_loss(model: &LinearModel, data: &Dataset) -> Result<f64> {
    LogisticLoss::plain().value(model, data)
}

/// 0/1 misclassification rate.
pub fn zero_one_error(model: &LinearModel, data: &Dataset) -> Result<f64> {
    ZeroOneLoss.value(model, data)
}

/// Classification accuracy `1 − zero_one_error`.
pub fn accuracy(model: &LinearModel, data: &Dataset) -> Result<f64> {
    Ok(1.0 - zero_one_error(model, data)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_data::Task;
    use nimbus_linalg::{Matrix, Vector};

    fn reg_data() -> Dataset {
        let x = Matrix::from_row_major(3, 1, vec![1.0, 2.0, 3.0]).unwrap();
        let y = Vector::from_vec(vec![2.0, 4.0, 6.0]);
        Dataset::new(x, y, Task::Regression).unwrap()
    }

    fn cls_data() -> Dataset {
        let x = Matrix::from_row_major(4, 1, vec![-1.0, -2.0, 1.0, 2.0]).unwrap();
        let y = Vector::from_vec(vec![0.0, 0.0, 1.0, 1.0]);
        Dataset::new(x, y, Task::BinaryClassification).unwrap()
    }

    #[test]
    fn mse_zero_for_perfect_model() {
        let m = LinearModel::new(Vector::from_vec(vec![2.0]));
        assert_eq!(mse(&m, &reg_data()).unwrap(), 0.0);
        assert_eq!(rmse(&m, &reg_data()).unwrap(), 0.0);
        assert_eq!(r_squared(&m, &reg_data()).unwrap(), 1.0);
    }

    #[test]
    fn mse_manual_value() {
        let m = LinearModel::new(Vector::from_vec(vec![0.0]));
        // (4 + 16 + 36) / 3 = 56/3
        assert!((mse(&m, &reg_data()).unwrap() - 56.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn r_squared_zero_for_mean_predictor_quality() {
        // A model predicting ~0 has R² = 1 - MSE/Var(y); check sign logic.
        let m = LinearModel::new(Vector::from_vec(vec![0.0]));
        let r2 = r_squared(&m, &reg_data()).unwrap();
        assert!(
            r2 < 0.0,
            "zero model on centered-away targets has negative R²"
        );
    }

    #[test]
    fn constant_targets_give_zero_r2() {
        let x = Matrix::from_row_major(2, 1, vec![1.0, 2.0]).unwrap();
        let y = Vector::from_vec(vec![5.0, 5.0]);
        let d = Dataset::new(x, y, Task::Regression).unwrap();
        let m = LinearModel::new(Vector::from_vec(vec![0.0]));
        assert_eq!(r_squared(&m, &d).unwrap(), 0.0);
    }

    #[test]
    fn accuracy_complements_error() {
        let m = LinearModel::new(Vector::from_vec(vec![1.0]));
        let acc = accuracy(&m, &cls_data()).unwrap();
        let err = zero_one_error(&m, &cls_data()).unwrap();
        assert_eq!(acc + err, 1.0);
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn log_loss_at_zero_weights_is_ln2() {
        let m = LinearModel::zeros(1);
        assert!((log_loss(&m, &cls_data()).unwrap() - 2.0f64.ln()).abs() < 1e-12);
    }
}
