//! Linear model instances.

use crate::{MlError, Result};
use nimbus_data::Dataset;
use nimbus_linalg::Vector;

/// A linear hypothesis `h ∈ R^d`: scores are inner products `hᵀx`.
///
/// This is the paper's "ML model instance" for its entire model menu — an
/// instance of least-squares regression, logistic regression or a linear SVM
/// is a weight vector, and the noise mechanisms of `nimbus-core` operate on
/// these coordinates directly (Figure 4 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    weights: Vector,
}

impl LinearModel {
    /// Wraps a weight vector as a model instance.
    pub fn new(weights: Vector) -> Self {
        LinearModel { weights }
    }

    /// The zero model of dimension `d` — the conventional starting point for
    /// iterative trainers.
    pub fn zeros(d: usize) -> Self {
        LinearModel {
            weights: Vector::zeros(d),
        }
    }

    /// Model dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// Immutable access to the weights.
    pub fn weights(&self) -> &Vector {
        &self.weights
    }

    /// Mutable access to the weights (used by trainers and mechanisms).
    pub fn weights_mut(&mut self) -> &mut Vector {
        &mut self.weights
    }

    /// Consumes the model, returning the weights.
    pub fn into_weights(self) -> Vector {
        self.weights
    }

    /// Raw score `hᵀx` for a feature row.
    pub fn score(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.dim());
        nimbus_linalg::vector::dot_slices(self.weights.as_slice(), x)
    }

    /// Scores every example in `data`. Errors on dimension mismatch.
    pub fn score_dataset(&self, data: &Dataset) -> Result<Vector> {
        if data.num_features() != self.dim() {
            return Err(MlError::DimensionMismatch {
                model: self.dim(),
                data: data.num_features(),
            });
        }
        let mut out = Vec::with_capacity(data.len());
        for i in 0..data.len() {
            out.push(self.score(data.features().row(i)));
        }
        Ok(Vector::from_vec(out))
    }

    /// Classifies a feature row as 0/1 by thresholding the score at zero
    /// (the paper's `1_{wᵀx > 0}` convention).
    pub fn classify(&self, x: &[f64]) -> f64 {
        if self.score(x) > 0.0 {
            1.0
        } else {
            0.0
        }
    }

    /// Squared Euclidean distance between two model instances — the square
    /// loss `ε_s(h, D) = ‖h − h*‖²` of Section 4.1 when `other` is `h*`.
    pub fn distance_squared(&self, other: &LinearModel) -> Result<f64> {
        self.weights
            .distance_squared(&other.weights)
            .map_err(MlError::from)
    }

    /// Returns a copy with `noise` added coordinate-wise — the additive
    /// perturbation primitive used by every mechanism in `nimbus-core`.
    pub fn perturbed(&self, noise: &Vector) -> Result<LinearModel> {
        Ok(LinearModel {
            weights: self.weights.add(noise)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_data::Task;
    use nimbus_linalg::Matrix;

    fn data() -> Dataset {
        let x = Matrix::from_row_major(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        let y = Vector::from_vec(vec![1.0, 0.0, 1.0]);
        Dataset::new(x, y, Task::BinaryClassification).unwrap()
    }

    #[test]
    fn scores_are_inner_products() {
        let m = LinearModel::new(Vector::from_vec(vec![2.0, -1.0]));
        assert_eq!(m.score(&[3.0, 4.0]), 2.0);
        let s = m.score_dataset(&data()).unwrap();
        assert_eq!(s.as_slice(), &[2.0, -1.0, 1.0]);
    }

    #[test]
    fn classify_thresholds_at_zero() {
        let m = LinearModel::new(Vector::from_vec(vec![1.0]));
        assert_eq!(m.classify(&[0.5]), 1.0);
        assert_eq!(m.classify(&[-0.5]), 0.0);
        assert_eq!(m.classify(&[0.0]), 0.0, "ties go to the negative class");
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let m = LinearModel::zeros(3);
        assert!(matches!(
            m.score_dataset(&data()),
            Err(MlError::DimensionMismatch { model: 3, data: 2 })
        ));
    }

    #[test]
    fn distance_squared_matches_square_loss() {
        let a = LinearModel::new(Vector::from_vec(vec![1.0, 2.0]));
        let b = LinearModel::new(Vector::from_vec(vec![4.0, -2.0]));
        assert_eq!(a.distance_squared(&b).unwrap(), 9.0 + 16.0);
    }

    #[test]
    fn perturbed_adds_noise() {
        let m = LinearModel::new(Vector::from_vec(vec![1.0, 1.0]));
        let n = Vector::from_vec(vec![0.5, -0.25]);
        let p = m.perturbed(&n).unwrap();
        assert_eq!(p.weights().as_slice(), &[1.5, 0.75]);
        // Original untouched.
        assert_eq!(m.weights().as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn zeros_model() {
        let m = LinearModel::zeros(4);
        assert_eq!(m.dim(), 4);
        assert_eq!(m.score(&[1.0, 2.0, 3.0, 4.0]), 0.0);
    }
}
