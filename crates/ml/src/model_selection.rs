//! K-fold cross-validation for hyperparameter selection.
//!
//! The paper's future work (§7) notes that "users often perform model
//! selection and explore different ML models … and refine their choices
//! iteratively". In Nimbus the broker faces a concrete instance of this:
//! choosing the regularization strength `μ` before committing to the
//! one-time training of `h*`. This module provides standard k-fold CV over
//! any [`Trainer`] factory plus a convenience ridge-path search.

use crate::{LinearModel, MlError, Result, Trainer};
use nimbus_data::Dataset;
use nimbus_randkit::uniform::shuffle_indices;
use nimbus_randkit::NimbusRng;

/// Result of a cross-validated hyperparameter search.
#[derive(Debug, Clone)]
pub struct CvReport<P> {
    /// The winning hyperparameter.
    pub best_param: P,
    /// Mean validation loss of the winner.
    pub best_score: f64,
    /// `(param, mean validation loss)` for every candidate, in input order.
    pub scores: Vec<(P, f64)>,
    /// The final model trained on ALL data with the winning parameter.
    pub model: LinearModel,
}

/// Builds the k disjoint validation folds as index sets.
fn make_folds(n: usize, k: usize, rng: &mut NimbusRng) -> Vec<Vec<usize>> {
    let mut indices: Vec<usize> = (0..n).collect();
    shuffle_indices(rng, &mut indices);
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, idx) in indices.into_iter().enumerate() {
        folds[i % k].push(idx);
    }
    folds
}

/// Generic k-fold cross-validation.
///
/// * `make_trainer` — builds a trainer from a candidate hyperparameter.
/// * `evaluate` — validation loss of a fitted model on held-out data
///   (lower is better), e.g. `metrics::mse` or `metrics::zero_one_error`.
///
/// Requires `k ≥ 2` and at least `k` examples.
pub fn k_fold_cv<P, T, FT, FE>(
    data: &Dataset,
    params: &[P],
    k: usize,
    make_trainer: FT,
    evaluate: FE,
    rng: &mut NimbusRng,
) -> Result<CvReport<P>>
where
    P: Clone,
    T: Trainer,
    FT: Fn(&P) -> T,
    FE: Fn(&LinearModel, &Dataset) -> Result<f64>,
{
    if params.is_empty() {
        return Err(MlError::InvalidHyperparameter {
            name: "params",
            value: 0.0,
        });
    }
    if k < 2 || data.len() < k {
        return Err(MlError::InvalidHyperparameter {
            name: "k",
            value: k as f64,
        });
    }
    let folds = make_folds(data.len(), k, rng);

    let mut scores = Vec::with_capacity(params.len());
    let mut best: Option<(usize, f64)> = None;
    for (pi, param) in params.iter().enumerate() {
        let trainer = make_trainer(param);
        let mut total = 0.0;
        for fold in &folds {
            let train_idx: Vec<usize> = (0..data.len()).filter(|i| !fold.contains(i)).collect();
            let train = data.select(&train_idx);
            let valid = data.select(fold);
            let model = trainer.train(&train)?;
            total += evaluate(&model, &valid)?;
        }
        let mean = total / k as f64;
        scores.push((param.clone(), mean));
        match best {
            Some((_, s)) if s <= mean => {}
            _ => best = Some((pi, mean)),
        }
    }
    let (best_idx, best_score) = best.expect("non-empty params");
    let best_param = params[best_idx].clone();
    let model = make_trainer(&best_param).train(data)?;
    Ok(CvReport {
        best_param,
        best_score,
        scores,
        model,
    })
}

/// Cross-validated ridge-path search for least squares: tries each `μ` in
/// `mus`, scoring by validation MSE.
pub fn select_ridge_mu(
    data: &Dataset,
    mus: &[f64],
    k: usize,
    rng: &mut NimbusRng,
) -> Result<CvReport<f64>> {
    k_fold_cv(
        data,
        mus,
        k,
        |&mu| crate::LinearRegressionTrainer::ridge(mu),
        crate::metrics::mse,
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use crate::LogisticRegressionTrainer;
    use nimbus_data::synthetic::{
        generate_classification, generate_regression, ClassificationSpec, RegressionSpec,
    };
    use nimbus_randkit::seeded_rng;

    #[test]
    fn folds_partition_indices() {
        let mut rng = seeded_rng(1);
        let folds = make_folds(103, 5, &mut rng);
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
        // Balanced within 1.
        let sizes: Vec<usize> = folds.iter().map(|f| f.len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn ridge_cv_prefers_small_mu_on_clean_data() {
        // Noiseless linear data: μ = 0-ish should win over heavy shrinkage.
        let (ds, _) = generate_regression(&RegressionSpec::simulated1(200, 4), 2).unwrap();
        let mut rng = seeded_rng(3);
        let report = select_ridge_mu(&ds, &[1e-8, 1.0, 100.0], 4, &mut rng).unwrap();
        assert_eq!(report.best_param, 1e-8);
        assert!(report.best_score < 1e-6);
        assert_eq!(report.scores.len(), 3);
        // Scores worsen with shrinkage on noiseless data.
        assert!(report.scores[0].1 < report.scores[1].1);
        assert!(report.scores[1].1 < report.scores[2].1);
    }

    #[test]
    fn ridge_cv_prefers_regularization_on_noisy_underdetermined_data() {
        // Few examples, many features, noisy targets: some shrinkage helps.
        let spec = RegressionSpec {
            n: 30,
            d: 20,
            target_noise: 3.0,
            target_scale: 1.0,
            feature_scale: 1.0,
        };
        let (ds, _) = generate_regression(&spec, 17).unwrap();
        let mut rng = seeded_rng(5);
        let report = select_ridge_mu(&ds, &[1e-9, 0.1], 5, &mut rng).unwrap();
        assert_eq!(
            report.best_param, 0.1,
            "shrinkage should beat near-OLS here: {:?}",
            report.scores
        );
    }

    #[test]
    fn generic_cv_works_for_classification() {
        let (ds, _) = generate_classification(&ClassificationSpec::simulated2(300, 4), 7).unwrap();
        let mut rng = seeded_rng(9);
        let report = k_fold_cv(
            &ds,
            &[1e-4, 10.0],
            3,
            |&mu| LogisticRegressionTrainer::new(mu),
            metrics::zero_one_error,
            &mut rng,
        )
        .unwrap();
        // Massive regularization shrinks the model to ~0 and hurts accuracy.
        assert_eq!(report.best_param, 1e-4);
        let final_err = metrics::zero_one_error(&report.model, &ds).unwrap();
        assert!(final_err < 0.15, "final error {final_err}");
    }

    #[test]
    fn rejects_bad_inputs() {
        let (ds, _) = generate_regression(&RegressionSpec::simulated1(20, 2), 1).unwrap();
        let mut rng = seeded_rng(0);
        assert!(select_ridge_mu(&ds, &[], 3, &mut rng).is_err());
        assert!(select_ridge_mu(&ds, &[0.1], 1, &mut rng).is_err());
        assert!(select_ridge_mu(&ds, &[0.1], 21, &mut rng).is_err());
    }
}
