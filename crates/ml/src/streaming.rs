//! Constant-memory streaming training for least squares.
//!
//! The normal-equation system `(XᵀX/n + 2μI) w = Xᵀy/n` only needs the
//! `d×d` Gram matrix and the `d`-vector of cross moments, both of which
//! accumulate in one pass over an [`ExampleStream`]. This is how the broker
//! trains on the paper's full-size Table 3 datasets (10M rows) in `O(d²)`
//! memory — and, because the accumulators merge, the pass parallelizes over
//! row shards.

use crate::{LinearModel, MlError, Result};
use nimbus_data::stream::ExampleStream;
use nimbus_linalg::{Cholesky, Matrix, Vector};

/// One-pass accumulator of the least-squares sufficient statistics.
#[derive(Debug, Clone)]
pub struct LeastSquaresAccumulator {
    d: usize,
    count: u64,
    // Upper triangle of Σ x xᵀ, packed row-major.
    gram_upper: Vec<f64>,
    xty: Vec<f64>,
    yty: f64,
}

impl LeastSquaresAccumulator {
    /// Creates an empty accumulator for `d` features.
    pub fn new(d: usize) -> Self {
        LeastSquaresAccumulator {
            d,
            count: 0,
            gram_upper: vec![0.0; d * (d + 1) / 2],
            xty: vec![0.0; d],
            yty: 0.0,
        }
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.d
    }

    /// Examples absorbed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Absorbs one example.
    #[allow(clippy::needless_range_loop)] // triangular index arithmetic is clearer explicit
    pub fn push(&mut self, x: &[f64], y: f64) {
        debug_assert_eq!(x.len(), self.d);
        let mut idx = 0;
        for a in 0..self.d {
            let xa = x[a];
            // Row a of the upper triangle: columns a..d.
            if xa != 0.0 {
                for b in a..self.d {
                    self.gram_upper[idx + (b - a)] += xa * x[b];
                }
            }
            idx += self.d - a;
            self.xty[a] += xa * y;
        }
        self.yty += y * y;
        self.count += 1;
    }

    /// Absorbs an entire stream (from its current position).
    pub fn push_stream<S: ExampleStream + ?Sized>(&mut self, stream: &mut S) -> Result<()> {
        if stream.num_features() != self.d {
            return Err(MlError::DimensionMismatch {
                model: self.d,
                data: stream.num_features(),
            });
        }
        let mut x = vec![0.0; self.d];
        while let Some(y) = stream.next_example(&mut x) {
            self.push(&x, y);
        }
        Ok(())
    }

    /// Merges another accumulator (parallel shards).
    pub fn merge(&mut self, other: &LeastSquaresAccumulator) -> Result<()> {
        if other.d != self.d {
            return Err(MlError::DimensionMismatch {
                model: self.d,
                data: other.d,
            });
        }
        for (a, b) in self.gram_upper.iter_mut().zip(&other.gram_upper) {
            *a += b;
        }
        for (a, b) in self.xty.iter_mut().zip(&other.xty) {
            *a += b;
        }
        self.yty += other.yty;
        self.count += other.count;
        Ok(())
    }

    /// Solves the ridge system for the accumulated statistics.
    pub fn solve(&self, mu: f64) -> Result<LinearModel> {
        if self.count == 0 {
            return Err(MlError::EmptyDataset);
        }
        if !(mu >= 0.0 && mu.is_finite()) {
            return Err(MlError::InvalidHyperparameter {
                name: "mu",
                value: mu,
            });
        }
        let n = self.count as f64;
        let mut system = Matrix::zeros(self.d, self.d);
        let mut idx = 0;
        for a in 0..self.d {
            for b in a..self.d {
                let v = self.gram_upper[idx] / n;
                system.set(a, b, v);
                system.set(b, a, v);
                idx += 1;
            }
        }
        system.add_diagonal(2.0 * mu)?;
        let mut rhs = Vector::from_vec(self.xty.clone());
        rhs.scale(1.0 / n);
        let (chol, _) = Cholesky::factor_with_jitter(&system, 24)?;
        Ok(LinearModel::new(chol.solve(&rhs)?))
    }

    /// Training mean squared error of a model against the accumulated
    /// statistics: `(wᵀGw − 2wᵀ(Xᵀy) + yᵀy)/n`, no second pass needed.
    pub fn mse(&self, model: &LinearModel) -> Result<f64> {
        if model.dim() != self.d {
            return Err(MlError::DimensionMismatch {
                model: model.dim(),
                data: self.d,
            });
        }
        if self.count == 0 {
            return Err(MlError::EmptyDataset);
        }
        let w = model.weights().as_slice();
        let mut quad = 0.0;
        let mut idx = 0;
        for a in 0..self.d {
            for b in a..self.d {
                let g = self.gram_upper[idx];
                quad += if a == b {
                    w[a] * w[a] * g
                } else {
                    2.0 * w[a] * w[b] * g
                };
                idx += 1;
            }
        }
        let cross: f64 = w.iter().zip(&self.xty).map(|(wi, c)| wi * c).sum();
        Ok(((quad - 2.0 * cross + self.yty) / self.count as f64).max(0.0))
    }
}

/// Trains ridge regression in one pass over a stream.
pub fn train_least_squares_stream<S: ExampleStream + ?Sized>(
    stream: &mut S,
    mu: f64,
) -> Result<LinearModel> {
    let mut acc = LeastSquaresAccumulator::new(stream.num_features());
    acc.push_stream(stream)?;
    acc.solve(mu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinearRegressionTrainer, Trainer};
    use nimbus_data::stream::{DatasetStream, SyntheticRegressionStream};
    use nimbus_data::synthetic::{generate_regression, RegressionSpec};

    #[test]
    fn streaming_matches_materialized_training() {
        let spec = RegressionSpec {
            n: 500,
            d: 6,
            target_noise: 0.7,
            target_scale: 1.0,
            feature_scale: 1.0,
        };
        let (ds, _) = generate_regression(&spec, 5).unwrap();
        let in_memory = LinearRegressionTrainer::ridge(0.01).train(&ds).unwrap();
        let mut stream = DatasetStream::new(&ds);
        let streamed = train_least_squares_stream(&mut stream, 0.01).unwrap();
        for j in 0..6 {
            assert!(
                (in_memory.weights()[j] - streamed.weights()[j]).abs() < 1e-9,
                "weight {j}"
            );
        }
    }

    #[test]
    fn synthetic_stream_training_recovers_hyperplane() {
        let spec = RegressionSpec::simulated1(50_000, 8);
        let mut stream = SyntheticRegressionStream::new(spec, 11);
        let truth = stream.planted_hyperplane();
        let model = train_least_squares_stream(&mut stream, 0.0).unwrap();
        for (j, t) in truth.iter().enumerate() {
            assert!(
                (model.weights()[j] - t).abs() < 1e-6,
                "weight {j}: {} vs {}",
                model.weights()[j],
                t
            );
        }
    }

    #[test]
    fn merge_equals_single_pass() {
        let spec = RegressionSpec {
            n: 300,
            d: 4,
            target_noise: 0.5,
            target_scale: 1.0,
            feature_scale: 1.0,
        };
        let (ds, _) = generate_regression(&spec, 3).unwrap();
        // Single pass.
        let mut all = LeastSquaresAccumulator::new(4);
        all.push_stream(&mut DatasetStream::new(&ds)).unwrap();
        // Two shards.
        let idx_a: Vec<usize> = (0..150).collect();
        let idx_b: Vec<usize> = (150..300).collect();
        let (da, db) = (ds.select(&idx_a), ds.select(&idx_b));
        let mut sa = LeastSquaresAccumulator::new(4);
        sa.push_stream(&mut DatasetStream::new(&da)).unwrap();
        let mut sb = LeastSquaresAccumulator::new(4);
        sb.push_stream(&mut DatasetStream::new(&db)).unwrap();
        sa.merge(&sb).unwrap();
        assert_eq!(sa.count(), all.count());
        let w_all = all.solve(0.05).unwrap();
        let w_merged = sa.solve(0.05).unwrap();
        for j in 0..4 {
            assert!((w_all.weights()[j] - w_merged.weights()[j]).abs() < 1e-10);
        }
    }

    #[test]
    fn accumulator_mse_matches_direct_evaluation() {
        let spec = RegressionSpec {
            n: 200,
            d: 3,
            target_noise: 1.0,
            target_scale: 1.0,
            feature_scale: 1.0,
        };
        let (ds, _) = generate_regression(&spec, 8).unwrap();
        let mut acc = LeastSquaresAccumulator::new(3);
        acc.push_stream(&mut DatasetStream::new(&ds)).unwrap();
        let model = acc.solve(0.0).unwrap();
        let acc_mse = acc.mse(&model).unwrap();
        let direct = crate::metrics::mse(&model, &ds).unwrap();
        assert!(
            (acc_mse - direct).abs() < 1e-8 * (1.0 + direct),
            "acc {acc_mse} vs direct {direct}"
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let acc = LeastSquaresAccumulator::new(3);
        assert!(matches!(acc.solve(0.1), Err(MlError::EmptyDataset)));
        let mut a = LeastSquaresAccumulator::new(2);
        let b = LeastSquaresAccumulator::new(3);
        assert!(a.merge(&b).is_err());
        let mut filled = LeastSquaresAccumulator::new(1);
        filled.push(&[1.0], 1.0);
        assert!(filled.solve(-1.0).is_err());
        assert!(filled.solve(f64::NAN).is_err());
        assert!(filled.mse(&LinearModel::zeros(2)).is_err());
    }
}
