//! L2 linear SVM via Pegasos stochastic subgradient descent.
//!
//! Table 2's third model is the L2-regularized linear SVM
//! `1/n Σ max(0, 1 − ỹ hᵀx) + μ‖h‖²`. Pegasos (Shalev-Shwartz et al.)
//! minimizes exactly this objective with step sizes `η_t = 1/(λ t)` where
//! `λ = 2μ`, and converges at rate `O(1/(λT))` — more than enough for the
//! broker's one-time training at Table 3 scales.

use crate::loss::HingeLoss;
use crate::{LinearModel, MlError, Result, Trainer};
use nimbus_data::{Dataset, Task};
use nimbus_randkit::uniform::uniform_index;
use nimbus_randkit::{seeded_rng, split_stream};

/// Pegasos trainer for the L2 linear SVM.
#[derive(Debug, Clone, Copy)]
pub struct PegasosSvmTrainer {
    /// Regularization strength `μ > 0` (the SVM objective's `μ‖h‖²`).
    pub mu: f64,
    /// Number of stochastic iterations (examples touched).
    pub iterations: usize,
    /// Seed for the example-sampling stream.
    pub seed: u64,
    /// Whether to return the tail-averaged iterate (halves the variance of
    /// the stochastic solution; recommended).
    pub average: bool,
}

impl PegasosSvmTrainer {
    /// Default configuration: 200k iterations, averaging on.
    pub fn new(mu: f64, seed: u64) -> Self {
        PegasosSvmTrainer {
            mu,
            iterations: 200_000,
            seed,
            average: true,
        }
    }

    /// The training objective.
    pub fn loss(&self) -> Result<HingeLoss> {
        HingeLoss::new(self.mu)
    }
}

impl Trainer for PegasosSvmTrainer {
    fn train(&self, data: &Dataset) -> Result<LinearModel> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if data.task() != Task::BinaryClassification {
            return Err(MlError::TaskMismatch {
                expected: "classification",
            });
        }
        if !(self.mu > 0.0 && self.mu.is_finite()) {
            return Err(MlError::InvalidHyperparameter {
                name: "mu",
                value: self.mu,
            });
        }
        let lambda = 2.0 * self.mu;
        let d = data.num_features();
        let n = data.len();
        let mut rng = seeded_rng(split_stream(self.seed, 0x5eca));
        let mut w = vec![0.0f64; d];
        // Tail average over the second half of the trajectory.
        let tail_start = self.iterations / 2;
        let mut avg = vec![0.0f64; d];
        let mut avg_count = 0usize;

        for t in 1..=self.iterations {
            let i = uniform_index(&mut rng, n);
            let (x, y) = data.example(i);
            let yy = if y == 1.0 { 1.0 } else { -1.0 };
            let score: f64 = w.iter().zip(x).map(|(a, b)| a * b).sum();
            let eta = 1.0 / (lambda * t as f64);
            // w ← (1 − ηλ) w  [+ η y x  when the margin is violated]
            let shrink = 1.0 - eta * lambda;
            for wj in w.iter_mut() {
                *wj *= shrink;
            }
            if yy * score < 1.0 {
                for (wj, xj) in w.iter_mut().zip(x) {
                    *wj += eta * yy * xj;
                }
            }
            if self.average && t > tail_start {
                for (a, wj) in avg.iter_mut().zip(&w) {
                    *a += wj;
                }
                avg_count += 1;
            }
        }

        let weights = if self.average && avg_count > 0 {
            avg.iter().map(|a| a / avg_count as f64).collect()
        } else {
            w
        };
        Ok(LinearModel::new(nimbus_linalg::Vector::from_vec(weights)))
    }

    fn name(&self) -> &'static str {
        "pegasos_svm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{Loss, ZeroOneLoss};
    use nimbus_data::synthetic::{generate_classification, ClassificationSpec};
    use nimbus_linalg::{Matrix, Vector};

    fn toy() -> Dataset {
        let x = Matrix::from_row_major(6, 1, vec![-3.0, -2.0, -1.0, 1.0, 2.0, 3.0]).unwrap();
        let y = Vector::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        Dataset::new(x, y, Task::BinaryClassification).unwrap()
    }

    #[test]
    fn separates_toy_data() {
        let trainer = PegasosSvmTrainer::new(0.01, 1);
        let model = trainer.train(&toy()).unwrap();
        assert!(model.weights()[0] > 0.0);
        assert_eq!(ZeroOneLoss.value(&model, &toy()).unwrap(), 0.0);
    }

    #[test]
    fn objective_is_near_optimal() {
        // Compare Pegasos against a fine one-dimensional grid search on the
        // same objective.
        let trainer = PegasosSvmTrainer::new(0.05, 2);
        let data = toy();
        let model = trainer.train(&data).unwrap();
        let hinge = trainer.loss().unwrap();
        let pegasos_obj = hinge.value(&model, &data).unwrap();

        let mut best = f64::INFINITY;
        for k in 0..4000 {
            let w = k as f64 * 0.001;
            let m = LinearModel::new(Vector::from_vec(vec![w]));
            best = best.min(hinge.value(&m, &data).unwrap());
        }
        assert!(
            pegasos_obj <= best + 0.02,
            "pegasos {pegasos_obj} vs grid optimum {best}"
        );
    }

    #[test]
    fn learns_simulated2_direction() {
        let (data, truth) =
            generate_classification(&ClassificationSpec::simulated2(3_000, 5), 13).unwrap();
        let trainer = PegasosSvmTrainer::new(1e-3, 3);
        let model = trainer.train(&data).unwrap();
        let cos = model.weights().dot(&truth).unwrap() / (model.weights().norm2() * truth.norm2());
        assert!(cos > 0.9, "cosine similarity {cos}");
        let err = ZeroOneLoss.value(&model, &data).unwrap();
        assert!(err < 0.12, "0/1 error {err}");
    }

    #[test]
    fn deterministic_given_seed() {
        let data = toy();
        let a = PegasosSvmTrainer::new(0.01, 9).train(&data).unwrap();
        let b = PegasosSvmTrainer::new(0.01, 9).train(&data).unwrap();
        assert_eq!(a.weights().as_slice(), b.weights().as_slice());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(PegasosSvmTrainer::new(0.0, 1).train(&toy()).is_err());
        let x = Matrix::zeros(2, 1);
        let y = Vector::from_vec(vec![1.0, 2.0]);
        let reg = Dataset::new(x, y, Task::Regression).unwrap();
        assert!(matches!(
            PegasosSvmTrainer::new(0.1, 1).train(&reg),
            Err(MlError::TaskMismatch { .. })
        ));
    }

    #[test]
    fn averaging_reduces_objective_noise() {
        let data = toy();
        let hinge = HingeLoss::new(0.05).unwrap();
        let avg_trainer = PegasosSvmTrainer {
            average: true,
            iterations: 20_000,
            ..PegasosSvmTrainer::new(0.05, 5)
        };
        let raw_trainer = PegasosSvmTrainer {
            average: false,
            ..avg_trainer
        };
        let avg_obj = hinge
            .value(&avg_trainer.train(&data).unwrap(), &data)
            .unwrap();
        let raw_obj = hinge
            .value(&raw_trainer.train(&data).unwrap(), &data)
            .unwrap();
        // The averaged iterate should not be substantially worse.
        assert!(avg_obj <= raw_obj + 0.05, "avg {avg_obj} raw {raw_obj}");
    }
}
