//! Property-based tests for the ML substrate: convexity of losses,
//! optimality of trainers, gradient consistency.

use nimbus_data::synthetic::{generate_regression, RegressionSpec};
use nimbus_data::{Dataset, Task};
use nimbus_linalg::{Matrix, Vector};
use nimbus_ml::loss::{LogisticLoss, Loss, SquaredLoss};
use nimbus_ml::{LinearModel, LinearRegressionTrainer, Trainer};
use proptest::prelude::*;

fn cls_dataset() -> Dataset {
    let x = Matrix::from_row_major(
        6,
        2,
        vec![
            -2.0, 1.0, -1.0, 0.5, -0.5, -1.0, 0.5, 1.0, 1.0, -0.5, 2.0, 0.0,
        ],
    )
    .unwrap();
    let y = Vector::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
    Dataset::new(x, y, Task::BinaryClassification).unwrap()
}

proptest! {
    #[test]
    fn squared_loss_is_convex_along_segments(
        w1 in prop::collection::vec(-5.0..5.0f64, 2),
        w2 in prop::collection::vec(-5.0..5.0f64, 2),
        t in 0.0..1.0f64,
    ) {
        let x = Matrix::from_row_major(4, 2, vec![
            1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, -1.0,
        ]).unwrap();
        let y = Vector::from_vec(vec![1.0, -1.0, 0.5, 2.0]);
        let data = Dataset::new(x, y, Task::Regression).unwrap();
        let loss = SquaredLoss::ridge(0.01);

        let a = LinearModel::new(Vector::from_vec(w1.clone()));
        let b = LinearModel::new(Vector::from_vec(w2.clone()));
        let mix: Vec<f64> = w1.iter().zip(&w2).map(|(p, q)| t * p + (1.0 - t) * q).collect();
        let m = LinearModel::new(Vector::from_vec(mix));

        let fa = loss.value(&a, &data).unwrap();
        let fb = loss.value(&b, &data).unwrap();
        let fm = loss.value(&m, &data).unwrap();
        prop_assert!(fm <= t * fa + (1.0 - t) * fb + 1e-9);
    }

    #[test]
    fn logistic_loss_is_convex_along_segments(
        w1 in prop::collection::vec(-3.0..3.0f64, 2),
        w2 in prop::collection::vec(-3.0..3.0f64, 2),
        t in 0.0..1.0f64,
    ) {
        let data = cls_dataset();
        let loss = LogisticLoss::regularized(0.01);
        let a = LinearModel::new(Vector::from_vec(w1.clone()));
        let b = LinearModel::new(Vector::from_vec(w2.clone()));
        let mix: Vec<f64> = w1.iter().zip(&w2).map(|(p, q)| t * p + (1.0 - t) * q).collect();
        let m = LinearModel::new(Vector::from_vec(mix));
        let fa = loss.value(&a, &data).unwrap();
        let fb = loss.value(&b, &data).unwrap();
        let fm = loss.value(&m, &data).unwrap();
        prop_assert!(fm <= t * fa + (1.0 - t) * fb + 1e-9);
    }

    #[test]
    fn gradients_match_finite_differences(
        w in prop::collection::vec(-2.0..2.0f64, 2),
        coord in 0usize..2,
    ) {
        let data = cls_dataset();
        let loss = LogisticLoss::regularized(0.05);
        let model = LinearModel::new(Vector::from_vec(w.clone()));
        let g = loss.gradient(&model, &data).unwrap();
        let eps = 1e-6;
        let mut up = w.clone();
        up[coord] += eps;
        let mut dn = w.clone();
        dn[coord] -= eps;
        let fu = loss.value(&LinearModel::new(Vector::from_vec(up)), &data).unwrap();
        let fd = loss.value(&LinearModel::new(Vector::from_vec(dn)), &data).unwrap();
        let fdiff = (fu - fd) / (2.0 * eps);
        prop_assert!((g[coord] - fdiff).abs() < 1e-4, "grad {} vs fd {}", g[coord], fdiff);
    }

    #[test]
    fn ridge_solution_is_global_minimum(
        seed in 0u64..200,
        mu in 0.001..1.0f64,
        perturb in prop::collection::vec(-0.5..0.5f64, 3),
    ) {
        let (data, _) = generate_regression(
            &RegressionSpec {
                n: 120,
                d: 3,
                target_noise: 0.5,
                target_scale: 1.0,
                feature_scale: 1.0,
            },
            seed,
        ).unwrap();
        let trainer = LinearRegressionTrainer::ridge(mu);
        let optimum = trainer.train(&data).unwrap();
        let loss = trainer.loss();
        let f_opt = loss.value(&optimum, &data).unwrap();
        // Any perturbation of the optimum has a (weakly) larger objective.
        let mut w = optimum.weights().as_slice().to_vec();
        for (wi, p) in w.iter_mut().zip(&perturb) {
            *wi += p;
        }
        let f_pert = loss.value(&LinearModel::new(Vector::from_vec(w)), &data).unwrap();
        prop_assert!(f_pert >= f_opt - 1e-10);
    }

    #[test]
    fn ridge_path_is_monotone_in_norm(seed in 0u64..100) {
        // Larger regularization never increases the weight norm.
        let (data, _) = generate_regression(&RegressionSpec::simulated1(100, 4), seed).unwrap();
        let mut last_norm = f64::INFINITY;
        for mu in [0.0, 0.01, 0.1, 1.0, 10.0] {
            let model = LinearRegressionTrainer::ridge(mu).train(&data).unwrap();
            let norm = model.weights().norm2();
            prop_assert!(norm <= last_norm + 1e-9, "mu {mu}: norm {norm} > {last_norm}");
            last_norm = norm;
        }
    }
}
