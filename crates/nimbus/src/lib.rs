//! # Nimbus — model-based pricing for machine learning in a data marketplace
//!
//! A from-scratch Rust reproduction of *"Model-based Pricing for Machine
//! Learning in a Data Marketplace"* (Chen, Koutris, Kumar), the system
//! demonstrated at SIGMOD 2019 as **Nimbus**.
//!
//! Instead of selling raw data, a broker sells *noisy versions* of the
//! optimal ML model trained on a seller's dataset. A single knob — the
//! noise control parameter (NCP) δ of a Gaussian perturbation — trades
//! expected model error against price, and a pricing function over the
//! inverse NCP is **arbitrage-free iff it is monotone and subadditive**
//! (Theorem 5). Revenue-optimal arbitrage-free prices are computed by an
//! `O(n²)` dynamic program within a provable factor 2 of the (coNP-hard)
//! exact optimum.
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`linalg`] | `nimbus-linalg` | dense vectors/matrices, Cholesky |
//! | [`randkit`] | `nimbus-randkit` | seedable normal/Laplace/uniform/discrete sampling |
//! | [`data`] | `nimbus-data` | datasets, splits, CSV, Table 3 generators |
//! | [`ml`] | `nimbus-ml` | losses, linear/logistic/SVM trainers, metrics, error metrics |
//! | [`core`] | `nimbus-core` | **the MBP contribution**: mechanisms, error curves + φ, curve provider, pricing, arbitrage |
//! | [`optim`] | `nimbus-optim` | revenue DP, brute force, baselines, interpolation |
//! | [`market`] | `nimbus-market` | seller/broker/buyer agents, end-to-end simulation |
//! | [`server`] | `nimbus-server` | TCP broker service: wire protocol, admission control, client, load generator |
//! | [`agents`] | `nimbus-agents` | closed-loop buyer-agent ecology: adaptive agents, empirical demand, demand-fed re-pricing |
//!
//! ## Quickstart
//!
//! ```
//! use nimbus::prelude::*;
//!
//! // A seller lists a dataset with market-research curves.
//! let spec = DatasetSpec::scaled(PaperDataset::Simulated1, 400);
//! let (dataset, _) = spec.materialize(7).unwrap();
//! let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
//! let seller = Seller::new("acme-data", dataset, curves);
//!
//! // The broker is configured through a validating builder; it trains
//! // once, optimizes arbitrage-free prices, and publishes an immutable
//! // market snapshot that serves all buyer reads lock-free.
//! let broker = Broker::builder(seller)
//!     .trainer(LinearRegressionTrainer::ridge(1e-6))
//!     .mechanism(GaussianMechanism)
//!     .n_price_points(20)
//!     .error_curve_samples(50)
//!     .seed(1)
//!     .build()
//!     .unwrap();
//! broker.open_market().unwrap();
//!
//! // A buyer asks for a quote under an error budget, then commits the
//! // quoted offer and receives a noisy model. The budget is interpreted
//! // under the broker's error metric (square distance by default) by
//! // pushing it through the φ error-inverse map of the snapshot's curve.
//! let quote = broker.quote_request(PurchaseRequest::ErrorBudget(0.05)).unwrap();
//! assert_eq!(quote.metric, "square");
//! assert!(quote.expected_error <= 0.05 + 1e-12);
//! let sale = broker.commit(quote, quote.price).unwrap();
//! assert!(sale.expected_error <= 0.05 + 1e-12);
//! ```
//!
//! To price against a buyer-facing loss instead — logistic, hinge, or 0/1
//! classification error — configure the broker with an error metric:
//! `Broker::builder(seller).error_metric(LossMetric::zero_one(test_set))`.
//! The broker then estimates the metric's error curve with a deterministic
//! parallel Monte-Carlo sweep, maps market research through φ, and
//! re-verifies arbitrage-freeness on the φ-mapped grid before publishing.

pub use nimbus_agents as agents;
pub use nimbus_core as core;
pub use nimbus_data as data;
pub use nimbus_linalg as linalg;
pub use nimbus_market as market;
pub use nimbus_ml as ml;
pub use nimbus_optim as optim;
pub use nimbus_randkit as randkit;
pub use nimbus_server as server;

/// One-stop imports for the common Nimbus workflow.
pub mod prelude {
    pub use nimbus_agents::{
        run_scenario, BuyerAgent, DemandObserver, Repricer, Scenario, SimHarness, SimOutcome,
    };
    pub use nimbus_core::{
        arbitrage::{
            check_arbitrage_free, check_arbitrage_free_after_phi, combine_instances, find_attack,
        },
        inverse_ncp_grid, parallel_map, ConstantPricing, CurveProvider, ErrorCurve,
        GaussianMechanism, InverseNcp, LaplaceMechanism, LinearPricing, Ncp,
        PiecewiseLinearPricing, PriceErrorCurve, PricingFunction, RandomizedMechanism,
        UniformMechanism,
    };
    pub use nimbus_data::{
        catalog::{DatasetSpec, PaperDataset},
        synthetic::{
            generate_classification, generate_regression, ClassificationSpec, RegressionSpec,
        },
        train_test_split, Dataset, Standardizer, Task, TrainTest,
    };
    pub use nimbus_market::{
        curves::{DemandCurve, MarketCurves, ValueCurve},
        simulation::{compare_strategies, price_with, PricingStrategy},
        Broker, BrokerBuilder, BrokerConfig, Buyer, BuyerPopulation, FaultPlan, Journal,
        JournalError, ListingBuilder, ListingMeta, ListingState, ListingStats, MarketSnapshot,
        Marketplace, MarketplaceStats, MenuEntry, PurchaseRequest, Quote, Recovery, Sale, Seller,
    };
    pub use nimbus_ml::{
        metrics, ErrorMetric, LinearModel, LinearRegressionTrainer, LogisticRegressionTrainer,
        LossMetric, PegasosSvmTrainer, SquareDistanceMetric, Trainer,
    };
    pub use nimbus_optim::{
        affordability_ratio, revenue, solve_revenue_brute_force, solve_revenue_dp, Baseline,
        BaselineKind, InterpolationProblem, PricePoint, RevenueProblem,
    };
    pub use nimbus_randkit::{seeded_rng, split_stream, NimbusRng};
    pub use nimbus_server::{
        loadgen::{run_load, ListingLoad, LoadConfig, LoadMode},
        render_prometheus, ClientConfig, NimbusClient, NimbusServer, RetryPolicy, ServerConfig,
    };
}

pub use nimbus_core::ncp::inverse_ncp_grid;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_compiles_and_links_every_layer() {
        let grid = nimbus_core::ncp::inverse_ncp_grid(1.0, 10.0, 5).unwrap();
        assert_eq!(grid.len(), 5);
        let problem = RevenueProblem::figure5_example();
        let dp = solve_revenue_dp(&problem).unwrap();
        assert!(dp.revenue > 0.0);
        let mut rng = seeded_rng(1);
        let (ds, _) = generate_regression(&RegressionSpec::simulated1(50, 3), 2).unwrap();
        let tt = train_test_split(&ds, 0.75, &mut rng).unwrap();
        let model = LinearRegressionTrainer::ols().train(&tt.train).unwrap();
        assert_eq!(model.dim(), 3);
    }
}
