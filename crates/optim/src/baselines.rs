//! The four baseline pricing strategies of §6.2.
//!
//! * **Lin** — linear interpolation between the smallest and largest buyer
//!   values over the inverse-NCP range.
//! * **MaxC** — one constant price: the highest valuation in the market.
//! * **MedC** — one constant price chosen so at least half the buyers (by
//!   demand mass) can afford a model instance.
//! * **OptC** — the revenue-optimal constant price.
//!
//! All four produce well-behaved (arbitrage-free, non-negative) pricing
//! functions; what they lack is *versioning* — a single price (or a rigid
//! line) cannot track the buyer value curve, which is exactly the revenue
//! and affordability gap Figures 7–14 measure.

use crate::objective::revenue;
use crate::problem::RevenueProblem;
use crate::Result;
use nimbus_core::pricing::{LinearPricing, PricingFunction};

/// Which baseline strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// Linear interpolation of the value curve's endpoints.
    Lin,
    /// Constant at the maximum valuation.
    MaxC,
    /// Constant at the ≥50% affordability price.
    MedC,
    /// Revenue-optimal constant.
    OptC,
}

impl BaselineKind {
    /// All four baselines in the paper's presentation order.
    pub const ALL: [BaselineKind; 4] = [
        BaselineKind::Lin,
        BaselineKind::MaxC,
        BaselineKind::MedC,
        BaselineKind::OptC,
    ];

    /// Display name as used in the figures.
    pub fn name(&self) -> &'static str {
        match self {
            BaselineKind::Lin => "Lin",
            BaselineKind::MaxC => "MaxC",
            BaselineKind::MedC => "MedC",
            BaselineKind::OptC => "OptC",
        }
    }
}

/// A fitted baseline: its pricing function and per-point prices.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// Which strategy produced this.
    pub kind: BaselineKind,
    /// Prices at the problem's points, aligned with `problem.points()`.
    pub prices: Vec<f64>,
}

impl Baseline {
    /// Fits the given baseline to a revenue problem.
    pub fn fit(kind: BaselineKind, problem: &RevenueProblem) -> Result<Baseline> {
        let pts = problem.points();
        let prices = match kind {
            BaselineKind::Lin => {
                let first = pts.first().expect("non-empty problem");
                let last = pts.last().expect("non-empty problem");
                if pts.len() == 1 {
                    vec![first.v]
                } else {
                    let line = LinearPricing::through(first.a, first.v, last.a, last.v)?;
                    pts.iter().map(|p| line.price_at_raw(p.a)).collect()
                }
            }
            BaselineKind::MaxC => {
                let max_v = pts.iter().map(|p| p.v).fold(0.0, f64::max);
                vec![max_v; pts.len()]
            }
            BaselineKind::MedC => {
                let price = median_affordable_price(problem);
                vec![price; pts.len()]
            }
            BaselineKind::OptC => {
                let price = optimal_constant_price(problem)?;
                vec![price; pts.len()]
            }
        };
        Ok(Baseline { kind, prices })
    }

    /// Fits all four baselines.
    pub fn fit_all(problem: &RevenueProblem) -> Result<Vec<Baseline>> {
        BaselineKind::ALL
            .iter()
            .map(|&k| Baseline::fit(k, problem))
            .collect()
    }
}

/// Extension trait: evaluate a [`LinearPricing`] at a raw `f64` without
/// building an `InverseNcp` (baseline-internal convenience; panics only on
/// non-positive input, which problem validation precludes).
trait PriceAtRaw {
    fn price_at_raw(&self, x: f64) -> f64;
}

impl PriceAtRaw for LinearPricing {
    fn price_at_raw(&self, x: f64) -> f64 {
        self.price(nimbus_core::InverseNcp::new(x).expect("validated parameter"))
    }
}

/// The largest constant price at which at least half the demand mass can
/// afford a model instance. With a constant price `p`, buyer group `j`
/// affords iff `p ≤ v_j`; affordability is the mass of groups with
/// `v_j ≥ p`, maximized subject to staying ≥ 50%.
fn median_affordable_price(problem: &RevenueProblem) -> f64 {
    let total = problem.total_demand();
    // nimbus-audit: allow(float-eq) — exact-zero guard on a sum of non-negative masses
    if total == 0.0 {
        return 0.0;
    }
    // Valuations sorted descending with their masses; accumulate from the
    // top until reaching half the total mass.
    let mut pairs: Vec<(f64, f64)> = problem.points().iter().map(|p| (p.v, p.b)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut mass = 0.0;
    for (v, b) in pairs {
        mass += b;
        if mass >= total / 2.0 {
            return v;
        }
    }
    // Fewer than half can ever afford anything positive: price at the
    // minimum valuation so everyone can buy.
    problem
        .points()
        .iter()
        .map(|p| p.v)
        .fold(f64::INFINITY, f64::min)
}

/// The revenue-optimal constant price: some valuation `v_j` always attains
/// the optimum, so only `n` candidates need checking.
fn optimal_constant_price(problem: &RevenueProblem) -> Result<f64> {
    let mut best_price = 0.0;
    let mut best_revenue = -1.0;
    for candidate in problem.valuations() {
        let prices = vec![candidate; problem.len()];
        let r = revenue(&prices, problem)?;
        if r > best_revenue {
            best_revenue = r;
            best_price = candidate;
        }
    }
    Ok(best_price)
}

/// Fits every baseline and returns `(name, prices, revenue)` rows for
/// report tables.
pub fn baseline_report(problem: &RevenueProblem) -> Result<Vec<(&'static str, Vec<f64>, f64)>> {
    Baseline::fit_all(problem)?
        .into_iter()
        .map(|b| {
            let r = revenue(&b.prices, problem)?;
            Ok((b.kind.name(), b.prices, r))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::affordability_ratio;

    fn problem() -> RevenueProblem {
        RevenueProblem::figure5_example()
    }

    #[test]
    fn lin_interpolates_endpoints() {
        let b = Baseline::fit(BaselineKind::Lin, &problem()).unwrap();
        // Line through (1, 100) and (4, 350): slope 83.33, v(2)=183.3,
        // v(3)=266.7.
        assert!((b.prices[0] - 100.0).abs() < 1e-9);
        assert!((b.prices[3] - 350.0).abs() < 1e-9);
        assert!((b.prices[1] - 550.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn lin_loses_revenue_on_convex_curves() {
        // Convex value curve: the line overshoots mid-market valuations, so
        // those buyers walk away (the §6.2 observation).
        let p = RevenueProblem::from_slices(
            &[1.0, 2.0, 3.0, 4.0],
            &[1.0; 4],
            &[10.0, 12.0, 20.0, 100.0], // convex-ish
        )
        .unwrap();
        let lin = Baseline::fit(BaselineKind::Lin, &p).unwrap();
        let r = revenue(&lin.prices, &p).unwrap();
        let aff = affordability_ratio(&lin.prices, &p).unwrap();
        // The clamped line (p(x) = 30x here) prices every mid-market buyer
        // out; revenue and affordability collapse relative to the total
        // valuation mass of 142.
        assert!(r < 50.0, "lin revenue {r}");
        assert!(aff <= 0.5, "lin affordability {aff}");
        // And the DP (which tracks the curve) strictly dominates it.
        let dp = crate::dp::solve_revenue_dp(&p).unwrap();
        assert!(dp.revenue > r + 10.0, "dp {} vs lin {r}", dp.revenue);
    }

    #[test]
    fn maxc_only_richest_buy() {
        let b = Baseline::fit(BaselineKind::MaxC, &problem()).unwrap();
        assert_eq!(b.prices, vec![350.0; 4]);
        let r = revenue(&b.prices, &problem()).unwrap();
        assert!((r - 0.25 * 350.0).abs() < 1e-9);
        let aff = affordability_ratio(&b.prices, &problem()).unwrap();
        assert_eq!(aff, 0.25);
    }

    #[test]
    fn medc_reaches_half_the_market() {
        let b = Baseline::fit(BaselineKind::MedC, &problem()).unwrap();
        // Masses are equal; descending valuations 350, 280, 150, 100 —
        // half the mass is reached at 280.
        assert_eq!(b.prices[0], 280.0);
        let aff = affordability_ratio(&b.prices, &problem()).unwrap();
        assert!(aff >= 0.5);
    }

    #[test]
    fn optc_maximizes_over_constants() {
        let p = problem();
        let b = Baseline::fit(BaselineKind::OptC, &p).unwrap();
        let r_opt = revenue(&b.prices, &p).unwrap();
        for candidate in p.valuations() {
            let r = revenue(&[candidate; 4], &p).unwrap();
            assert!(r_opt >= r - 1e-9);
        }
        // On Figure 5: price 280 sells to {280, 350} → 0.25·2·280 = 140;
        // price 150 sells to 3 groups → 112.5; price 350 → 87.5;
        // price 100 → 100. OptC = 280.
        assert_eq!(b.prices[0], 280.0);
        assert!((r_opt - 140.0).abs() < 1e-9);
    }

    #[test]
    fn all_baselines_fit_and_report() {
        let rows = baseline_report(&problem()).unwrap();
        assert_eq!(rows.len(), 4);
        let names: Vec<&str> = rows.iter().map(|r| r.0).collect();
        assert_eq!(names, vec!["Lin", "MaxC", "MedC", "OptC"]);
        for (_, prices, r) in &rows {
            assert_eq!(prices.len(), 4);
            assert!(*r >= 0.0);
        }
    }

    #[test]
    fn single_point_baselines() {
        let p = RevenueProblem::from_slices(&[2.0], &[1.0], &[9.0]).unwrap();
        for kind in BaselineKind::ALL {
            let b = Baseline::fit(kind, &p).unwrap();
            assert_eq!(b.prices.len(), 1);
            assert!((b.prices[0] - 9.0).abs() < 1e-9, "{:?}", kind);
        }
    }

    #[test]
    fn medc_with_zero_demand() {
        let p = RevenueProblem::from_slices(&[1.0, 2.0], &[0.0, 0.0], &[5.0, 6.0]).unwrap();
        let b = Baseline::fit(BaselineKind::MedC, &p).unwrap();
        assert_eq!(b.prices[0], 0.0);
    }
}
