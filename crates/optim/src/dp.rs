//! Algorithm 1: the O(n²) dynamic program for revenue maximization.
//!
//! Solves the relaxed program (5) — maximize `T_BV(z) = Σ b_j z_j 1[z_j ≤
//! v_j]` subject to `z` non-decreasing, `z_j/a_j` non-increasing, `z ≥ 0` —
//! *exactly*, in `O(n²)` time and space (Theorem 13).
//!
//! The recursion of §5.3: `OPT(k, Δ)` is the best revenue from points
//! `k..n` when every unit price `z_j/a_j` is capped at `Δ`. Only `n+1`
//! values of `Δ` ever arise — `{v_1/a_1, …, v_n/a_n, +∞}` — because caps are
//! introduced exclusively when some point `k` is priced exactly at its
//! valuation (`Δ := v_k/a_k`). At each `(k, Δ)`:
//!
//! * if `a_k·Δ ≤ v_k`, the unique optimum prices `z_k = Δ·a_k` (Lemma 11);
//! * otherwise the solver branches (Lemma 12): either *cap* — sell to `k` at
//!   `z_k = v_k`, tightening the cap to `v_k/a_k` — or *skip* — price `k`
//!   out of reach, inheriting the unit price of `k+1`.

use crate::objective::revenue;
use crate::problem::RevenueProblem;
use crate::Result;

/// Output of the revenue DP.
#[derive(Debug, Clone)]
pub struct DpSolution {
    /// Optimal prices `z_j = p(a_j)`, aligned with the problem's sorted
    /// points. Feasible for the relaxed program (5), hence arbitrage-free.
    pub prices: Vec<f64>,
    /// The achieved revenue `T_BV(z)`.
    pub revenue: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Choice {
    /// `a_k·Δ ≤ v_k`: price at the cap, `z_k = Δ·a_k`.
    Follow,
    /// Price at the valuation, introducing cap `v_k/a_k`.
    Cap,
    /// Price point `k` out of reach (same unit price as `k+1`).
    Skip,
}

/// Solves the relaxed revenue-maximization program exactly (Algorithm 1).
pub fn solve_revenue_dp(problem: &RevenueProblem) -> Result<DpSolution> {
    solve_revenue_dp_with_sale_bonus(problem, 0.0)
}

/// Algorithm 1 with a generalized objective `Σ b_j (z_j + bonus) 1[z_j ≤
/// v_j]`: each completed sale earns a flat `bonus` on top of the price.
///
/// `bonus = 0` recovers the paper's `T_BV`. A positive bonus rewards
/// *serving* a buyer group independently of the price, which is exactly a
/// Lagrangian relaxation of an affordability (fairness) floor — the future
/// work the paper's §6.3/§7 point to. See [`crate::fairness`] for the
/// frontier sweep built on top of this.
///
/// The Lemma 11/12 structure is unchanged: conditional on selling to a
/// group, the reward is still strictly increasing in the price, and the
/// branch comparison only gains a constant `b_k·bonus` on the sell side, so
/// the same `n+1` cap values and the same recursion remain exact.
pub fn solve_revenue_dp_with_sale_bonus(
    problem: &RevenueProblem,
    bonus: f64,
) -> Result<DpSolution> {
    assert!(
        bonus >= 0.0 && bonus.is_finite(),
        "sale bonus must be non-negative and finite"
    );
    let pts = problem.points();
    let n = pts.len();
    // Δ candidates: v_j/a_j for each j, plus +∞ at index n.
    let mut delta_set: Vec<f64> = pts.iter().map(|p| p.v / p.a).collect();
    delta_set.push(f64::INFINITY);
    let m = delta_set.len();

    // opt[k][di], price[k][di], choice[k][di]; k in 0..n, di in 0..m.
    let mut opt = vec![vec![0.0f64; m]; n];
    let mut price = vec![vec![0.0f64; m]; n];
    let mut choice = vec![vec![Choice::Follow; m]; n];

    // Base case: the last point takes the highest affordable price.
    let last = &pts[n - 1];
    for (di, &delta) in delta_set.iter().enumerate() {
        let capped = if delta.is_infinite() {
            last.v
        } else {
            last.v.min(delta * last.a)
        };
        price[n - 1][di] = capped;
        opt[n - 1][di] = last.b * (capped + bonus);
        choice[n - 1][di] = if capped < last.v {
            Choice::Follow
        } else {
            Choice::Cap
        };
    }

    // Backward induction.
    for k in (0..n.saturating_sub(1)).rev() {
        let p = &pts[k];
        for di in 0..m {
            let delta = delta_set[di];
            let cap_price = if delta.is_infinite() {
                f64::INFINITY
            } else {
                delta * p.a
            };
            if cap_price <= p.v {
                // Lemma 11: price exactly at the cap.
                price[k][di] = cap_price;
                opt[k][di] = p.b * (cap_price + bonus) + opt[k + 1][di];
                choice[k][di] = Choice::Follow;
            } else {
                // Lemma 12: cap at valuation or skip this buyer group.
                let opt_cap = p.b * (p.v + bonus) + opt[k + 1][k];
                let opt_skip = opt[k + 1][di];
                if opt_cap > opt_skip {
                    price[k][di] = p.v;
                    opt[k][di] = opt_cap;
                    choice[k][di] = Choice::Cap;
                } else {
                    // Inherit the (k+1) unit price so the relaxed
                    // subadditive chain stays intact.
                    price[k][di] = price[k + 1][di] * p.a / pts[k + 1].a;
                    opt[k][di] = opt_skip;
                    choice[k][di] = Choice::Skip;
                }
            }
        }
    }

    // Forward reconstruction from (k = 0, Δ = +∞).
    let mut prices = Vec::with_capacity(n);
    let mut di = m - 1;
    for k in 0..n {
        prices.push(price[k][di]);
        if choice[k][di] == Choice::Cap && k < n - 1 {
            di = k; // Δ := v_k / a_k
        }
    }
    // Monotone repair for skipped points. A skip prices `k` at the unit
    // price of `k+1`, which can dip below `z_{k-1}` when `k-1` was capped
    // at its valuation and the unit price drops faster than `a` grows —
    // violating the `z` non-decreasing constraint of program (5). Raising
    // a price to the running maximum keeps every unit-price constraint
    // (`z̃_k/a_k ≥ z_k/a_k ≥ u_{k+1}`, and `z̃_k/a_k ≤ z_j/a_j` for the
    // maximizing `j < k` since `a_j < a_k`) and cannot price a served
    // buyer out (`z_j ≤ v_j ≤ v_k` by valuation monotonicity), so the DP
    // value is preserved exactly.
    let mut run = 0.0f64;
    for z in &mut prices {
        run = run.max(*z);
        *z = run;
    }

    let achieved = revenue(&prices, problem)?;
    #[cfg(debug_assertions)]
    {
        let served_mass: f64 = prices
            .iter()
            .zip(pts)
            .map(|(&z, p)| if z <= p.v { p.b } else { 0.0 })
            .sum();
        let objective = achieved + bonus * served_mass;
        debug_assert!(
            (objective - opt[0][m - 1]).abs() <= 1e-9 * (1.0 + objective.abs()),
            "reconstructed objective {objective} disagrees with DP value {}",
            opt[0][m - 1]
        );
    }
    Ok(DpSolution {
        prices,
        revenue: achieved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{affordability_ratio, satisfies_relaxed_constraints};
    use crate::problem::RevenueProblem;

    #[test]
    fn figure5_example_matches_hand_computation() {
        // Worked through Lemma 11/12 by hand: prices (100, 150, 225, 300),
        // revenue 0.25·(100+150+225+300) = 193.75.
        let problem = RevenueProblem::figure5_example();
        let sol = solve_revenue_dp(&problem).unwrap();
        assert_eq!(sol.prices, vec![100.0, 150.0, 225.0, 300.0]);
        assert!((sol.revenue - 193.75).abs() < 1e-9);
    }

    #[test]
    fn solution_is_relaxed_feasible() {
        let problem = RevenueProblem::figure5_example();
        let sol = solve_revenue_dp(&problem).unwrap();
        assert!(satisfies_relaxed_constraints(
            &sol.prices,
            &problem.parameters(),
            1e-9
        ));
    }

    #[test]
    fn single_point_takes_valuation() {
        let problem = RevenueProblem::from_slices(&[2.0], &[3.0], &[50.0]).unwrap();
        let sol = solve_revenue_dp(&problem).unwrap();
        assert_eq!(sol.prices, vec![50.0]);
        assert_eq!(sol.revenue, 150.0);
    }

    #[test]
    fn zero_valuations_give_zero_revenue() {
        let problem = RevenueProblem::from_slices(&[1.0, 2.0], &[1.0, 1.0], &[0.0, 0.0]).unwrap();
        let sol = solve_revenue_dp(&problem).unwrap();
        assert_eq!(sol.revenue, 0.0);
        assert!(sol.prices.iter().all(|&z| z == 0.0));
    }

    #[test]
    fn linear_valuations_are_fully_extracted() {
        // v_j = c·a_j is itself relaxed-feasible: the DP extracts it all.
        let a = [1.0, 2.0, 3.0, 4.0];
        let v: Vec<f64> = a.iter().map(|x| 10.0 * x).collect();
        let problem = RevenueProblem::from_slices(&a, &[1.0; 4], &v).unwrap();
        let sol = solve_revenue_dp(&problem).unwrap();
        assert_eq!(sol.prices, v);
        assert!((sol.revenue - 100.0).abs() < 1e-9);
    }

    #[test]
    fn concave_valuations_are_fully_extracted() {
        // A concave valuation curve has decreasing unit values, so pricing
        // at valuation is feasible (§6.2: "a concave function is also a
        // subadditive function and thus MBP can match exactly the value
        // curve").
        let a = [1.0, 2.0, 3.0, 4.0];
        let v = [40.0, 70.0, 90.0, 100.0]; // v/a = 40, 35, 30, 25 decreasing
        let problem = RevenueProblem::from_slices(&a, &[1.0; 4], &v).unwrap();
        let sol = solve_revenue_dp(&problem).unwrap();
        assert_eq!(sol.prices, v.to_vec());
        assert!((sol.revenue - 300.0).abs() < 1e-9);
    }

    #[test]
    fn dp_is_optimal_versus_exhaustive_grid_search() {
        // Tiny instances, exhaustively search relaxed-feasible price grids.
        let instances = vec![
            RevenueProblem::from_slices(&[1.0, 2.0, 3.0], &[1.0, 2.0, 1.0], &[4.0, 5.0, 9.0])
                .unwrap(),
            RevenueProblem::from_slices(&[1.0, 2.0, 3.0], &[1.0, 1.0, 1.0], &[2.0, 8.0, 9.0])
                .unwrap(),
            RevenueProblem::from_slices(&[1.0, 3.0, 4.0], &[0.5, 1.0, 2.0], &[3.0, 3.0, 12.0])
                .unwrap(),
        ];
        for problem in instances {
            let sol = solve_revenue_dp(&problem).unwrap();
            // Exhaustive: prices from a fine grid 0..=max_v step 0.25.
            let a = problem.parameters();
            let vmax = problem.valuations().last().copied().unwrap();
            let steps = (vmax / 0.25) as usize + 1;
            let grid: Vec<f64> = (0..=steps).map(|i| i as f64 * 0.25).collect();
            let mut best = 0.0f64;
            for &z1 in &grid {
                for &z2 in &grid {
                    for &z3 in &grid {
                        let z = [z1, z2, z3];
                        if satisfies_relaxed_constraints(&z, &a, 1e-12) {
                            let r = revenue(&z, &problem).unwrap();
                            best = best.max(r);
                        }
                    }
                }
            }
            assert!(
                sol.revenue >= best - 1e-9,
                "dp {} below grid optimum {} for {:?}",
                sol.revenue,
                best,
                problem
            );
        }
    }

    #[test]
    fn dp_beats_or_matches_any_constant_price() {
        let problem = RevenueProblem::figure5_example();
        let sol = solve_revenue_dp(&problem).unwrap();
        for &v in &problem.valuations() {
            let constant = vec![v; problem.len()];
            let r = revenue(&constant, &problem).unwrap();
            assert!(sol.revenue >= r - 1e-9, "constant {v} beats DP");
        }
    }

    #[test]
    fn affordability_of_dp_solution_is_full_on_figure5() {
        // On Figure 5 the DP prices every point at or below its valuation.
        let problem = RevenueProblem::figure5_example();
        let sol = solve_revenue_dp(&problem).unwrap();
        let aff = affordability_ratio(&sol.prices, &problem).unwrap();
        assert_eq!(aff, 1.0);
    }

    #[test]
    fn skipped_points_stay_monotone_under_zero_demand_masses() {
        // Regression: with zero demand at some points (common for
        // empirical demand curves where nobody quoted a menu point), the
        // DP skips them, and the raw skip reconstruction priced them at
        // the next point's unit price — which can dip below the previous
        // capped price and break the `z` non-decreasing constraint. The
        // instance is lifted from a live closed-loop simulation run.
        let a = [
            1.0, 7.6, 14.2, 20.8, 27.4, 34.0, 40.6, 47.2, 53.8, 60.4, 67.0, 73.6, 80.2, 86.8, 93.4,
            100.0,
        ];
        let b = [
            0.0, 0.0, 0.0, 0.0, 52.0, 45.0, 59.0, 0.0, 86.0, 83.0, 91.0, 0.0, 0.0, 30.0, 44.0, 30.0,
        ];
        let v = [
            5.26, 39.98, 50.41, 57.79, 58.80, 60.78, 64.69, 71.71, 71.71, 85.49, 85.49, 85.49,
            85.49, 85.49, 94.11, 102.67,
        ];
        let problem = RevenueProblem::from_slices(&a, &b, &v).unwrap();
        let sol = solve_revenue_dp(&problem).unwrap();
        assert!(
            sol.prices.windows(2).all(|w| w[0] <= w[1]),
            "prices must be non-decreasing: {:?}",
            sol.prices
        );
        assert!(satisfies_relaxed_constraints(&sol.prices, &a, 1e-9));
    }

    #[test]
    fn large_instance_runs_fast_and_feasible() {
        // 400 points: O(n²) must stay well under a second.
        let n = 400;
        let a: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        let v: Vec<f64> = a.iter().map(|x| 10.0 * x.sqrt()).collect(); // concave
        let b = vec![1.0; n];
        let problem = RevenueProblem::from_slices(&a, &b, &v).unwrap();
        let sol = solve_revenue_dp(&problem).unwrap();
        assert!(satisfies_relaxed_constraints(&sol.prices, &a, 1e-6));
        // Concave curve: full extraction.
        let total: f64 = v.iter().sum();
        assert!((sol.revenue - total).abs() < 1e-6 * total);
    }
}
