//! Error type for the revenue optimizer.

use std::fmt;

/// Errors produced by the `nimbus-optim` crate.
#[derive(Debug)]
pub enum OptimError {
    /// A problem instance had no points.
    EmptyProblem,
    /// A point's field was invalid.
    InvalidPoint {
        /// Index of the offending point (after sorting by `a`).
        index: usize,
        /// Which field failed validation.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Two points share the same inverse-NCP coordinate.
    DuplicateParameter {
        /// The duplicated `a` value.
        a: f64,
    },
    /// The revenue DP requires valuations monotone non-decreasing in `a`
    /// (the paper's standing assumption in §5.3); the instance violates it.
    NonMonotoneValuations {
        /// Index where `v` decreased.
        index: usize,
    },
    /// The brute-force solver refuses instances that would blow up.
    TooLarge {
        /// Number of points supplied.
        n: usize,
        /// The solver's hard limit.
        limit: usize,
    },
    /// The inputs could not be scaled to a common integer grid for the
    /// exact covering DP.
    NotGridRational,
    /// Error-domain market research could not be transformed onto the
    /// inverse-NCP grid (non-finite values, negative or identically zero
    /// demand).
    DegenerateResearch {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Length mismatch between prices and problem points.
    LengthMismatch {
        /// Number of prices supplied.
        prices: usize,
        /// Number of points in the problem.
        points: usize,
    },
    /// Underlying core error.
    Core(nimbus_core::CoreError),
}

impl fmt::Display for OptimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimError::EmptyProblem => write!(f, "problem has no price points"),
            OptimError::InvalidPoint {
                index,
                field,
                value,
            } => write!(f, "invalid {field} = {value} at point {index}"),
            OptimError::DuplicateParameter { a } => {
                write!(f, "duplicate inverse-NCP parameter {a}")
            }
            OptimError::NonMonotoneValuations { index } => write!(
                f,
                "valuations must be non-decreasing in the inverse NCP; violated at index {index}"
            ),
            OptimError::TooLarge { n, limit } => {
                write!(f, "brute-force solver limited to {limit} points, got {n}")
            }
            OptimError::NotGridRational => write!(
                f,
                "points cannot be scaled to a common integer grid for exact covering"
            ),
            OptimError::DegenerateResearch { reason } => {
                write!(f, "degenerate market research: {reason}")
            }
            OptimError::LengthMismatch { prices, points } => {
                write!(f, "{prices} prices supplied for {points} points")
            }
            OptimError::Core(e) => write!(f, "core error: {e}"),
        }
    }
}

impl std::error::Error for OptimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptimError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nimbus_core::CoreError> for OptimError {
    fn from(e: nimbus_core::CoreError) -> Self {
        OptimError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(OptimError::EmptyProblem.to_string().contains("no price"));
        assert!(OptimError::TooLarge { n: 30, limit: 24 }
            .to_string()
            .contains("24"));
        assert!(OptimError::NonMonotoneValuations { index: 2 }
            .to_string()
            .contains("index 2"));
    }
}
