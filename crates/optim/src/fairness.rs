//! Revenue ↔ fairness (affordability) trade-off — the future-work item the
//! paper closes with (§6.3: "there is still room to improve fairness. …
//! we leave a formal study of trade-off between revenue and fairness to
//! future work").
//!
//! Fairness here is the §6.2 **affordability ratio**: the demand-weighted
//! fraction of buyer groups who can afford their desired version. Pure
//! revenue maximization sometimes prices low-valuation groups out (the
//! `Skip` branch of Algorithm 1); a seller may prefer to give up a little
//! revenue to serve more of the market.
//!
//! The implementation is a **Lagrangian sweep** over the generalized DP of
//! [`crate::dp::solve_revenue_dp_with_sale_bonus`]: a per-sale bonus `λ`
//! rewards serving a group regardless of price, so as `λ` grows the optimal
//! policy serves (weakly) more groups. Each sweep point is an *exact*
//! optimizer of `revenue + λ·served_mass` under the relaxed arbitrage-free
//! constraints, so the resulting `(revenue, affordability)` pairs lie on
//! the Pareto frontier of that scalarization.

use crate::dp::solve_revenue_dp_with_sale_bonus;
use crate::objective::{affordability_ratio, revenue};
use crate::problem::RevenueProblem;
use crate::{OptimError, Result};

/// One point on the revenue↔affordability frontier.
#[derive(Debug, Clone)]
pub struct FrontierPoint {
    /// The Lagrange multiplier (per-sale bonus) that produced this point.
    pub lambda: f64,
    /// Prices at the problem's points.
    pub prices: Vec<f64>,
    /// Revenue of those prices.
    pub revenue: f64,
    /// Affordability ratio of those prices.
    pub affordability: f64,
}

/// Sweeps the Lagrangian frontier for the given multipliers (sorted
/// ascending internally). Returns one exact DP solution per `λ`.
pub fn fairness_frontier(problem: &RevenueProblem, lambdas: &[f64]) -> Result<Vec<FrontierPoint>> {
    if lambdas.is_empty() {
        return Err(OptimError::EmptyProblem);
    }
    let mut ls: Vec<f64> = lambdas.to_vec();
    ls.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = Vec::with_capacity(ls.len());
    for lambda in ls {
        if !(lambda >= 0.0 && lambda.is_finite()) {
            return Err(OptimError::InvalidPoint {
                index: 0,
                field: "lambda",
                value: lambda,
            });
        }
        let sol = solve_revenue_dp_with_sale_bonus(problem, lambda)?;
        let aff = affordability_ratio(&sol.prices, problem)?;
        out.push(FrontierPoint {
            lambda,
            prices: sol.prices,
            revenue: sol.revenue,
            affordability: aff,
        });
    }
    Ok(out)
}

/// Maximizes revenue subject to an affordability floor `τ ∈ [0, 1]`, by
/// bisection on the Lagrange multiplier.
///
/// Returns the cheapest-multiplier frontier point whose affordability is at
/// least `τ`. A floor of `τ = 1` is always achievable: with a large enough
/// bonus every group is served (any group can be served at price ≤ its
/// valuation without violating the relaxed constraints, since scaling the
/// whole price curve down preserves them).
pub fn maximize_revenue_with_affordability_floor(
    problem: &RevenueProblem,
    tau: f64,
) -> Result<FrontierPoint> {
    if !(0.0..=1.0).contains(&tau) {
        return Err(OptimError::InvalidPoint {
            index: 0,
            field: "tau",
            value: tau,
        });
    }
    let base = solve_revenue_dp_with_sale_bonus(problem, 0.0)?;
    let base_aff = affordability_ratio(&base.prices, problem)?;
    if base_aff >= tau {
        return Ok(FrontierPoint {
            lambda: 0.0,
            revenue: base.revenue,
            affordability: base_aff,
            prices: base.prices,
        });
    }
    // Upper bound: a bonus exceeding the largest valuation always makes
    // serving every group optimal.
    let mut lo = 0.0f64;
    let mut hi = problem.valuations().last().copied().unwrap_or(1.0).max(1.0) * 4.0;
    let mut best: Option<FrontierPoint> = None;
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        let sol = solve_revenue_dp_with_sale_bonus(problem, mid)?;
        let aff = affordability_ratio(&sol.prices, problem)?;
        if aff >= tau {
            let rev = revenue(&sol.prices, problem)?;
            best = Some(FrontierPoint {
                lambda: mid,
                prices: sol.prices,
                revenue: rev,
                affordability: aff,
            });
            hi = mid;
        } else {
            lo = mid;
        }
    }
    match best {
        Some(p) => Ok(p),
        None => {
            // Fall back to the largest multiplier (maximum affordability the
            // scalarization can reach).
            let sol = solve_revenue_dp_with_sale_bonus(problem, hi)?;
            let aff = affordability_ratio(&sol.prices, problem)?;
            Ok(FrontierPoint {
                lambda: hi,
                revenue: revenue(&sol.prices, problem)?,
                affordability: aff,
                prices: sol.prices,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::satisfies_relaxed_constraints;

    /// Convex-valued instance where pure revenue maximization prices the
    /// low end out.
    fn skewed_problem() -> RevenueProblem {
        RevenueProblem::from_slices(
            &[1.0, 2.0, 3.0, 4.0, 5.0],
            &[1.0; 5],
            &[1.0, 2.0, 4.0, 30.0, 100.0],
        )
        .unwrap()
    }

    #[test]
    fn zero_lambda_recovers_plain_dp() {
        let p = RevenueProblem::figure5_example();
        let frontier = fairness_frontier(&p, &[0.0]).unwrap();
        let plain = crate::dp::solve_revenue_dp(&p).unwrap();
        assert_eq!(frontier[0].prices, plain.prices);
        assert_eq!(frontier[0].revenue, plain.revenue);
    }

    #[test]
    fn larger_lambda_weakly_increases_affordability() {
        let p = skewed_problem();
        let frontier = fairness_frontier(&p, &[0.0, 0.5, 2.0, 10.0, 100.0]).unwrap();
        for w in frontier.windows(2) {
            assert!(
                w[1].affordability >= w[0].affordability - 1e-9,
                "affordability dropped: {:?} -> {:?}",
                (w[0].lambda, w[0].affordability),
                (w[1].lambda, w[1].affordability)
            );
            assert!(
                w[1].revenue <= w[0].revenue + 1e-9,
                "revenue rose with lambda: {:?} -> {:?}",
                (w[0].lambda, w[0].revenue),
                (w[1].lambda, w[1].revenue)
            );
        }
        // The sweep actually moves: pure revenue skips someone, big lambda
        // serves everyone.
        assert!(frontier[0].affordability < 1.0);
        assert!(frontier.last().unwrap().affordability == 1.0);
    }

    #[test]
    fn frontier_prices_stay_arbitrage_free() {
        let p = skewed_problem();
        let a = p.parameters();
        for point in fairness_frontier(&p, &[0.0, 1.0, 10.0]).unwrap() {
            assert!(
                satisfies_relaxed_constraints(&point.prices, &a, 1e-9),
                "λ = {}: {:?}",
                point.lambda,
                point.prices
            );
        }
    }

    #[test]
    fn affordability_floor_is_met_with_minimal_revenue_loss() {
        let p = skewed_problem();
        let unconstrained = crate::dp::solve_revenue_dp(&p).unwrap();
        let base_aff = affordability_ratio(&unconstrained.prices, &p).unwrap();
        assert!(base_aff < 1.0, "test needs a binding constraint");

        let constrained = maximize_revenue_with_affordability_floor(&p, 1.0).unwrap();
        assert!(constrained.affordability >= 1.0 - 1e-9);
        assert!(constrained.revenue <= unconstrained.revenue + 1e-9);
        // Serving everyone still earns something.
        assert!(constrained.revenue > 0.0);
    }

    #[test]
    fn trivial_floor_returns_unconstrained_solution() {
        let p = RevenueProblem::figure5_example();
        let sol = maximize_revenue_with_affordability_floor(&p, 0.0).unwrap();
        assert_eq!(sol.lambda, 0.0);
        let plain = crate::dp::solve_revenue_dp(&p).unwrap();
        assert_eq!(sol.prices, plain.prices);
    }

    #[test]
    fn rejects_bad_inputs() {
        let p = skewed_problem();
        assert!(fairness_frontier(&p, &[]).is_err());
        assert!(fairness_frontier(&p, &[-1.0]).is_err());
        assert!(fairness_frontier(&p, &[f64::NAN]).is_err());
        assert!(maximize_revenue_with_affordability_floor(&p, 1.5).is_err());
        assert!(maximize_revenue_with_affordability_floor(&p, -0.1).is_err());
    }

    #[test]
    fn figure5_frontier_shape() {
        // On Figure 5 pure revenue already serves everyone, so the frontier
        // is flat.
        let p = RevenueProblem::figure5_example();
        let frontier = fairness_frontier(&p, &[0.0, 10.0, 100.0]).unwrap();
        for point in &frontier {
            assert_eq!(point.affordability, 1.0);
            assert!((point.revenue - 193.75).abs() < 1e-9);
        }
    }
}
