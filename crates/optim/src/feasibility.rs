//! The SUBADDITIVE INTERPOLATION decision problem (Definition 6).
//!
//! *Given points `(a_j, P_j)`, does a positive, monotone, subadditive
//! function `p` with `p(a_j) = P_j` exist?* Theorem 7 proves this coNP-hard
//! in general via a reduction from UNBOUNDED SUBSET-SUM; for grid-rational
//! inputs (all `a_j` on a common decimal grid — every instance in the
//! paper's experiments) it is decided exactly here in pseudo-polynomial
//! time via the *min-cost closure* characterization used inside the
//! theorem's own proof:
//!
//! Let `µ(x) = min { Σ k_j P_j : k_j ∈ ℕ, Σ k_j a_j ≥ x }` (min-cost
//! unbounded covering, which is automatically positive, monotone and
//! subadditive, and satisfies `µ(a_j) ≤ P_j`). An interpolant exists iff
//! `µ(a_j) ≥ P_j` for every `j` — in which case `µ` itself interpolates.

use crate::milp::{integer_units, min_cost_covering};
use crate::problem::InterpolationProblem;
use crate::Result;

/// Decides SUBADDITIVE INTERPOLATION for grid-rational instances.
///
/// Returns `Ok(true)` iff some positive monotone subadditive function passes
/// through every `(a_j, P_j)`. Errors with
/// [`crate::OptimError::NotGridRational`] when the `a_j` cannot be scaled to
/// a common integer grid.
pub fn subadditive_interpolation_feasible(problem: &InterpolationProblem) -> Result<bool> {
    let a = problem.parameters();
    let targets = problem.targets();
    let units = integer_units(&a)?;
    let max_units = *units.iter().max().expect("non-empty problem");
    let items: Vec<(usize, f64)> = units.iter().copied().zip(targets.iter().copied()).collect();
    let closure = min_cost_covering(&items, max_units);
    for (&u, &p) in units.iter().zip(&targets) {
        // µ(a_j) ≤ P_j always (the point covers itself); strict < means some
        // combination undercuts the target and no interpolant exists.
        if closure[u] < p - 1e-9 * p.max(1.0) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// UNBOUNDED SUBSET-SUM: can `target` be written as `Σ k_i w_i` with
/// non-negative integers `k_i`? This is the NP-hard problem Theorem 7
/// reduces from; exposed for the reduction round-trip tests.
pub fn unbounded_subset_sum(weights: &[u64], target: u64) -> bool {
    if target == 0 {
        return true;
    }
    let mut reachable = vec![false; (target + 1) as usize];
    reachable[0] = true;
    for t in 1..=target {
        for &w in weights {
            if w != 0 && w <= t && reachable[(t - w) as usize] {
                reachable[t as usize] = true;
                break;
            }
        }
    }
    reachable[target as usize]
}

/// Builds the Theorem 7 reduction instance: weights `w_1 < … < w_n < K`
/// become points `(w_j, w_j)` plus the probe point `(K, K + 1/2)`. The
/// interpolation is feasible iff **no** unbounded subset sum hits `K`.
pub fn theorem7_reduction(weights: &[u64], k: u64) -> Result<InterpolationProblem> {
    let mut pts: Vec<(f64, f64)> = weights.iter().map(|&w| (w as f64, w as f64)).collect();
    pts.push((k as f64, k as f64 + 0.5));
    InterpolationProblem::new(pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_points_are_feasible() {
        // P_j = a_j is the subadditive function p(x) = x restricted to the
        // grid: always feasible.
        let p = InterpolationProblem::new(vec![(1.0, 1.0), (2.0, 2.0), (5.0, 5.0)]).unwrap();
        assert!(subadditive_interpolation_feasible(&p).unwrap());
    }

    #[test]
    fn superadditive_points_are_infeasible() {
        // P(2) = 5 > 2·P(1): two copies of the 1-point undercut it.
        let p = InterpolationProblem::new(vec![(1.0, 2.0), (2.0, 5.0)]).unwrap();
        assert!(!subadditive_interpolation_feasible(&p).unwrap());
    }

    #[test]
    fn boundary_subadditive_points_are_feasible() {
        // P(2) = exactly 2·P(1): feasible (subadditivity is non-strict).
        let p = InterpolationProblem::new(vec![(1.0, 2.0), (2.0, 4.0)]).unwrap();
        assert!(subadditive_interpolation_feasible(&p).unwrap());
    }

    #[test]
    fn decreasing_prices_are_infeasible() {
        // Monotonicity violated: the cheap accurate point undercuts the
        // expensive coarse one through the covering (a=3 covers a=2).
        let p = InterpolationProblem::new(vec![(2.0, 10.0), (3.0, 4.0)]).unwrap();
        assert!(!subadditive_interpolation_feasible(&p).unwrap());
    }

    #[test]
    fn unbounded_subset_sum_basics() {
        assert!(unbounded_subset_sum(&[3, 5], 8));
        assert!(unbounded_subset_sum(&[3, 5], 9));
        assert!(unbounded_subset_sum(&[3, 5], 0));
        assert!(!unbounded_subset_sum(&[3, 5], 4));
        assert!(!unbounded_subset_sum(&[3, 5], 7));
        assert!(!unbounded_subset_sum(&[2, 4], 5));
        assert!(!unbounded_subset_sum(&[], 3));
    }

    #[test]
    fn theorem7_reduction_round_trip() {
        // Feasible interpolation ⟺ no subset sum equals K.
        let cases: Vec<(Vec<u64>, u64)> = vec![
            (vec![3, 5], 7),  // no sum = 7 → feasible
            (vec![3, 5], 8),  // 3+5 = 8 → infeasible
            (vec![2, 4], 9),  // parity blocks 9 → feasible
            (vec![2, 3], 12), // 4·3 or 6·2 → infeasible
        ];
        for (weights, k) in cases {
            let has_sum = unbounded_subset_sum(&weights, k);
            let problem = theorem7_reduction(&weights, k).unwrap();
            let feasible = subadditive_interpolation_feasible(&problem).unwrap();
            assert_eq!(
                feasible, !has_sum,
                "weights {weights:?}, K={k}: sum={has_sum}, feasible={feasible}"
            );
        }
    }

    #[test]
    fn irrational_grid_is_rejected() {
        let p =
            InterpolationProblem::new(vec![(std::f64::consts::SQRT_2, 1.0), (2.0, 2.0)]).unwrap();
        assert!(subadditive_interpolation_feasible(&p).is_err());
    }

    #[test]
    fn single_point_always_feasible() {
        let p = InterpolationProblem::new(vec![(3.0, 42.0)]).unwrap();
        assert!(subadditive_interpolation_feasible(&p).unwrap());
    }
}
