//! Price interpolation under the relaxed constraints (Section 5's first
//! scenario).
//!
//! Given target prices `P_j` at parameters `a_j`, find relaxed-feasible
//! prices `z` (non-negative, non-decreasing, unit price non-increasing)
//! closest to the targets:
//!
//! * `T²_PI` — minimize `Σ (z_j − P_j)²`. The feasible set is an
//!   intersection of three closed convex cones, so the exact Euclidean
//!   projection is computed by **Dykstra's alternating projections**, with
//!   each cone projection an `O(n)` pool-adjacent-violators (PAV) pass:
//!   the monotone cone directly, the unit-price cone after the substitution
//!   `u_j = z_j/a_j` (weights `a_j²`), and the non-negative orthant by
//!   clamping.
//! * `T∞_PI` — minimize `Σ |z_j − P_j|`. Non-smooth; solved by projected
//!   subgradient descent with a decaying step, keeping the best feasible
//!   iterate. Proposition 2 still bounds the loss of the relaxation itself.

use crate::objective::{satisfies_relaxed_constraints, tpi_l1};
use crate::problem::InterpolationProblem;
use crate::Result;
use nimbus_core::isotonic::{isotonic_decreasing, isotonic_increasing};

/// Tolerance on Dykstra's fixed-point iteration.
const DYKSTRA_TOL: f64 = 1e-11;
/// Iteration cap for Dykstra (each sweep is `O(n)`).
const DYKSTRA_MAX_SWEEPS: usize = 5_000;

/// Exact Euclidean projection of `targets` onto the relaxed-feasible set
/// `{z ≥ 0, z non-decreasing, z_j/a_j non-increasing}` via Dykstra.
///
/// This solves the `T²_PI` price-interpolation problem (5) exactly: for a
/// least-squares objective, maximizing `−Σ(z_j − P_j)²` over a convex set is
/// the projection of `P` onto that set.
pub fn project_relaxed_feasible(parameters: &[f64], targets: &[f64]) -> Vec<f64> {
    assert_eq!(parameters.len(), targets.len());
    let n = targets.len();
    if n == 0 {
        return Vec::new();
    }
    let unit_weights: Vec<f64> = vec![1.0; n];
    let a2: Vec<f64> = parameters.iter().map(|a| a * a).collect();

    let mut z: Vec<f64> = targets.to_vec();
    // Dykstra correction terms, one per constraint set.
    let mut inc1 = vec![0.0; n];
    let mut inc2 = vec![0.0; n];
    let mut inc3 = vec![0.0; n];

    for _ in 0..DYKSTRA_MAX_SWEEPS {
        let before = z.clone();

        // Set 1: monotone non-decreasing cone.
        let y1: Vec<f64> = z.iter().zip(&inc1).map(|(z, c)| z + c).collect();
        let p1 = isotonic_increasing(&y1, &unit_weights);
        for i in 0..n {
            inc1[i] = y1[i] - p1[i];
        }
        z = p1;

        // Set 2: unit price non-increasing; substitute u = z/a with
        // weights a² so the projection stays Euclidean in z.
        let y2: Vec<f64> = z.iter().zip(&inc2).map(|(z, c)| z + c).collect();
        let u: Vec<f64> = y2.iter().zip(parameters).map(|(z, a)| z / a).collect();
        let pu = isotonic_decreasing(&u, &a2);
        let p2: Vec<f64> = pu.iter().zip(parameters).map(|(u, a)| u * a).collect();
        for i in 0..n {
            inc2[i] = y2[i] - p2[i];
        }
        z = p2;

        // Set 3: non-negative orthant.
        let y3: Vec<f64> = z.iter().zip(&inc3).map(|(z, c)| z + c).collect();
        let p3: Vec<f64> = y3.iter().map(|v| v.max(0.0)).collect();
        for i in 0..n {
            inc3[i] = y3[i] - p3[i];
        }
        z = p3;

        let delta: f64 = z
            .iter()
            .zip(&before)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        if delta < DYKSTRA_TOL {
            break;
        }
    }
    // Snap to exact feasibility: one final clean-up pass removes the
    // residual O(tol) constraint violations left by truncating Dykstra.
    let p1 = isotonic_increasing(&z, &unit_weights);
    let u: Vec<f64> = p1.iter().zip(parameters).map(|(z, a)| z / a).collect();
    let pu = isotonic_decreasing(&u, &a2);
    pu.iter()
        .zip(parameters)
        .map(|(u, a)| (u * a).max(0.0))
        .collect()
}

/// Solves the `T²_PI` interpolation problem exactly.
pub fn interpolate_l2(problem: &InterpolationProblem) -> Result<Vec<f64>> {
    Ok(project_relaxed_feasible(
        &problem.parameters(),
        &problem.targets(),
    ))
}

/// Approximately solves the `T∞_PI` (absolute loss) interpolation problem
/// via projected subgradient descent, returning the best feasible iterate.
pub fn interpolate_l1(problem: &InterpolationProblem, iterations: usize) -> Result<Vec<f64>> {
    let a = problem.parameters();
    let targets = problem.targets();
    // The L2 projection is an excellent warm start (and already feasible).
    let mut z = project_relaxed_feasible(&a, &targets);
    let mut best = z.clone();
    let mut best_obj = tpi_l1(&z, problem)?;

    let scale = targets.iter().cloned().fold(1.0_f64, f64::max);
    for t in 1..=iterations.max(1) {
        let step = 0.5 * scale / (t as f64).sqrt();
        // Subgradient of Σ|z − P| is sign(z − P).
        for (zi, pi) in z.iter_mut().zip(&targets) {
            let g = (*zi - pi).signum();
            *zi -= step * g;
        }
        z = project_relaxed_feasible(&a, &z);
        let obj = tpi_l1(&z, problem)?;
        if obj > best_obj {
            best_obj = obj;
            best = z.clone();
        }
    }
    debug_assert!(satisfies_relaxed_constraints(&best, &a, 1e-7));
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::tpi_l2;

    #[test]
    fn feasible_targets_are_unchanged() {
        // Already monotone with decreasing unit price.
        let a = vec![1.0, 2.0, 4.0];
        let p = vec![10.0, 16.0, 24.0];
        let z = project_relaxed_feasible(&a, &p);
        for (zi, pi) in z.iter().zip(&p) {
            assert!((zi - pi).abs() < 1e-8, "{z:?}");
        }
    }

    #[test]
    fn projection_is_feasible() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let p = vec![5.0, 30.0, 20.0, 100.0]; // wildly infeasible
        let z = project_relaxed_feasible(&a, &p);
        assert!(satisfies_relaxed_constraints(&z, &a, 1e-8), "{z:?}");
    }

    #[test]
    fn projection_optimality_via_perturbation() {
        // The projection minimizes Σ(z − P)² over the feasible cone; any
        // feasible perturbation must not do better.
        let a = vec![1.0, 2.0, 3.0];
        let targets = [1.0, 8.0, 6.0];
        let problem =
            InterpolationProblem::new(a.iter().copied().zip(targets.iter().copied()).collect())
                .unwrap();
        let z = interpolate_l2(&problem).unwrap();
        let base = -tpi_l2(&z, &problem).unwrap();

        // Random-ish feasible candidates from a coarse grid.
        let grid: Vec<f64> = (0..=40).map(|i| i as f64 * 0.25).collect();
        for &c1 in &grid {
            for &c2 in &grid {
                for &c3 in &grid {
                    let cand = [c1, c2, c3];
                    if satisfies_relaxed_constraints(&cand, &a, 1e-12) {
                        let obj = -tpi_l2(&cand, &problem).unwrap();
                        assert!(
                            obj >= base - 1e-6,
                            "grid point {cand:?} (obj {obj}) beats projection {z:?} (obj {base})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn negative_targets_clamp_to_zero() {
        let a = vec![1.0, 2.0];
        let p = vec![-5.0, -1.0];
        let z = project_relaxed_feasible(&a, &p);
        assert!(z.iter().all(|&v| v >= 0.0));
        assert!(z.iter().all(|&v| v.abs() < 1e-8));
    }

    #[test]
    fn l1_solution_is_feasible_and_not_worse_than_l2_start() {
        let problem =
            InterpolationProblem::new(vec![(1.0, 2.0), (2.0, 10.0), (3.0, 9.0), (4.0, 30.0)])
                .unwrap();
        let l2 = interpolate_l2(&problem).unwrap();
        let l1 = interpolate_l1(&problem, 200).unwrap();
        assert!(satisfies_relaxed_constraints(
            &l1,
            &problem.parameters(),
            1e-7
        ));
        let obj_l1 = tpi_l1(&l1, &problem).unwrap();
        let obj_l2_start = tpi_l1(&l2, &problem).unwrap();
        assert!(obj_l1 >= obj_l2_start - 1e-9);
    }

    #[test]
    fn empty_projection() {
        assert!(project_relaxed_feasible(&[], &[]).is_empty());
    }

    #[test]
    fn single_point_projection_clamps_only() {
        let z = project_relaxed_feasible(&[2.0], &[7.0]);
        assert_eq!(z, vec![7.0]);
        let z = project_relaxed_feasible(&[2.0], &[-3.0]);
        assert_eq!(z, vec![0.0]);
    }

    #[test]
    fn proposition2_additive_bound_holds() {
        // CSA + Σ T_i(0)/2 ≤ CMBP ≤ CSA for concave non-positive T_i.
        // For T², T(0) = -ΣP². The relaxed optimum (our projection) must be
        // within that additive bound of the unconstrained optimum (CSA ≤ 0
        // is bounded above by 0 = perfect interpolation).
        let problem = InterpolationProblem::new(vec![
            (1.0, 3.0),
            (2.0, 100.0), // hopelessly superadditive target
        ])
        .unwrap();
        let z = interpolate_l2(&problem).unwrap();
        let cmbp = tpi_l2(&z, &problem).unwrap();
        let sum_p2: f64 = problem.targets().iter().map(|p| p * p).sum();
        // CSA ≤ 0 always; bound: CMBP ≥ CSA - ΣP²/2 ≥ -ΣP²/2 ... the paper's
        // guarantee implies CMBP ≥ -ΣP² in the worst case; sanity-check the
        // projection is no worse than pricing everything at zero.
        assert!(cmbp >= -sum_p2);
    }
}
