//! Revenue optimization for model-based pricing (Section 5 of the paper).
//!
//! The seller fixes `n` versions of the model at inverse-NCP points
//! `a_1 < … < a_n`, with market research supplying per-version demand mass
//! `b_j` and buyer valuation `v_j`. The broker must choose prices
//! `z_j = p(a_j)` that extend to a *well-behaved* (arbitrage-free +
//! non-negative) pricing function while maximizing an objective.
//!
//! The exact problem (3) — maximize over all monotone subadditive `p` — is
//! coNP-hard (Theorem 7, by reduction from UNBOUNDED SUBSET-SUM). The paper
//! relaxes subadditivity to the *decreasing unit price* constraint
//! `z_j / a_j` non-increasing (program (5)), which loses at most a factor 2
//! in revenue (Proposition 3) and at most `Σ T_i(0)/2` additively for
//! concave interpolation objectives (Proposition 2). This crate implements:
//!
//! * [`problem`] — validated problem instances ([`problem::PricePoint`],
//!   [`problem::RevenueProblem`], [`problem::InterpolationProblem`]).
//! * [`objective`] — revenue `T_BV`, affordability ratio, and the
//!   interpolation objectives `T²_PI`, `T∞_PI`.
//! * [`dp`] — **Algorithm 1**: the `O(n²)` dynamic program solving the
//!   relaxed revenue problem exactly.
//! * [`milp`] — **Algorithm 2**: the exponential brute force over "active"
//!   valuation sets with an unbounded min-cost covering inner DP, computing
//!   the true subadditive optimum (the paper's MILP reference).
//! * [`baselines`] — the four §6.2 comparison strategies: Lin, MaxC, MedC,
//!   OptC.
//! * [`interpolation`] — price interpolation under the relaxed constraints:
//!   exact `T²_PI` via Dykstra's alternating projections between isotonic
//!   cones (PAV inside), and a projected-subgradient `T∞_PI` solver.
//! * [`feasibility`] — the SUBADDITIVE INTERPOLATION decision problem
//!   (Definition 6), decided exactly for grid-rational inputs via the
//!   min-cost-closure characterization used in Theorem 7's proof.
//! * [`fairness`] — the revenue↔affordability trade-off the paper leaves
//!   as future work, solved exactly per scalarization by a Lagrangian
//!   per-sale bonus inside the same `O(n²)` DP.

pub mod baselines;
pub mod dp;
pub mod error;
pub mod fairness;
pub mod feasibility;
pub mod interpolation;
pub mod milp;
pub mod objective;
pub mod problem;

pub use baselines::{Baseline, BaselineKind};
pub use dp::{solve_revenue_dp, solve_revenue_dp_with_sale_bonus};
pub use error::OptimError;
pub use fairness::{fairness_frontier, maximize_revenue_with_affordability_floor, FrontierPoint};
pub use milp::solve_revenue_brute_force;
pub use objective::{affordability_ratio, revenue, tpi_l1, tpi_l2};
pub use problem::{InterpolationProblem, PricePoint, RevenueProblem};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, OptimError>;
