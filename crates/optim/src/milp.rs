//! Algorithm 2: the exponential brute force for the exact subadditive
//! optimum (the paper's "MILP" reference solver).
//!
//! The exact revenue problem (3) asks for the best monotone **subadditive**
//! pricing — coNP-hard in general (Theorem 7). For the small instances of
//! Figures 5, 9, 10, 13 and 14 the paper solves it by brute force
//! (Appendix C): enumerate every *active set* `A` of points that are priced
//! exactly at their valuations; the tightest monotone subadditive function
//! consistent with those caps prices every point at its **min-cost
//! unbounded covering**
//!
//! ```text
//! p_A(a_j) = min { Σ_{w∈A} k_w·v_w  :  k_w ∈ ℕ,  Σ_{w∈A} k_w·a_w ≥ a_j }
//! ```
//!
//! and the best revenue over all `2^n − 1` active sets is the subadditive
//! optimum. The covering is computed exactly by scaling all `a_j` onto a
//! common integer grid (the experiments use integral inverse-NCP points),
//! then running an unbounded-knapsack DP.

use crate::objective::revenue;
use crate::problem::RevenueProblem;
use crate::{OptimError, Result};

/// Hard limit on the number of points the brute force will accept
/// (`2^20 ≈ 10⁶` subsets is already seconds of work — exactly the blow-up
/// Figures 9/10 measure).
pub const BRUTE_FORCE_LIMIT: usize = 20;

/// Maximum number of integer grid units for the covering DP.
const MAX_UNITS: usize = 4_000_000;

/// Output of the brute-force solver.
#[derive(Debug, Clone)]
pub struct BruteForceSolution {
    /// Optimal subadditive prices at the problem's points.
    pub prices: Vec<f64>,
    /// The achieved revenue.
    pub revenue: f64,
    /// Number of active sets examined (`2^n − 1`).
    pub subsets_examined: u64,
}

/// Scales the `a` values onto a common integer grid: returns per-point unit
/// counts. Tries decimal scales 1, 10, …, 10⁶.
pub(crate) fn integer_units(a: &[f64]) -> Result<Vec<usize>> {
    'scales: for exp in 0..=6u32 {
        let scale = 10f64.powi(exp as i32);
        let mut units = Vec::with_capacity(a.len());
        for &x in a {
            let scaled = x * scale;
            let rounded = scaled.round();
            if (scaled - rounded).abs() > 1e-9 * scale.max(1.0) || rounded < 1.0 {
                continue 'scales;
            }
            if rounded > MAX_UNITS as f64 {
                return Err(OptimError::NotGridRational);
            }
            units.push(rounded as usize);
        }
        return Ok(units);
    }
    Err(OptimError::NotGridRational)
}

/// Min-cost unbounded covering: `closure[u]` = cheapest way to accumulate at
/// least `u` units using items `(units_w, cost_w)` with unlimited copies.
/// `closure[0] = 0`; unreachable targets stay `+∞` (only possible with no
/// items).
pub(crate) fn min_cost_covering(items: &[(usize, f64)], max_units: usize) -> Vec<f64> {
    let mut dp = vec![f64::INFINITY; max_units + 1];
    dp[0] = 0.0;
    for u in 1..=max_units {
        for &(units, cost) in items {
            if units == 0 {
                continue;
            }
            let from = u.saturating_sub(units);
            if dp[from].is_finite() {
                let c = dp[from] + cost;
                if c < dp[u] {
                    dp[u] = c;
                }
            }
        }
    }
    dp
}

/// Solves the exact subadditive revenue problem by brute force (Algorithm 2).
pub fn solve_revenue_brute_force(problem: &RevenueProblem) -> Result<BruteForceSolution> {
    let pts = problem.points();
    let n = pts.len();
    if n > BRUTE_FORCE_LIMIT {
        return Err(OptimError::TooLarge {
            n,
            limit: BRUTE_FORCE_LIMIT,
        });
    }
    let units = integer_units(&problem.parameters())?;
    let max_units = *units.iter().max().expect("non-empty problem");

    let mut best_prices: Vec<f64> = vec![0.0; n];
    let mut best_revenue = 0.0f64;
    let total_masks: u64 = 1u64 << n;

    for mask in 1..total_masks {
        // Items of this active set: (grid units, valuation price).
        let items: Vec<(usize, f64)> = (0..n)
            .filter(|j| mask & (1 << j) != 0)
            .map(|j| (units[j], pts[j].v))
            .collect();
        let closure = min_cost_covering(&items, max_units);
        let prices: Vec<f64> = units.iter().map(|&u| closure[u]).collect();
        if prices.iter().any(|p| !p.is_finite()) {
            continue;
        }
        let r = revenue(&prices, problem)?;
        if r > best_revenue {
            best_revenue = r;
            best_prices = prices;
        }
    }

    Ok(BruteForceSolution {
        prices: best_prices,
        revenue: best_revenue,
        subsets_examined: total_masks - 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::solve_revenue_dp;
    use crate::problem::RevenueProblem;
    use nimbus_core::pricing::PiecewiseLinearPricing;
    use nimbus_core::{is_arbitrage_free_on_points, PricingFunction};

    #[test]
    fn integer_units_handles_decimals() {
        assert_eq!(integer_units(&[1.0, 2.0, 3.0]).unwrap(), vec![1, 2, 3]);
        assert_eq!(integer_units(&[0.5, 1.5]).unwrap(), vec![5, 15]);
        assert_eq!(integer_units(&[0.25, 1.0]).unwrap(), vec![25, 100]);
        assert!(integer_units(&[std::f64::consts::PI]).is_err());
    }

    #[test]
    fn covering_dp_basics() {
        // Items: 2 units @ 3, 3 units @ 4.
        let dp = min_cost_covering(&[(2, 3.0), (3, 4.0)], 7);
        assert_eq!(dp[0], 0.0);
        assert_eq!(dp[1], 3.0); // one 2-unit item overshoots to cover 1
        assert_eq!(dp[2], 3.0);
        assert_eq!(dp[3], 4.0);
        assert_eq!(dp[4], 6.0); // 2+2
        assert_eq!(dp[5], 7.0); // 2+3
        assert_eq!(dp[6], 8.0); // 3+3
        assert_eq!(dp[7], 10.0); // 2+2+3
                                 // Monotone non-decreasing.
        assert!(dp.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn figure5_brute_force_beats_dp_but_within_factor_two() {
        let problem = RevenueProblem::figure5_example();
        let bf = solve_revenue_brute_force(&problem).unwrap();
        let dp = solve_revenue_dp(&problem).unwrap();
        assert_eq!(bf.subsets_examined, 15);
        // Exact subadditive optimum on Figure 5: prices (100, 150, 250,
        // 300) with revenue 200 (p(3) ≤ p(1)+p(2), p(4) ≤ 2·p(2)).
        assert!(
            (bf.revenue - 200.0).abs() < 1e-9,
            "bf revenue {}",
            bf.revenue
        );
        assert_eq!(bf.prices, vec![100.0, 150.0, 250.0, 300.0]);
        // Proposition 3 sandwich: CSA/2 ≤ CMBP ≤ CSA.
        assert!(dp.revenue <= bf.revenue + 1e-9);
        assert!(dp.revenue >= bf.revenue / 2.0 - 1e-9);
    }

    #[test]
    fn brute_force_prices_are_arbitrage_free() {
        let problem = RevenueProblem::figure5_example();
        let bf = solve_revenue_brute_force(&problem).unwrap();
        let pl = PiecewiseLinearPricing::new(
            problem
                .parameters()
                .into_iter()
                .zip(bf.prices.iter().copied())
                .collect(),
        )
        .unwrap();
        // Check the interpolant numerically on a fine grid.
        let grid: Vec<f64> = (1..=80).map(|i| i as f64 * 0.05).collect();
        assert!(is_arbitrage_free_on_points(&pl, &grid, 1e-9).unwrap());
        let _ = pl.price(nimbus_core::InverseNcp::new(2.5).unwrap());
    }

    #[test]
    fn concave_valuations_bf_equals_dp() {
        // When the valuation curve itself is subadditive both solvers
        // extract everything — the empirical near-equality of §6.3.
        let a = [1.0, 2.0, 3.0, 4.0];
        let v = [40.0, 70.0, 90.0, 100.0];
        let problem = RevenueProblem::from_slices(&a, &[1.0; 4], &v).unwrap();
        let bf = solve_revenue_brute_force(&problem).unwrap();
        let dp = solve_revenue_dp(&problem).unwrap();
        assert!((bf.revenue - 300.0).abs() < 1e-9);
        assert!((dp.revenue - bf.revenue).abs() < 1e-9);
    }

    #[test]
    fn single_point() {
        let problem = RevenueProblem::from_slices(&[3.0], &[2.0], &[7.0]).unwrap();
        let bf = solve_revenue_brute_force(&problem).unwrap();
        assert_eq!(bf.prices, vec![7.0]);
        assert_eq!(bf.revenue, 14.0);
        assert_eq!(bf.subsets_examined, 1);
    }

    #[test]
    fn rejects_oversized_instances() {
        let n = BRUTE_FORCE_LIMIT + 1;
        let a: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        let v: Vec<f64> = a.iter().map(|x| x * 2.0).collect();
        let problem = RevenueProblem::from_slices(&a, &vec![1.0; n], &v).unwrap();
        assert!(matches!(
            solve_revenue_brute_force(&problem),
            Err(OptimError::TooLarge { .. })
        ));
    }

    #[test]
    fn dp_within_factor_two_on_many_random_instances() {
        // Proposition 3, verified across deterministic pseudo-random
        // instances with convex-ish valuation curves (the hard case).
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..25 {
            let n = 3 + (trial % 4);
            let a: Vec<f64> = (1..=n).map(|i| i as f64).collect();
            let mut v = Vec::with_capacity(n);
            let mut acc = 1.0 + next() * 10.0;
            for _ in 0..n {
                acc += next() * 30.0;
                v.push((acc * 4.0).round() / 4.0);
            }
            let b: Vec<f64> = (0..n)
                .map(|_| (next() * 4.0).round() / 4.0 + 0.25)
                .collect();
            let problem = RevenueProblem::from_slices(&a, &b, &v).unwrap();
            let dp = solve_revenue_dp(&problem).unwrap();
            let bf = solve_revenue_brute_force(&problem).unwrap();
            assert!(
                dp.revenue <= bf.revenue + 1e-9,
                "trial {trial}: dp {} exceeds exact optimum {}",
                dp.revenue,
                bf.revenue
            );
            assert!(
                dp.revenue >= bf.revenue / 2.0 - 1e-9,
                "trial {trial}: dp {} below half of optimum {}",
                dp.revenue,
                bf.revenue
            );
        }
    }
}
