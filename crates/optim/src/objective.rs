//! Objective functions: revenue `T_BV`, affordability, and the
//! interpolation objectives `T²_PI` / `T∞_PI`.

use crate::problem::{InterpolationProblem, RevenueProblem};
use crate::{OptimError, Result};

/// Relative tolerance on the "can afford" predicate `z ≤ v`.
///
/// Prices produced by reconstructing a line or piecewise interpolant can
/// exceed the intended valuation by a few ulps; without slack, a buyer
/// priced *exactly at* their valuation would spuriously walk away. The
/// paper's model has buyers purchase iff `p(a_j) ≤ v_j`, inclusive.
pub const AFFORD_EPS: f64 = 1e-9;

/// The purchase predicate `z ≤ v` with ulp slack.
pub fn affords(price: f64, valuation: f64) -> bool {
    price <= valuation + AFFORD_EPS * valuation.abs().max(1.0)
}

fn check_lengths(prices: &[f64], n: usize) -> Result<()> {
    if prices.len() != n {
        return Err(OptimError::LengthMismatch {
            prices: prices.len(),
            points: n,
        });
    }
    Ok(())
}

/// Revenue from buyer valuations: `T_BV(z) = Σ_j b_j · z_j · 1[z_j ≤ v_j]` —
/// buyers at point `j` pay `z_j` iff it does not exceed their valuation.
pub fn revenue(prices: &[f64], problem: &RevenueProblem) -> Result<f64> {
    check_lengths(prices, problem.len())?;
    Ok(prices
        .iter()
        .zip(problem.points())
        .map(|(&z, p)| if affords(z, p.v) { p.b * z } else { 0.0 })
        .sum())
}

/// Affordability ratio: the demand-weighted fraction of buyers who can
/// afford their version, `Σ b_j 1[z_j ≤ v_j] / Σ b_j` (§6.2's metric).
pub fn affordability_ratio(prices: &[f64], problem: &RevenueProblem) -> Result<f64> {
    check_lengths(prices, problem.len())?;
    let total = problem.total_demand();
    // nimbus-audit: allow(float-eq) — exact-zero guard on a sum of non-negative masses
    if total == 0.0 {
        return Ok(0.0);
    }
    let affordable: f64 = prices
        .iter()
        .zip(problem.points())
        .map(|(&z, p)| if affords(z, p.v) { p.b } else { 0.0 })
        .sum();
    Ok(affordable / total)
}

/// `T²_PI(z) = −Σ (z_j − P_j)²` — the squared-loss interpolation objective.
pub fn tpi_l2(prices: &[f64], problem: &InterpolationProblem) -> Result<f64> {
    check_lengths(prices, problem.len())?;
    Ok(-prices
        .iter()
        .zip(problem.points())
        .map(|(&z, &(_, p))| (z - p) * (z - p))
        .sum::<f64>())
}

/// `T∞_PI(z) = −Σ |z_j − P_j|` — the absolute-loss interpolation objective.
pub fn tpi_l1(prices: &[f64], problem: &InterpolationProblem) -> Result<f64> {
    check_lengths(prices, problem.len())?;
    Ok(-prices
        .iter()
        .zip(problem.points())
        .map(|(&z, &(_, p))| (z - p).abs())
        .sum::<f64>())
}

/// Verifies the relaxed program (5) constraints on a candidate price vector:
/// `z_j ≥ 0`, `z` non-decreasing, and unit prices `z_j/a_j` non-increasing.
pub fn satisfies_relaxed_constraints(prices: &[f64], parameters: &[f64], tol: f64) -> bool {
    if prices.len() != parameters.len() || prices.is_empty() {
        return false;
    }
    if prices.iter().any(|&z| !(z.is_finite() && z >= -tol)) {
        return false;
    }
    let monotone = prices.windows(2).all(|w| w[1] >= w[0] - tol);
    let units: Vec<f64> = prices
        .iter()
        .zip(parameters)
        .map(|(&z, &a)| z / a)
        .collect();
    let unit_dec = units.windows(2).all(|w| w[1] <= w[0] + tol);
    monotone && unit_dec
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> RevenueProblem {
        RevenueProblem::figure5_example()
    }

    #[test]
    fn revenue_counts_only_affordable() {
        let p = problem();
        // All at valuation: 0.25 * (100 + 150 + 280 + 350) = 220.
        let r = revenue(&[100.0, 150.0, 280.0, 350.0], &p).unwrap();
        assert!((r - 220.0).abs() < 1e-12);
        // Overpricing the last point loses its revenue entirely.
        let r = revenue(&[100.0, 150.0, 280.0, 351.0], &p).unwrap();
        assert!((r - 132.5).abs() < 1e-12);
    }

    #[test]
    fn zero_prices_give_zero_revenue_full_affordability() {
        let p = problem();
        assert_eq!(revenue(&[0.0; 4], &p).unwrap(), 0.0);
        assert_eq!(affordability_ratio(&[0.0; 4], &p).unwrap(), 1.0);
    }

    #[test]
    fn affordability_fractions() {
        let p = problem();
        let a = affordability_ratio(&[100.0, 200.0, 280.0, 400.0], &p).unwrap();
        // Points 1 and 3 affordable of 4 equal masses.
        assert!((a - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_demand_gives_zero_affordability() {
        let p = RevenueProblem::from_slices(&[1.0, 2.0], &[0.0, 0.0], &[1.0, 2.0]).unwrap();
        assert_eq!(affordability_ratio(&[0.5, 0.5], &p).unwrap(), 0.0);
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let p = problem();
        assert!(revenue(&[1.0], &p).is_err());
        assert!(affordability_ratio(&[1.0], &p).is_err());
    }

    #[test]
    fn interpolation_objectives() {
        let ip = InterpolationProblem::new(vec![(1.0, 10.0), (2.0, 20.0)]).unwrap();
        assert_eq!(tpi_l2(&[10.0, 20.0], &ip).unwrap(), 0.0);
        assert_eq!(tpi_l2(&[11.0, 18.0], &ip).unwrap(), -(1.0 + 4.0));
        assert_eq!(tpi_l1(&[11.0, 18.0], &ip).unwrap(), -3.0);
        assert!(tpi_l2(&[1.0], &ip).is_err());
    }

    #[test]
    fn relaxed_constraint_checker() {
        let a = [1.0, 2.0, 4.0];
        assert!(satisfies_relaxed_constraints(&[1.0, 1.5, 2.0], &a, 1e-12));
        // Unit price increases 1 → 1.25.
        assert!(!satisfies_relaxed_constraints(&[1.0, 2.5, 2.6], &a, 1e-12));
        // Price decreases.
        assert!(!satisfies_relaxed_constraints(&[2.0, 1.0, 1.0], &a, 1e-12));
        // Negative price.
        assert!(!satisfies_relaxed_constraints(&[-1.0, 0.0, 0.0], &a, 1e-12));
        // Length mismatch.
        assert!(!satisfies_relaxed_constraints(&[1.0], &a, 1e-12));
    }
}
