//! Problem instances for the revenue optimizer.

use crate::{OptimError, Result};

/// One version on sale: the inverse-NCP parameter `a`, the demand mass `b`
/// ("how many buyers want exactly this version") and the buyer valuation `v`
/// ("the most those buyers will pay").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PricePoint {
    /// Inverse NCP `a > 0` of this version (larger = more accurate).
    pub a: f64,
    /// Non-negative demand mass `b`.
    pub b: f64,
    /// Non-negative buyer valuation `v`.
    pub v: f64,
}

impl PricePoint {
    /// Creates a validated point.
    pub fn new(a: f64, b: f64, v: f64) -> Result<Self> {
        if !(a.is_finite() && a > 0.0) {
            return Err(OptimError::InvalidPoint {
                index: 0,
                field: "a",
                value: a,
            });
        }
        if !(b.is_finite() && b >= 0.0) {
            return Err(OptimError::InvalidPoint {
                index: 0,
                field: "b",
                value: b,
            });
        }
        if !(v.is_finite() && v >= 0.0) {
            return Err(OptimError::InvalidPoint {
                index: 0,
                field: "v",
                value: v,
            });
        }
        Ok(PricePoint { a, b, v })
    }
}

/// A revenue-maximization instance: points sorted by `a`, with valuations
/// non-decreasing in `a` (the §5.3 assumption: buyers value accuracy).
#[derive(Debug, Clone, PartialEq)]
pub struct RevenueProblem {
    points: Vec<PricePoint>,
}

impl RevenueProblem {
    /// Builds a problem from unsorted points. Sorts by `a`, then validates
    /// fields, uniqueness of `a` and monotonicity of `v`.
    pub fn new(mut points: Vec<PricePoint>) -> Result<Self> {
        if points.is_empty() {
            return Err(OptimError::EmptyProblem);
        }
        points.sort_by(|p, q| p.a.partial_cmp(&q.a).unwrap_or(std::cmp::Ordering::Equal));
        for (i, p) in points.iter().enumerate() {
            if !(p.a.is_finite() && p.a > 0.0) {
                return Err(OptimError::InvalidPoint {
                    index: i,
                    field: "a",
                    value: p.a,
                });
            }
            if !(p.b.is_finite() && p.b >= 0.0) {
                return Err(OptimError::InvalidPoint {
                    index: i,
                    field: "b",
                    value: p.b,
                });
            }
            if !(p.v.is_finite() && p.v >= 0.0) {
                return Err(OptimError::InvalidPoint {
                    index: i,
                    field: "v",
                    value: p.v,
                });
            }
            if i > 0 {
                if points[i - 1].a == p.a {
                    return Err(OptimError::DuplicateParameter { a: p.a });
                }
                if points[i - 1].v > p.v {
                    return Err(OptimError::NonMonotoneValuations { index: i });
                }
            }
        }
        Ok(RevenueProblem { points })
    }

    /// Builds a problem from parallel `(a, b, v)` slices.
    pub fn from_slices(a: &[f64], b: &[f64], v: &[f64]) -> Result<Self> {
        if a.len() != b.len() || a.len() != v.len() {
            return Err(OptimError::LengthMismatch {
                prices: b.len(),
                points: a.len(),
            });
        }
        let points = a
            .iter()
            .zip(b)
            .zip(v)
            .map(|((&a, &b), &v)| PricePoint { a, b, v })
            .collect();
        RevenueProblem::new(points)
    }

    /// The points, sorted by `a`.
    pub fn points(&self) -> &[PricePoint] {
        &self.points
    }

    /// Number of versions.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the problem is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `a` coordinates.
    pub fn parameters(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.a).collect()
    }

    /// The valuations.
    pub fn valuations(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.v).collect()
    }

    /// The demand masses.
    pub fn demands(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.b).collect()
    }

    /// Total demand mass `Σ b_j`.
    pub fn total_demand(&self) -> f64 {
        self.points.iter().map(|p| p.b).sum()
    }

    /// The paper's Figure 5 worked example: `a = (1,2,3,4)`, `b = 0.25`
    /// each, `v = (100, 150, 280, 350)`.
    pub fn figure5_example() -> RevenueProblem {
        RevenueProblem::from_slices(
            &[1.0, 2.0, 3.0, 4.0],
            &[0.25; 4],
            &[100.0, 150.0, 280.0, 350.0],
        )
        .expect("the Figure 5 instance is valid")
    }
}

/// A price-interpolation instance: target prices `P_j` at parameters `a_j`
/// (Section 5's first scenario).
#[derive(Debug, Clone, PartialEq)]
pub struct InterpolationProblem {
    /// `(a_j, P_j)` pairs sorted by `a_j`.
    points: Vec<(f64, f64)>,
}

impl InterpolationProblem {
    /// Builds an instance; sorts by `a` and validates positivity of `a`,
    /// non-negativity/finiteness of `P` and uniqueness of `a`.
    pub fn new(mut points: Vec<(f64, f64)>) -> Result<Self> {
        if points.is_empty() {
            return Err(OptimError::EmptyProblem);
        }
        points.sort_by(|p, q| p.0.partial_cmp(&q.0).unwrap_or(std::cmp::Ordering::Equal));
        for (i, &(a, p)) in points.iter().enumerate() {
            if !(a.is_finite() && a > 0.0) {
                return Err(OptimError::InvalidPoint {
                    index: i,
                    field: "a",
                    value: a,
                });
            }
            if !(p.is_finite() && p >= 0.0) {
                return Err(OptimError::InvalidPoint {
                    index: i,
                    field: "P",
                    value: p,
                });
            }
            if i > 0 && points[i - 1].0 == a {
                return Err(OptimError::DuplicateParameter { a });
            }
        }
        Ok(InterpolationProblem { points })
    }

    /// The `(a_j, P_j)` pairs sorted by `a_j`.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of target points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the instance is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `a_j` coordinates.
    pub fn parameters(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.0).collect()
    }

    /// The target prices `P_j`.
    pub fn targets(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_and_validates() {
        let p = RevenueProblem::from_slices(&[2.0, 1.0], &[1.0, 1.0], &[20.0, 10.0]).unwrap();
        assert_eq!(p.parameters(), vec![1.0, 2.0]);
        assert_eq!(p.valuations(), vec![10.0, 20.0]);
    }

    #[test]
    fn rejects_invalid_fields() {
        assert!(RevenueProblem::from_slices(&[0.0], &[1.0], &[1.0]).is_err());
        assert!(RevenueProblem::from_slices(&[1.0], &[-1.0], &[1.0]).is_err());
        assert!(RevenueProblem::from_slices(&[1.0], &[1.0], &[-1.0]).is_err());
        assert!(RevenueProblem::from_slices(&[1.0], &[1.0], &[f64::NAN]).is_err());
        assert!(RevenueProblem::new(vec![]).is_err());
    }

    #[test]
    fn rejects_duplicates_and_non_monotone_valuations() {
        assert!(matches!(
            RevenueProblem::from_slices(&[1.0, 1.0], &[1.0, 1.0], &[1.0, 2.0]),
            Err(OptimError::DuplicateParameter { .. })
        ));
        assert!(matches!(
            RevenueProblem::from_slices(&[1.0, 2.0], &[1.0, 1.0], &[5.0, 3.0]),
            Err(OptimError::NonMonotoneValuations { index: 1 })
        ));
    }

    #[test]
    fn mismatched_slices_rejected() {
        assert!(RevenueProblem::from_slices(&[1.0, 2.0], &[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn figure5_instance() {
        let p = RevenueProblem::figure5_example();
        assert_eq!(p.len(), 4);
        assert_eq!(p.total_demand(), 1.0);
        assert_eq!(p.points()[2].v, 280.0);
    }

    #[test]
    fn price_point_validation() {
        assert!(PricePoint::new(1.0, 0.5, 10.0).is_ok());
        assert!(PricePoint::new(-1.0, 0.5, 10.0).is_err());
        assert!(PricePoint::new(1.0, f64::INFINITY, 10.0).is_err());
    }

    #[test]
    fn interpolation_problem_sorts() {
        let p = InterpolationProblem::new(vec![(3.0, 30.0), (1.0, 10.0)]).unwrap();
        assert_eq!(p.parameters(), vec![1.0, 3.0]);
        assert_eq!(p.targets(), vec![10.0, 30.0]);
        assert!(InterpolationProblem::new(vec![]).is_err());
        assert!(InterpolationProblem::new(vec![(1.0, -2.0)]).is_err());
        assert!(InterpolationProblem::new(vec![(1.0, 1.0), (1.0, 2.0)]).is_err());
    }
}
