//! Problem instances for the revenue optimizer.

use crate::{OptimError, Result};
use nimbus_core::isotonic::isotonic_increasing;
use nimbus_core::ErrorCurve;

/// One version on sale: the inverse-NCP parameter `a`, the demand mass `b`
/// ("how many buyers want exactly this version") and the buyer valuation `v`
/// ("the most those buyers will pay").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PricePoint {
    /// Inverse NCP `a > 0` of this version (larger = more accurate).
    pub a: f64,
    /// Non-negative demand mass `b`.
    pub b: f64,
    /// Non-negative buyer valuation `v`.
    pub v: f64,
}

impl PricePoint {
    /// Creates a validated point.
    pub fn new(a: f64, b: f64, v: f64) -> Result<Self> {
        if !(a.is_finite() && a > 0.0) {
            return Err(OptimError::InvalidPoint {
                index: 0,
                field: "a",
                value: a,
            });
        }
        if !(b.is_finite() && b >= 0.0) {
            return Err(OptimError::InvalidPoint {
                index: 0,
                field: "b",
                value: b,
            });
        }
        if !(v.is_finite() && v >= 0.0) {
            return Err(OptimError::InvalidPoint {
                index: 0,
                field: "v",
                value: v,
            });
        }
        Ok(PricePoint { a, b, v })
    }
}

/// A revenue-maximization instance: points sorted by `a`, with valuations
/// non-decreasing in `a` (the §5.3 assumption: buyers value accuracy).
#[derive(Debug, Clone, PartialEq)]
pub struct RevenueProblem {
    points: Vec<PricePoint>,
}

impl RevenueProblem {
    /// Builds a problem from unsorted points. Sorts by `a`, then validates
    /// fields, uniqueness of `a` and monotonicity of `v`.
    pub fn new(mut points: Vec<PricePoint>) -> Result<Self> {
        if points.is_empty() {
            return Err(OptimError::EmptyProblem);
        }
        points.sort_by(|p, q| p.a.partial_cmp(&q.a).unwrap_or(std::cmp::Ordering::Equal));
        for (i, p) in points.iter().enumerate() {
            if !(p.a.is_finite() && p.a > 0.0) {
                return Err(OptimError::InvalidPoint {
                    index: i,
                    field: "a",
                    value: p.a,
                });
            }
            if !(p.b.is_finite() && p.b >= 0.0) {
                return Err(OptimError::InvalidPoint {
                    index: i,
                    field: "b",
                    value: p.b,
                });
            }
            if !(p.v.is_finite() && p.v >= 0.0) {
                return Err(OptimError::InvalidPoint {
                    index: i,
                    field: "v",
                    value: p.v,
                });
            }
            if i > 0 {
                if points[i - 1].a == p.a {
                    return Err(OptimError::DuplicateParameter { a: p.a });
                }
                if points[i - 1].v > p.v {
                    return Err(OptimError::NonMonotoneValuations { index: i });
                }
            }
        }
        Ok(RevenueProblem { points })
    }

    /// Builds a problem from parallel `(a, b, v)` slices.
    pub fn from_slices(a: &[f64], b: &[f64], v: &[f64]) -> Result<Self> {
        if a.len() != b.len() || a.len() != v.len() {
            return Err(OptimError::LengthMismatch {
                prices: b.len(),
                points: a.len(),
            });
        }
        let points = a
            .iter()
            .zip(b)
            .zip(v)
            .map(|((&a, &b), &v)| PricePoint { a, b, v })
            .collect();
        RevenueProblem::new(points)
    }

    /// The points, sorted by `a`.
    pub fn points(&self) -> &[PricePoint] {
        &self.points
    }

    /// Number of versions.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the problem is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `a` coordinates.
    pub fn parameters(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.a).collect()
    }

    /// The valuations.
    pub fn valuations(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.v).collect()
    }

    /// The demand masses.
    pub fn demands(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.b).collect()
    }

    /// Total demand mass `Σ b_j`.
    pub fn total_demand(&self) -> f64 {
        self.points.iter().map(|p| p.b).sum()
    }

    /// Builds a revenue problem from **error-domain** market research by
    /// pushing it through an error-transformation curve (Figure 2(a)→(b)).
    ///
    /// Market research speaks in buyer-facing error levels ("a model with 5%
    /// misclassification is worth $80"); the optimizer works over `x = 1/δ`.
    /// The monotone `error_curve` for the buyer's metric `ε` — analytic for
    /// the square loss, Monte-Carlo estimated otherwise — bridges the two:
    /// its δ grid becomes the version menu, and at each version
    ///
    /// ```text
    /// v(x) = value_of_error( E[ε(h^{1/x})] ),   b(x) ∝ demand_of_error( … )
    /// ```
    ///
    /// Because the expected error is non-increasing in `x` and buyer value
    /// is non-increasing in error, the transformed valuations come out
    /// non-decreasing in `x` — the §5.3 assumption [`RevenueProblem::new`]
    /// enforces. Monte-Carlo plateaus and wiggly research functions can
    /// still produce local violations; a final isotonic pass repairs them.
    /// Demand is normalized to sum to 1 across the menu.
    pub fn on_phi_grid<FV, FD>(
        error_curve: &ErrorCurve,
        value_of_error: FV,
        demand_of_error: FD,
    ) -> Result<Self>
    where
        FV: Fn(f64) -> f64,
        FD: Fn(f64) -> f64,
    {
        if error_curve.is_empty() {
            return Err(OptimError::DegenerateResearch {
                reason: "error curve has no points",
            });
        }
        // Error-curve points are sorted by δ ascending = x descending; walk
        // in reverse for ascending x.
        let mut points: Vec<(f64, f64, f64)> = Vec::with_capacity(error_curve.len());
        for ep in error_curve.points().iter().rev() {
            let v = value_of_error(ep.smoothed_error);
            let b = demand_of_error(ep.smoothed_error);
            if !(v.is_finite() && b.is_finite() && b >= 0.0) {
                return Err(OptimError::DegenerateResearch {
                    reason: "research curves must return finite values and non-negative demand",
                });
            }
            points.push((ep.inverse, v.max(0.0), b));
        }
        let total_demand: f64 = points.iter().map(|p| p.2).sum();
        if total_demand <= 0.0 {
            return Err(OptimError::DegenerateResearch {
                reason: "demand curve is identically zero on the menu",
            });
        }
        // Repair any non-monotonicity in the transformed valuations (e.g.
        // from a slightly non-monotone research function).
        let values: Vec<f64> = points.iter().map(|p| p.1).collect();
        let weights = vec![1.0; values.len()];
        let monotone_values = isotonic_increasing(&values, &weights);

        let price_points: Vec<PricePoint> = points
            .iter()
            .zip(monotone_values)
            .map(|(&(a, _, b), v)| PricePoint {
                a,
                b: b / total_demand,
                v,
            })
            .collect();
        RevenueProblem::new(price_points)
    }

    /// The paper's Figure 5 worked example: `a = (1,2,3,4)`, `b = 0.25`
    /// each, `v = (100, 150, 280, 350)`.
    pub fn figure5_example() -> RevenueProblem {
        RevenueProblem::from_slices(
            &[1.0, 2.0, 3.0, 4.0],
            &[0.25; 4],
            &[100.0, 150.0, 280.0, 350.0],
        )
        .expect("the Figure 5 instance is valid")
    }
}

/// A price-interpolation instance: target prices `P_j` at parameters `a_j`
/// (Section 5's first scenario).
#[derive(Debug, Clone, PartialEq)]
pub struct InterpolationProblem {
    /// `(a_j, P_j)` pairs sorted by `a_j`.
    points: Vec<(f64, f64)>,
}

impl InterpolationProblem {
    /// Builds an instance; sorts by `a` and validates positivity of `a`,
    /// non-negativity/finiteness of `P` and uniqueness of `a`.
    pub fn new(mut points: Vec<(f64, f64)>) -> Result<Self> {
        if points.is_empty() {
            return Err(OptimError::EmptyProblem);
        }
        points.sort_by(|p, q| p.0.partial_cmp(&q.0).unwrap_or(std::cmp::Ordering::Equal));
        for (i, &(a, p)) in points.iter().enumerate() {
            if !(a.is_finite() && a > 0.0) {
                return Err(OptimError::InvalidPoint {
                    index: i,
                    field: "a",
                    value: a,
                });
            }
            if !(p.is_finite() && p >= 0.0) {
                return Err(OptimError::InvalidPoint {
                    index: i,
                    field: "P",
                    value: p,
                });
            }
            if i > 0 && points[i - 1].0 == a {
                return Err(OptimError::DuplicateParameter { a });
            }
        }
        Ok(InterpolationProblem { points })
    }

    /// The `(a_j, P_j)` pairs sorted by `a_j`.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of target points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the instance is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `a_j` coordinates.
    pub fn parameters(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.0).collect()
    }

    /// The target prices `P_j`.
    pub fn targets(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_and_validates() {
        let p = RevenueProblem::from_slices(&[2.0, 1.0], &[1.0, 1.0], &[20.0, 10.0]).unwrap();
        assert_eq!(p.parameters(), vec![1.0, 2.0]);
        assert_eq!(p.valuations(), vec![10.0, 20.0]);
    }

    #[test]
    fn rejects_invalid_fields() {
        assert!(RevenueProblem::from_slices(&[0.0], &[1.0], &[1.0]).is_err());
        assert!(RevenueProblem::from_slices(&[1.0], &[-1.0], &[1.0]).is_err());
        assert!(RevenueProblem::from_slices(&[1.0], &[1.0], &[-1.0]).is_err());
        assert!(RevenueProblem::from_slices(&[1.0], &[1.0], &[f64::NAN]).is_err());
        assert!(RevenueProblem::new(vec![]).is_err());
    }

    #[test]
    fn rejects_duplicates_and_non_monotone_valuations() {
        assert!(matches!(
            RevenueProblem::from_slices(&[1.0, 1.0], &[1.0, 1.0], &[1.0, 2.0]),
            Err(OptimError::DuplicateParameter { .. })
        ));
        assert!(matches!(
            RevenueProblem::from_slices(&[1.0, 2.0], &[1.0, 1.0], &[5.0, 3.0]),
            Err(OptimError::NonMonotoneValuations { index: 1 })
        ));
    }

    #[test]
    fn mismatched_slices_rejected() {
        assert!(RevenueProblem::from_slices(&[1.0, 2.0], &[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn figure5_instance() {
        let p = RevenueProblem::figure5_example();
        assert_eq!(p.len(), 4);
        assert_eq!(p.total_demand(), 1.0);
        assert_eq!(p.points()[2].v, 280.0);
    }

    #[test]
    fn phi_grid_transforms_error_research() {
        // δ grid 0.05..1.0 → x grid 1..20, E[ε_s] = δ (Lemma 3).
        let deltas: Vec<nimbus_core::Ncp> = (1..=20)
            .map(|i| nimbus_core::Ncp::new(i as f64 * 0.05).unwrap())
            .collect();
        let curve = ErrorCurve::analytic_square_loss(&deltas).unwrap();
        let problem = RevenueProblem::on_phi_grid(&curve, |e| 100.0 * (1.0 - e), |_| 1.0).unwrap();
        assert_eq!(problem.len(), 20);
        let a = problem.parameters();
        assert!(a.windows(2).all(|w| w[1] > w[0]), "ascending x");
        let v = problem.valuations();
        assert!(v.windows(2).all(|w| w[1] >= w[0]), "monotone valuations");
        assert!((v.last().unwrap() - 95.0).abs() < 1e-9);
        assert!((problem.total_demand() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phi_grid_rejects_degenerate_research() {
        let deltas: Vec<nimbus_core::Ncp> = (1..=5)
            .map(|i| nimbus_core::Ncp::new(i as f64).unwrap())
            .collect();
        let curve = ErrorCurve::analytic_square_loss(&deltas).unwrap();
        assert!(matches!(
            RevenueProblem::on_phi_grid(&curve, |_| f64::NAN, |_| 1.0),
            Err(OptimError::DegenerateResearch { .. })
        ));
        assert!(RevenueProblem::on_phi_grid(&curve, |_| 1.0, |_| 0.0).is_err());
        assert!(RevenueProblem::on_phi_grid(&curve, |_| 1.0, |_| -1.0).is_err());
    }

    #[test]
    fn price_point_validation() {
        assert!(PricePoint::new(1.0, 0.5, 10.0).is_ok());
        assert!(PricePoint::new(-1.0, 0.5, 10.0).is_err());
        assert!(PricePoint::new(1.0, f64::INFINITY, 10.0).is_err());
    }

    #[test]
    fn interpolation_problem_sorts() {
        let p = InterpolationProblem::new(vec![(3.0, 30.0), (1.0, 10.0)]).unwrap();
        assert_eq!(p.parameters(), vec![1.0, 3.0]);
        assert_eq!(p.targets(), vec![10.0, 30.0]);
        assert!(InterpolationProblem::new(vec![]).is_err());
        assert!(InterpolationProblem::new(vec![(1.0, -2.0)]).is_err());
        assert!(InterpolationProblem::new(vec![(1.0, 1.0), (1.0, 2.0)]).is_err());
    }
}
