//! Property-based tests for the revenue optimizer beyond the cross-crate
//! suite: covering DP laws, fairness monotonicity, feasibility decisions.

use nimbus_optim::fairness::fairness_frontier;
use nimbus_optim::feasibility::{subadditive_interpolation_feasible, unbounded_subset_sum};
use nimbus_optim::interpolation::project_relaxed_feasible;
use nimbus_optim::objective::satisfies_relaxed_constraints;
use nimbus_optim::{
    solve_revenue_dp, solve_revenue_dp_with_sale_bonus, InterpolationProblem, RevenueProblem,
};
use proptest::prelude::*;

fn random_problem() -> impl Strategy<Value = RevenueProblem> {
    (2usize..8)
        .prop_flat_map(|n| {
            (
                prop::collection::vec(0.25..40.0f64, n),
                prop::collection::vec(0.25..3.0f64, n),
            )
        })
        .prop_map(|(incs, masses)| {
            let n = incs.len();
            let a: Vec<f64> = (1..=n).map(|i| i as f64).collect();
            let mut v = Vec::with_capacity(n);
            let mut acc = 0.0;
            for i in &incs {
                acc += i;
                v.push(acc);
            }
            RevenueProblem::from_slices(&a, &masses, &v).expect("valid")
        })
}

proptest! {
    #[test]
    fn dp_objective_is_monotone_in_bonus(problem in random_problem(), b1 in 0.0..5.0f64, b2 in 5.0..50.0f64) {
        // The generalized objective value (revenue + bonus·served) is
        // monotone in the bonus; affordability weakly increases.
        let s1 = solve_revenue_dp_with_sale_bonus(&problem, b1).unwrap();
        let s2 = solve_revenue_dp_with_sale_bonus(&problem, b2).unwrap();
        let aff = |prices: &[f64]| {
            nimbus_optim::affordability_ratio(prices, &problem).unwrap()
        };
        prop_assert!(aff(&s2.prices) >= aff(&s1.prices) - 1e-9);
        prop_assert!(s2.revenue <= s1.revenue + 1e-9, "revenue cannot rise with bonus");
    }

    #[test]
    fn frontier_is_pareto_ordered(problem in random_problem()) {
        let frontier = fairness_frontier(&problem, &[0.0, 1.0, 5.0, 25.0, 100.0]).unwrap();
        for w in frontier.windows(2) {
            prop_assert!(w[1].affordability >= w[0].affordability - 1e-9);
            prop_assert!(w[1].revenue <= w[0].revenue + 1e-9);
        }
        // Every frontier point is relaxed-feasible.
        let a = problem.parameters();
        for p in &frontier {
            prop_assert!(satisfies_relaxed_constraints(&p.prices, &a, 1e-9));
        }
    }

    #[test]
    fn projection_is_non_expansive(
        targets1 in prop::collection::vec(0.0..100.0f64, 2..12),
        shift in 0.0..10.0f64,
    ) {
        // Euclidean projections onto convex sets are 1-Lipschitz.
        let n = targets1.len();
        let a: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        let targets2: Vec<f64> = targets1.iter().map(|t| t + shift).collect();
        let p1 = project_relaxed_feasible(&a, &targets1);
        let p2 = project_relaxed_feasible(&a, &targets2);
        let dist_in: f64 = targets1
            .iter()
            .zip(&targets2)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        let dist_out: f64 = p1
            .iter()
            .zip(&p2)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        prop_assert!(dist_out <= dist_in + 1e-6, "projection expanded: {dist_out} > {dist_in}");
    }

    #[test]
    fn scaled_problems_scale_revenues(problem in random_problem(), scale in 0.5..4.0f64) {
        // Scaling all valuations scales the optimal revenue by the same
        // factor (the constraint cone is scale-invariant).
        let dp = solve_revenue_dp(&problem).unwrap();
        let scaled = RevenueProblem::from_slices(
            &problem.parameters(),
            &problem.demands(),
            &problem.valuations().iter().map(|v| v * scale).collect::<Vec<_>>(),
        ).unwrap();
        let dp_scaled = solve_revenue_dp(&scaled).unwrap();
        prop_assert!(
            (dp_scaled.revenue - scale * dp.revenue).abs() < 1e-6 * (1.0 + dp.revenue),
            "scaled {} vs expected {}",
            dp_scaled.revenue,
            scale * dp.revenue
        );
    }

    #[test]
    fn feasibility_matches_subset_sum_reduction(
        w1 in 2u64..8,
        w2 in 2u64..8,
        k in 9u64..30,
    ) {
        // Theorem 7 reduction as a property: interpolation through
        // {(w, w)} ∪ {(K, K + 1/2)} is feasible iff K is NOT an unbounded
        // subset sum of the weights.
        prop_assume!(w1 != w2 && w1 < k && w2 < k);
        let weights = vec![w1.min(w2), w1.max(w2)];
        let has_sum = unbounded_subset_sum(&weights, k);
        let problem = nimbus_optim::feasibility::theorem7_reduction(&weights, k).unwrap();
        let feasible = subadditive_interpolation_feasible(&problem).unwrap();
        prop_assert_eq!(feasible, !has_sum);
    }

    #[test]
    fn closure_interpolation_of_identity_is_feasible(
        a_values in prop::collection::vec(1u32..60, 1..8),
    ) {
        // P_j = c·a_j is always feasible for any positive c (p(x) = c·x).
        let mut xs: Vec<f64> = a_values.iter().map(|&v| v as f64).collect();
        xs.sort_by(|p, q| p.partial_cmp(q).unwrap());
        xs.dedup();
        let points: Vec<(f64, f64)> = xs.iter().map(|&x| (x, 2.5 * x)).collect();
        let problem = InterpolationProblem::new(points).unwrap();
        prop_assert!(subadditive_interpolation_feasible(&problem).unwrap());
    }
}
