//! Weighted discrete sampling.
//!
//! Buyer populations in the market simulation are drawn from the *demand
//! curve*: a distribution over inverse-NCP points. [`WeightedIndex`] turns a
//! demand curve's weights into an `O(log n)` sampler via a cumulative-sum
//! table and binary search.

use rand::Rng;

/// Samples indices `0..n` proportionally to non-negative weights.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

/// Errors constructing a [`WeightedIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedIndexError {
    /// The weight vector was empty.
    Empty,
    /// A weight was negative or non-finite.
    InvalidWeight {
        /// Index of the offending weight.
        index: usize,
    },
    /// All weights were zero.
    ZeroTotal,
}

impl std::fmt::Display for WeightedIndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightedIndexError::Empty => write!(f, "weight vector is empty"),
            WeightedIndexError::InvalidWeight { index } => {
                write!(f, "weight at index {index} is negative or non-finite")
            }
            WeightedIndexError::ZeroTotal => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedIndexError {}

impl WeightedIndex {
    /// Builds the sampler from raw weights.
    pub fn new(weights: &[f64]) -> Result<Self, WeightedIndexError> {
        if weights.is_empty() {
            return Err(WeightedIndexError::Empty);
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            if !(w.is_finite() && w >= 0.0) {
                return Err(WeightedIndexError::InvalidWeight { index: i });
            }
            total += w;
            cumulative.push(total);
        }
        if total <= 0.0 {
            return Err(WeightedIndexError::ZeroTotal);
        }
        Ok(WeightedIndex { cumulative, total })
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler has no buckets (never true for a constructed
    /// sampler; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Probability of bucket `i`.
    pub fn probability(&self, i: usize) -> f64 {
        let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        (self.cumulative[i] - prev) / self.total
    }

    /// Draws one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let target = rng.random::<f64>() * self.total;
        // partition_point returns the first index whose cumulative weight
        // exceeds the target, skipping zero-weight buckets by construction.
        let idx = self.cumulative.partition_point(|&c| c <= target);
        idx.min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(WeightedIndex::new(&[]), Err(WeightedIndexError::Empty));
        assert_eq!(
            WeightedIndex::new(&[1.0, -1.0]),
            Err(WeightedIndexError::InvalidWeight { index: 1 })
        );
        assert_eq!(
            WeightedIndex::new(&[1.0, f64::NAN]),
            Err(WeightedIndexError::InvalidWeight { index: 1 })
        );
        assert_eq!(
            WeightedIndex::new(&[0.0, 0.0]),
            Err(WeightedIndexError::ZeroTotal)
        );
    }

    // WeightedIndex carries f64 totals; equality comparisons above are on the
    // error enum only.
    impl PartialEq for WeightedIndex {
        fn eq(&self, other: &Self) -> bool {
            self.cumulative == other.cumulative
        }
    }

    #[test]
    fn probabilities_normalize() {
        let w = WeightedIndex::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let total: f64 = (0..4).map(|i| w.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((w.probability(3) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empirical_frequencies_match_weights() {
        let w = WeightedIndex::new(&[1.0, 0.0, 3.0]).unwrap();
        let mut rng = seeded_rng(6);
        let mut counts = [0usize; 3];
        let n = 200_000;
        for _ in 0..n {
            counts[w.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight bucket must never be drawn");
        let f0 = counts[0] as f64 / n as f64;
        let f2 = counts[2] as f64 / n as f64;
        assert!((f0 - 0.25).abs() < 0.01, "f0 {f0}");
        assert!((f2 - 0.75).abs() < 0.01, "f2 {f2}");
    }

    #[test]
    fn single_bucket_always_sampled() {
        let w = WeightedIndex::new(&[5.0]).unwrap();
        let mut rng = seeded_rng(1);
        for _ in 0..100 {
            assert_eq!(w.sample(&mut rng), 0);
        }
    }

    #[test]
    fn len_reports_buckets() {
        let w = WeightedIndex::new(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
    }
}
