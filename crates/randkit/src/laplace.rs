//! Laplace sampling via inverse-CDF.
//!
//! The paper notes (Example 2) that zero-mean Laplace noise is an alternative
//! unbiased mechanism for model perturbation, and the related work on pricing
//! private data (reference 17 in the paper) uses Laplacian noise; Nimbus therefore
//! ships a Laplace mechanism alongside the Gaussian one.

use rand::Rng;

/// A Laplace distribution `Laplace(mean, scale)` with density
/// `f(x) = exp(-|x - mean| / scale) / (2 scale)` and variance `2 scale²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    mean: f64,
    scale: f64,
}

impl Laplace {
    /// Creates a Laplace distribution. Returns `None` when `scale` is not a
    /// strictly positive finite number.
    pub fn new(mean: f64, scale: f64) -> Option<Self> {
        if scale > 0.0 && scale.is_finite() && mean.is_finite() {
            Some(Laplace { mean, scale })
        } else {
            None
        }
    }

    /// Creates the zero-mean Laplace distribution with the given **variance**
    /// (`scale = sqrt(variance / 2)`), matching how the noise control
    /// parameter is expressed in terms of variance in the paper.
    pub fn with_variance(variance: f64) -> Option<Self> {
        if variance > 0.0 && variance.is_finite() {
            Laplace::new(0.0, (variance / 2.0).sqrt())
        } else {
            None
        }
    }

    /// Location parameter.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Scale parameter `b`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Variance `2b²`.
    pub fn variance(&self) -> f64 {
        2.0 * self.scale * self.scale
    }

    /// Draws one variate by inverting the CDF: with `u ~ U(-1/2, 1/2)`,
    /// `x = mean - b·sign(u)·ln(1 - 2|u|)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let u: f64 = rng.random::<f64>() - 0.5;
            // Guard the measure-zero edge that would produce ln(0).
            if u.abs() < 0.5 {
                let signed = if u >= 0.0 { 1.0 } else { -1.0 };
                return self.mean - self.scale * signed * (1.0 - 2.0 * u.abs()).ln();
            }
        }
    }

    /// Fills `out` with i.i.d. variates.
    pub fn fill<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for o in out.iter_mut() {
            *o = self.sample(rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use crate::summary::RunningStats;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Laplace::new(0.0, 0.0).is_none());
        assert!(Laplace::new(0.0, -1.0).is_none());
        assert!(Laplace::new(0.0, f64::NAN).is_none());
        assert!(Laplace::new(f64::INFINITY, 1.0).is_none());
        assert!(Laplace::with_variance(0.0).is_none());
    }

    #[test]
    fn variance_parameterization() {
        let l = Laplace::with_variance(8.0).unwrap();
        assert!((l.variance() - 8.0).abs() < 1e-12);
        assert!((l.scale() - 2.0).abs() < 1e-12);
        assert_eq!(l.mean(), 0.0);
    }

    #[test]
    fn empirical_moments() {
        let l = Laplace::new(1.0, 2.0).unwrap();
        let mut rng = seeded_rng(13);
        let mut stats = RunningStats::new();
        for _ in 0..300_000 {
            stats.push(l.sample(&mut rng));
        }
        assert!((stats.mean() - 1.0).abs() < 0.02, "mean {}", stats.mean());
        assert!(
            (stats.variance() - 8.0).abs() < 0.2,
            "variance {}",
            stats.variance()
        );
    }

    #[test]
    fn zero_mean_is_symmetric() {
        let l = Laplace::with_variance(2.0).unwrap();
        let mut rng = seeded_rng(21);
        let n = 100_000;
        let positive = (0..n).filter(|_| l.sample(&mut rng) > 0.0).count();
        let frac = positive as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "positive fraction {frac}");
    }

    #[test]
    fn fill_length_and_determinism() {
        let l = Laplace::new(0.0, 1.0).unwrap();
        let mut a = vec![0.0; 16];
        let mut b = vec![0.0; 16];
        l.fill(&mut seeded_rng(4), &mut a);
        l.fill(&mut seeded_rng(4), &mut b);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.is_finite()));
    }
}
