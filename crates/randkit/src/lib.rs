//! Seedable random-distribution toolkit for Nimbus.
//!
//! The model-based pricing mechanism is *randomized*: the broker perturbs the
//! optimal model with Gaussian (or Laplace, or uniform) noise whose variance
//! is set by the noise control parameter. Reproducibility of experiments and
//! tests therefore requires full control over seeding, and the thin ML
//! ecosystem in Rust means the distributions themselves are implemented here
//! (Box–Muller normal, inverse-CDF Laplace, cumulative-weight discrete
//! sampling) on top of the `rand` crate's uniform bit source.
//!
//! Everything is deterministic given a seed: [`seeded_rng`] plus
//! [`split_stream`] give independent, reproducible random streams to each
//! component (dataset generation, mechanism sampling, buyer populations).

pub mod discrete;
pub mod laplace;
pub mod normal;
pub mod snapped;
pub mod summary;
pub mod uniform;

pub use discrete::WeightedIndex;
pub use laplace::Laplace;
pub use normal::StandardNormal;
pub use snapped::SnappedGaussian;
pub use summary::RunningStats;
pub use uniform::{uniform_in, uniform_symmetric};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG type used across Nimbus. `StdRng` is a platform-independent
/// generator, so seeds give identical streams on every machine — a
/// requirement for the experiment harness to be re-runnable.
pub type NimbusRng = StdRng;

/// Creates the workspace-standard RNG from a 64-bit seed.
pub fn seeded_rng(seed: u64) -> NimbusRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent child seed from a parent seed and a stream label.
///
/// This is a SplitMix64 finalizer over the combined value: cheap, stateless
/// and collision-resistant enough to hand each component (datasets,
/// mechanisms, buyers, Monte-Carlo repetitions) its own stream without any
/// cross-correlation in practice.
pub fn split_stream(parent_seed: u64, label: u64) -> u64 {
    let mut z = parent_seed ^ label.wrapping_mul(0x9e3779b97f4a7c15);
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_rng_is_reproducible() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn split_stream_is_deterministic_and_spreads() {
        assert_eq!(split_stream(7, 1), split_stream(7, 1));
        assert_ne!(split_stream(7, 1), split_stream(7, 2));
        assert_ne!(split_stream(7, 1), split_stream(8, 1));
        // Labels 0..n should give distinct seeds.
        let mut seen = std::collections::HashSet::new();
        for label in 0..1000u64 {
            assert!(seen.insert(split_stream(1234, label)));
        }
    }
}
