//! Gaussian sampling via the Box–Muller transform.
//!
//! This is the noise source of the paper's central mechanism `K_G`
//! (Section 4.1): `W_δ = N(0, (δ/d)·I_d)`. We implement the polar
//! (Marsaglia) form of Box–Muller, which avoids trig calls and caches the
//! second generated variate.

use rand::Rng;

/// A standard normal `N(0, 1)` sampler with a one-variate cache.
///
/// The polar Box–Muller method produces variates in pairs; the spare is kept
/// so that amortized cost is one uniform-pair rejection loop per two normal
/// samples.
#[derive(Debug, Clone, Default)]
pub struct StandardNormal {
    spare: Option<f64>,
}

impl StandardNormal {
    /// Creates a sampler with an empty cache.
    pub fn new() -> Self {
        StandardNormal { spare: None }
    }

    /// Draws one `N(0, 1)` variate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        loop {
            // u, v uniform on (-1, 1); accept when inside the unit disc.
            let u: f64 = rng.random::<f64>() * 2.0 - 1.0;
            let v: f64 = rng.random::<f64>() * 2.0 - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Draws one `N(mean, std_dev²)` variate. `std_dev` must be
    /// non-negative; a zero standard deviation returns `mean` exactly.
    pub fn sample_scaled<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.sample(rng)
    }

    /// Fills `out` with i.i.d. `N(0, std_dev²)` variates — the isotropic
    /// Gaussian vector `w ~ N(0, σ²·I_d)` used by the Gaussian mechanism.
    pub fn fill_isotropic<R: Rng + ?Sized>(&mut self, rng: &mut R, std_dev: f64, out: &mut [f64]) {
        for o in out.iter_mut() {
            *o = std_dev * self.sample(rng);
        }
    }

    /// Allocates and returns an isotropic Gaussian vector of length `d`.
    pub fn isotropic_vec<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        std_dev: f64,
        d: usize,
    ) -> Vec<f64> {
        let mut v = vec![0.0; d];
        self.fill_isotropic(rng, std_dev, &mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use crate::summary::RunningStats;

    #[test]
    fn moments_match_standard_normal() {
        let mut rng = seeded_rng(7);
        let mut sampler = StandardNormal::new();
        let mut stats = RunningStats::new();
        for _ in 0..200_000 {
            stats.push(sampler.sample(&mut rng));
        }
        assert!(stats.mean().abs() < 0.01, "mean {}", stats.mean());
        assert!(
            (stats.variance() - 1.0).abs() < 0.02,
            "var {}",
            stats.variance()
        );
    }

    #[test]
    fn scaled_moments() {
        let mut rng = seeded_rng(11);
        let mut sampler = StandardNormal::new();
        let mut stats = RunningStats::new();
        for _ in 0..200_000 {
            stats.push(sampler.sample_scaled(&mut rng, 3.0, 2.0));
        }
        assert!((stats.mean() - 3.0).abs() < 0.02);
        assert!((stats.variance() - 4.0).abs() < 0.08);
    }

    #[test]
    fn zero_std_returns_mean() {
        let mut rng = seeded_rng(1);
        let mut sampler = StandardNormal::new();
        assert_eq!(sampler.sample_scaled(&mut rng, 5.0, 0.0), 5.0);
    }

    #[test]
    fn isotropic_vector_norm_squared_expectation() {
        // E[‖w‖²] = d σ² for w ~ N(0, σ² I_d): this is exactly Lemma 3 of
        // the paper with σ² = δ/d, so the identity is load-bearing.
        let mut rng = seeded_rng(3);
        let mut sampler = StandardNormal::new();
        let d = 16;
        let sigma = 0.5;
        let mut mean_norm = 0.0;
        let reps = 20_000;
        for _ in 0..reps {
            let v = sampler.isotropic_vec(&mut rng, sigma, d);
            mean_norm += v.iter().map(|x| x * x).sum::<f64>();
        }
        mean_norm /= reps as f64;
        let expected = d as f64 * sigma * sigma;
        assert!(
            (mean_norm - expected).abs() < 0.05 * expected,
            "got {mean_norm}, expected {expected}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StandardNormal::new();
        let mut b = StandardNormal::new();
        let mut ra = seeded_rng(99);
        let mut rb = seeded_rng(99);
        for _ in 0..50 {
            assert_eq!(a.sample(&mut ra), b.sample(&mut rb));
        }
    }

    #[test]
    fn spare_cache_is_used() {
        // Two consecutive samples consume one uniform pair: verify both are
        // finite and distinct (the cached variate differs from the first).
        let mut rng = seeded_rng(5);
        let mut s = StandardNormal::new();
        let x = s.sample(&mut rng);
        assert!(s.spare.is_some());
        let y = s.sample(&mut rng);
        assert!(s.spare.is_none());
        assert!(x.is_finite() && y.is_finite());
        assert_ne!(x, y);
    }

    #[test]
    fn tail_probability_is_sane() {
        // P(|Z| > 3) ≈ 0.0027 for the standard normal.
        let mut rng = seeded_rng(17);
        let mut s = StandardNormal::new();
        let n = 100_000;
        let tail = (0..n).filter(|_| s.sample(&mut rng).abs() > 3.0).count();
        let frac = tail as f64 / n as f64;
        assert!(frac > 0.0005 && frac < 0.006, "tail fraction {frac}");
    }
}
