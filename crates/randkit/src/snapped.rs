//! Floating-point-safe "snapped" Gaussian sampler.
//!
//! The naive Box–Muller sampler in [`crate::normal`] computes `ln` and `cos`
//! on uniform floats. That is fine for simulation, but as a *privacy
//! mechanism* it is vulnerable to floating-point attacks (Mironov 2012): the
//! set of f64 values it can emit is a non-uniform, gap-ridden subset of the
//! reals, and an adversary who knows the gaps can distinguish neighbouring
//! inputs far better than the nominal guarantee allows.
//!
//! This module implements the standard fix: sample a *discrete* Gaussian over
//! an integer grid using only exact integer arithmetic (the rejection sampler
//! of Canonne–Kaplan–Steinke, "The Discrete Gaussian for Differential
//! Privacy", 2020), then scale by a public power-of-two grid step. Every
//! emitted value is an exact multiple of the dyadic grid step `γ = 2^k`,
//! clamped to a public support `[-C·γ, C·γ]`. No `exp`/`ln`/`cos` is ever
//! evaluated on a secret-dependent value — the only floating-point
//! computation is deriving the (public) grid geometry from the (public)
//! standard deviation, and the final exact `i64 → f64` scaling.
//!
//! Determinism: the sampler draws from the caller's [`rand::Rng`] stream
//! only, so for a fixed seed the output is bitwise identical across runs and
//! platforms — the same contract the rest of `nimbus-randkit` provides.

use rand::Rng;

/// Fixed-point denominator used to represent the standard deviation in grid
/// units: `σ_grid ≈ sigma_units / FIXED_DENOM`.
const FIXED_DENOM: u64 = 1 << 16;

/// Proposals with magnitude beyond this many grid units are rejected outright
/// before the (u128) acceptance test so the integer arithmetic provably never
/// overflows. With `σ_grid < 16` the discrete-Gaussian mass beyond `2^20`
/// grid units is below `exp(-2^30)` — unobservable — and every surviving
/// value is clamped to a few hundred grid units anyway.
const MAGNITUDE_GUARD: u64 = 1 << 20;

/// How many standard deviations of support the clamped grid keeps. Mass
/// outside `±12σ` is `< 2^-100`; clamping it to the boundary is statistically
/// invisible but makes the output domain finite and public.
const CLAMP_SIGMAS: u64 = 12;

/// A discrete Gaussian on a clamped dyadic grid.
///
/// `new(std_dev)` picks the grid step `γ = 2^k` so that `σ/γ ∈ [8, 16)`
/// (coarse enough to sample fast, fine enough that discretisation error is
/// below `γ ≤ σ/8`), then samples integers `z` with `P[z] ∝ exp(-z²/2σ_g²)`
/// via exact rejection sampling and emits `z·γ` clamped to
/// `±ceil(12·σ_g)` grid units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnappedGaussian {
    /// Grid step exponent: the grid step is `γ = 2^grid_log2`.
    grid_log2: i32,
    /// Standard deviation in grid units, fixed-point over [`FIXED_DENOM`].
    sigma_units: u64,
    /// Discrete-Laplace proposal scale: `floor(σ_grid) + 1`.
    t: u64,
    /// Clamp bound in grid units: `ceil(CLAMP_SIGMAS · σ_grid)`.
    clamp_units: i64,
}

impl SnappedGaussian {
    /// Builds a sampler targeting standard deviation `std_dev`.
    ///
    /// Returns `None` unless `std_dev` is finite and strictly positive.
    pub fn new(std_dev: f64) -> Option<Self> {
        if !std_dev.is_finite() || std_dev <= 0.0 {
            return None;
        }
        // Binade of std_dev, via exponent-bit extraction (exact, no log).
        let biased = ((std_dev.to_bits() >> 52) & 0x7ff) as i32;
        let exp = if biased == 0 { -1075 } else { biased - 1023 };
        // γ = 2^(exp-3) puts σ/γ in [8, 16). Clamp the exponent so that both
        // γ itself and clamp_units·γ stay inside the finite f64 range; at the
        // clamps σ_grid leaves [8, 16) but the sampler stays correct (the
        // fixed-point σ is clamped to [1/FIXED_DENOM, 16) below).
        let grid_log2 = (exp - 3).clamp(-1070, 1000);
        let gamma = pow2(grid_log2);
        // σ in grid units, rounded to FIXED_DENOM-ths. Public arithmetic.
        let sigma_grid = std_dev / gamma;
        let scaled = (sigma_grid * FIXED_DENOM as f64).round();
        let max_units = 16 * FIXED_DENOM - 1;
        let sigma_units = if scaled >= max_units as f64 {
            max_units
        } else if scaled < 1.0 {
            1
        } else {
            scaled as u64
        };
        let t = sigma_units / FIXED_DENOM + 1;
        let clamp_units = (CLAMP_SIGMAS * sigma_units).div_ceil(FIXED_DENOM).max(1) as i64;
        Some(Self {
            grid_log2,
            sigma_units,
            t,
            clamp_units,
        })
    }

    /// The public grid step `γ`; every sample is an exact multiple of this.
    pub fn grid(&self) -> f64 {
        pow2(self.grid_log2)
    }

    /// The clamp bound in grid units; samples lie in `[-C, C]` grid units.
    pub fn clamp_units(&self) -> i64 {
        self.clamp_units
    }

    /// Standard deviation actually realised, in grid units (fixed point).
    pub fn sigma_units(&self) -> (u64, u64) {
        (self.sigma_units, FIXED_DENOM)
    }

    /// Draws one sample in grid units (an integer in `[-C, C]`).
    pub fn sample_units<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        let z = sample_discrete_gaussian(rng, self.sigma_units, self.t);
        z.clamp(-self.clamp_units, self.clamp_units)
    }

    /// Draws one sample as an f64: `z · γ`, exact by construction.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_units(rng) as f64 * self.grid()
    }

    /// Fills a slice with independent samples.
    pub fn fill<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        let gamma = self.grid();
        for slot in out.iter_mut() {
            *slot = self.sample_units(rng) as f64 * gamma;
        }
    }
}

/// Exact power of two as f64 for `k ∈ [-1074, 1023]`.
fn pow2(k: i32) -> f64 {
    if k >= -1022 {
        f64::from_bits(((k + 1023) as u64) << 52)
    } else {
        // Subnormal range: 2^k = bit (k + 1074) of the significand.
        f64::from_bits(1u64 << (k + 1074))
    }
}

/// Canonne–Kaplan–Steinke Algorithm 3: discrete Gaussian with
/// `σ = sigma_units / FIXED_DENOM`, via discrete-Laplace(t) proposals.
fn sample_discrete_gaussian<R: Rng + ?Sized>(rng: &mut R, sigma_units: u64, t: u64) -> i64 {
    let s = sigma_units as u128;
    let d = FIXED_DENOM as u128;
    let t128 = t as u128;
    let s2 = s * s;
    // Acceptance denominator: 2·σ²·t² with σ = s/d, cleared of fractions.
    let den = 2 * s2 * d * d * t128 * t128;
    loop {
        let y = sample_discrete_laplace(rng, t);
        let mag = y.unsigned_abs();
        if mag > MAGNITUDE_GUARD {
            // Overflow guard; see MAGNITUDE_GUARD.
            continue;
        }
        // Accept with exp(-(|y| - σ²/t)² / (2σ²)). Clearing fractions:
        // num = (|y|·d²·t - s²)², den = 2·s²·d²·t².
        let lhs = mag as u128 * d * d * t128;
        let diff = lhs.abs_diff(s2);
        let num = diff * diff;
        if bernoulli_exp(rng, num, den) {
            return y;
        }
    }
}

/// Discrete Laplace with scale `t`: `P[y] ∝ exp(-|y|/t)`.
fn sample_discrete_laplace<R: Rng + ?Sized>(rng: &mut R, t: u64) -> i64 {
    loop {
        let negative = rng.random::<u64>() & 1 == 1;
        let mag = sample_geometric_exp(rng, t);
        if negative && mag == 0 {
            continue; // avoid double-counting zero
        }
        return if negative { -(mag as i64) } else { mag as i64 };
    }
}

/// Geometric-like magnitude: `P[m] ∝ exp(-m/t)` for `m ≥ 0`.
fn sample_geometric_exp<R: Rng + ?Sized>(rng: &mut R, t: u64) -> u64 {
    loop {
        let u = uniform_below(rng, t as u128) as u64;
        if !bernoulli_exp_frac(rng, u as u128, t as u128) {
            continue;
        }
        // v ~ number of consecutive Bernoulli(e^-1) successes.
        let mut v: u64 = 0;
        while bernoulli_exp_frac(rng, 1, 1) {
            v += 1;
            if v > MAGNITUDE_GUARD {
                break; // probability < exp(-2^20); keeps the loop finite
            }
        }
        return u + t * v;
    }
}

/// Bernoulli(exp(-n/d)) for any `n`, by splitting off whole units of e^-1.
fn bernoulli_exp<R: Rng + ?Sized>(rng: &mut R, mut n: u128, d: u128) -> bool {
    while n > d {
        if !bernoulli_exp_frac(rng, 1, 1) {
            return false;
        }
        n -= d;
    }
    bernoulli_exp_frac(rng, n, d)
}

/// Bernoulli(exp(-n/d)) for `n ≤ d`, via the alternating-series trick:
/// draw Bernoulli(n/(d·k)) for k = 1, 2, … until a failure; success iff the
/// failure happened at an odd k.
fn bernoulli_exp_frac<R: Rng + ?Sized>(rng: &mut R, n: u128, d: u128) -> bool {
    debug_assert!(n <= d);
    let mut k: u128 = 1;
    // If d·k overflows, probability n/(d·k) has underflowed to
    // "practically zero" — stop as if that Bernoulli failed.
    while let Some(denom) = d.checked_mul(k) {
        if !bernoulli_frac(rng, n, denom) {
            break;
        }
        k += 1;
    }
    k % 2 == 1
}

/// Exact Bernoulli(n/d) for `n ≤ d`, `d ≥ 1`, from uniform bits.
fn bernoulli_frac<R: Rng + ?Sized>(rng: &mut R, n: u128, d: u128) -> bool {
    uniform_below(rng, d) < n
}

/// Uniform integer in `[0, d)` by rejection from 128 uniform bits.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, d: u128) -> u128 {
    debug_assert!(d >= 1);
    if d == 1 {
        return 0;
    }
    let zone = u128::MAX - (u128::MAX % d);
    loop {
        let raw = ((rng.random::<u64>() as u128) << 64) | rng.random::<u64>() as u128;
        if raw < zone {
            return raw % d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{seeded_rng, RunningStats};

    #[test]
    fn rejects_bad_parameters() {
        assert!(SnappedGaussian::new(0.0).is_none());
        assert!(SnappedGaussian::new(-1.0).is_none());
        assert!(SnappedGaussian::new(f64::NAN).is_none());
        assert!(SnappedGaussian::new(f64::INFINITY).is_none());
        assert!(SnappedGaussian::new(1.0).is_some());
    }

    #[test]
    fn grid_brackets_sigma() {
        for &sigma in &[1e-6, 0.03, 1.0, 17.5, 4096.0, 1e9] {
            let g = SnappedGaussian::new(sigma).expect("valid sigma");
            let ratio = sigma / g.grid();
            assert!((8.0..16.0).contains(&ratio), "sigma={sigma} ratio={ratio}");
        }
    }

    #[test]
    fn samples_are_on_grid_and_clamped() {
        let corners = [
            1e-300,
            5e-324,
            1e-12,
            0.5,
            1.0,
            3.0,
            1e12,
            1e300,
            f64::MAX / 1e4,
        ];
        for (i, &sigma) in corners.iter().enumerate() {
            let g = SnappedGaussian::new(sigma).expect("valid sigma");
            let gamma = g.grid();
            let mut rng = seeded_rng(900 + i as u64);
            for _ in 0..500 {
                let x = g.sample(&mut rng);
                let units = x / gamma;
                assert_eq!(
                    units,
                    units.trunc(),
                    "off-grid sample {x} for sigma={sigma}"
                );
                assert!(
                    units.abs() <= g.clamp_units() as f64,
                    "unclamped sample {x} for sigma={sigma}"
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = SnappedGaussian::new(2.5).expect("valid sigma");
        let a: Vec<i64> = {
            let mut rng = seeded_rng(77);
            (0..64).map(|_| g.sample_units(&mut rng)).collect()
        };
        let b: Vec<i64> = {
            let mut rng = seeded_rng(77);
            (0..64).map(|_| g.sample_units(&mut rng)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<i64> = {
            let mut rng = seeded_rng(78);
            (0..64).map(|_| g.sample_units(&mut rng)).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn empirical_moments_match() {
        let sigma = 3.0;
        let g = SnappedGaussian::new(sigma).expect("valid sigma");
        let mut rng = seeded_rng(4242);
        let mut stats = RunningStats::new();
        for _ in 0..40_000 {
            stats.push(g.sample(&mut rng));
        }
        assert!(stats.mean().abs() < 0.05, "mean {}", stats.mean());
        let var = stats.variance();
        assert!(
            (var - sigma * sigma).abs() < 0.35,
            "variance {var} expected {}",
            sigma * sigma
        );
    }

    #[test]
    fn subnormal_sigma_still_samples() {
        let g = SnappedGaussian::new(5e-324).expect("valid sigma");
        let mut rng = seeded_rng(11);
        let gamma = g.grid();
        for _ in 0..200 {
            let x = g.sample(&mut rng);
            assert!(x.is_finite());
            let units = x / gamma;
            assert_eq!(units, units.trunc());
        }
    }

    #[test]
    fn fill_matches_sequential_samples() {
        let g = SnappedGaussian::new(1.25).expect("valid sigma");
        let mut a = seeded_rng(5);
        let mut b = seeded_rng(5);
        let mut buf = [0.0f64; 16];
        g.fill(&mut a, &mut buf);
        for &x in &buf {
            assert_eq!(x, g.sample(&mut b));
        }
    }
}
