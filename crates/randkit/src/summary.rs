//! Streaming summary statistics (Welford's algorithm).
//!
//! Monte-Carlo estimation of the expected error `E[ε(h^δ, D)]` (the
//! price-error curve of Section 3.2, Figure 6) averages thousands of noisy
//! model evaluations per noise control parameter. [`RunningStats`] computes
//! mean and variance in one numerically stable pass without storing samples.

/// Single-pass mean / variance / extrema accumulator.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction support;
    /// Chan et al.'s pairwise combination).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance `M2/n` (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance `M2/(n-1)` (0 when fewer than 2 observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean `s/√n` — drives the confidence reporting on
    /// Monte-Carlo error-curve points.
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sample_variance() / self.count as f64).sqrt()
        }
    }

    /// Minimum observed value (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observed value (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_single() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        let mut one = RunningStats::new();
        one.push(3.0);
        assert_eq!(one.mean(), 3.0);
        assert_eq!(one.variance(), 0.0);
        assert_eq!(one.standard_error(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.77).sin() * 10.0).collect();
        let mut all = RunningStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = RunningStats::new();
        s.push(1.0);
        s.push(2.0);
        let before = (s.count(), s.mean(), s.variance());
        s.merge(&RunningStats::new());
        assert_eq!(before, (s.count(), s.mean(), s.variance()));

        let mut empty = RunningStats::new();
        empty.merge(&s);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sample_variance_uses_n_minus_one() {
        let mut s = RunningStats::new();
        s.push(1.0);
        s.push(3.0);
        assert!((s.variance() - 1.0).abs() < 1e-12);
        assert!((s.sample_variance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn standard_error_shrinks_with_n() {
        let mut small = RunningStats::new();
        let mut large = RunningStats::new();
        for i in 0..10 {
            small.push((i % 2) as f64);
        }
        for i in 0..1000 {
            large.push((i % 2) as f64);
        }
        assert!(large.standard_error() < small.standard_error());
    }
}
