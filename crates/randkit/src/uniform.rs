//! Uniform sampling helpers.
//!
//! Example 1 in the paper defines two simple unbiased mechanisms for the
//! column-average "model": additive noise `w ~ U[-δ, δ]` and multiplicative
//! noise `w ~ U[1-δ, 1+δ]`. These helpers are the sampling primitives for
//! both, plus general range sampling used by dataset generators.

use rand::Rng;

/// Draws a uniform variate in `[lo, hi)`. Panics in debug builds when the
/// range is inverted or non-finite; in release, a degenerate range collapses
/// to `lo`.
pub fn uniform_in<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
    lo + (hi - lo) * rng.random::<f64>()
}

/// Draws a uniform variate in `[-half_width, half_width)` — the additive
/// mechanism's `U[-δ, δ]` with `half_width = δ`.
pub fn uniform_symmetric<R: Rng + ?Sized>(rng: &mut R, half_width: f64) -> f64 {
    debug_assert!(half_width >= 0.0);
    uniform_in(rng, -half_width, half_width)
}

/// Fills `out` with i.i.d. uniforms in `[lo, hi)`.
pub fn fill_uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64, out: &mut [f64]) {
    for o in out.iter_mut() {
        *o = uniform_in(rng, lo, hi);
    }
}

/// Draws a uniform integer in `[0, n)` without modulo bias, via rejection.
pub fn uniform_index<R: Rng + ?Sized>(rng: &mut R, n: usize) -> usize {
    assert!(n > 0, "uniform_index requires a non-empty range");
    let n = n as u64;
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.random::<u64>();
        if v < zone {
            return (v % n) as usize;
        }
    }
}

/// Fisher–Yates shuffle of a slice of indices.
pub fn shuffle_indices<R: Rng + ?Sized>(rng: &mut R, indices: &mut [usize]) {
    for i in (1..indices.len()).rev() {
        let j = uniform_index(rng, i + 1);
        indices.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use crate::summary::RunningStats;

    #[test]
    fn uniform_in_range_and_moments() {
        let mut rng = seeded_rng(2);
        let mut stats = RunningStats::new();
        for _ in 0..100_000 {
            let v = uniform_in(&mut rng, 2.0, 6.0);
            assert!((2.0..6.0).contains(&v));
            stats.push(v);
        }
        assert!((stats.mean() - 4.0).abs() < 0.02);
        // Var of U(2,6) = 16/12.
        assert!((stats.variance() - 16.0 / 12.0).abs() < 0.03);
    }

    #[test]
    fn symmetric_uniform_is_zero_mean() {
        let mut rng = seeded_rng(9);
        let mut stats = RunningStats::new();
        for _ in 0..100_000 {
            let v = uniform_symmetric(&mut rng, 3.0);
            assert!(v.abs() <= 3.0);
            stats.push(v);
        }
        assert!(stats.mean().abs() < 0.03);
        // Var of U(-3,3) = 36/12 = 3.
        assert!((stats.variance() - 3.0).abs() < 0.06);
    }

    #[test]
    fn uniform_index_covers_all_buckets() {
        let mut rng = seeded_rng(15);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[uniform_index(&mut rng, 7)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn uniform_index_rejects_zero() {
        let mut rng = seeded_rng(0);
        uniform_index(&mut rng, 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = seeded_rng(33);
        let mut idx: Vec<usize> = (0..100).collect();
        shuffle_indices(&mut rng, &mut idx);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // With overwhelming probability the shuffle moved something.
        assert_ne!(idx, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_handles_tiny_inputs() {
        let mut rng = seeded_rng(1);
        let mut empty: Vec<usize> = vec![];
        shuffle_indices(&mut rng, &mut empty);
        let mut one = vec![42];
        shuffle_indices(&mut rng, &mut one);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn fill_uniform_respects_bounds() {
        let mut rng = seeded_rng(8);
        let mut out = vec![0.0; 64];
        fill_uniform(&mut rng, -1.0, 1.0, &mut out);
        assert!(out.iter().all(|v| (-1.0..1.0).contains(v)));
    }
}
