//! Property-based tests for the random-distribution toolkit.

use nimbus_randkit::uniform::{shuffle_indices, uniform_in, uniform_index};
use nimbus_randkit::{
    seeded_rng, split_stream, Laplace, RunningStats, StandardNormal, WeightedIndex,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn uniform_stays_in_bounds(lo in -1e6..1e6f64, width in 1e-6..1e6f64, seed in 0u64..1000) {
        let hi = lo + width;
        let mut rng = seeded_rng(seed);
        for _ in 0..200 {
            let v = uniform_in(&mut rng, lo, hi);
            prop_assert!(v >= lo && v < hi, "{v} outside [{lo}, {hi})");
        }
    }

    #[test]
    fn uniform_index_stays_in_range(n in 1usize..10_000, seed in 0u64..1000) {
        let mut rng = seeded_rng(seed);
        for _ in 0..100 {
            prop_assert!(uniform_index(&mut rng, n) < n);
        }
    }

    #[test]
    fn shuffle_is_always_a_permutation(n in 0usize..200, seed in 0u64..1000) {
        let mut rng = seeded_rng(seed);
        let mut idx: Vec<usize> = (0..n).collect();
        shuffle_indices(&mut rng, &mut idx);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn normal_samples_are_finite_and_symmetric_enough(seed in 0u64..500) {
        let mut rng = seeded_rng(seed);
        let mut sampler = StandardNormal::new();
        let mut stats = RunningStats::new();
        for _ in 0..5_000 {
            let v = sampler.sample(&mut rng);
            prop_assert!(v.is_finite());
            stats.push(v);
        }
        // Loose per-seed moment checks (5k samples).
        prop_assert!(stats.mean().abs() < 0.1, "mean {}", stats.mean());
        prop_assert!((stats.variance() - 1.0).abs() < 0.2, "var {}", stats.variance());
    }

    #[test]
    fn laplace_variance_parameterization_holds(variance in 0.01..100.0f64) {
        let l = Laplace::with_variance(variance).unwrap();
        prop_assert!((l.variance() - variance).abs() < 1e-9 * variance);
        prop_assert!(l.mean() == 0.0);
    }

    #[test]
    fn weighted_index_never_picks_zero_weight(
        weights in prop::collection::vec(0.0..10.0f64, 2..20),
        seed in 0u64..300,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let w = WeightedIndex::new(&weights).unwrap();
        let mut rng = seeded_rng(seed);
        for _ in 0..500 {
            let i = w.sample(&mut rng);
            prop_assert!(weights[i] > 0.0, "picked zero-weight bucket {i}");
        }
    }

    #[test]
    fn split_stream_avoids_collisions_over_labels(parent in 0u64..1000) {
        let mut seen = std::collections::HashSet::new();
        for label in 0..256u64 {
            prop_assert!(seen.insert(split_stream(parent, label)));
        }
    }

    #[test]
    fn running_stats_merge_is_associative_enough(
        a in prop::collection::vec(-100.0..100.0f64, 1..50),
        b in prop::collection::vec(-100.0..100.0f64, 1..50),
        c in prop::collection::vec(-100.0..100.0f64, 1..50),
    ) {
        let stat = |v: &[f64]| {
            let mut s = RunningStats::new();
            for &x in v {
                s.push(x);
            }
            s
        };
        // (a ⊕ b) ⊕ c vs a ⊕ (b ⊕ c).
        let mut left = stat(&a);
        left.merge(&stat(&b));
        left.merge(&stat(&c));
        let mut bc = stat(&b);
        bc.merge(&stat(&c));
        let mut right = stat(&a);
        right.merge(&bc);
        prop_assert_eq!(left.count(), right.count());
        prop_assert!((left.mean() - right.mean()).abs() < 1e-9);
        prop_assert!((left.variance() - right.variance()).abs() < 1e-8);
    }
}

// ---------------------------------------------------------------------------
// Snapped (discrete) Gaussian: the privacy-mechanism sampler must emit only
// exact grid multiples, clamped, for *any* representable σ — including the
// adversarial corners a Mironov-style attacker would probe (subnormals, the
// binade edges, huge magnitudes) — and must be bitwise-deterministic.
// ---------------------------------------------------------------------------

/// Strategy over adversarial σ values: raw exponent/mantissa bit patterns
/// spanning subnormals through near-`f64::MAX`, so shrinking explores binade
/// boundaries rather than just "nice" decimal values.
fn adversarial_sigma() -> impl Strategy<Value = f64> {
    // Exponent 2047 (inf/NaN) is excluded by the range; the lone remaining
    // invalid pattern (+0.0) maps to the smallest subnormal instead.
    (0u64..2047, 0u64..u64::MAX).prop_map(|(exp, mantissa)| {
        let s = f64::from_bits((exp << 52) | (mantissa & ((1u64 << 52) - 1)));
        if s > 0.0 {
            s
        } else {
            f64::from_bits(1)
        }
    })
}

proptest! {
    #[test]
    fn snapped_samples_never_leave_the_grid(sigma in adversarial_sigma(), seed in 0u64..1000) {
        let g = nimbus_randkit::SnappedGaussian::new(sigma).unwrap();
        let gamma = g.grid();
        let mut rng = seeded_rng(seed);
        for _ in 0..64 {
            let units = g.sample_units(&mut rng);
            prop_assert!(units.abs() <= g.clamp_units(), "σ={sigma}: {units} unclamped");
            // The f64 emission is the exact product `units · γ`: γ is a
            // power of two, so the scaling is lossless and every sample
            // reconstructs its grid index bit for bit.
            let x = units as f64 * gamma;
            prop_assert!((x / gamma) == units as f64, "σ={sigma}: off-grid {x}");
        }
    }

    #[test]
    fn snapped_sampler_is_bitwise_deterministic(sigma in adversarial_sigma(), seed in 0u64..1000) {
        let g = nimbus_randkit::SnappedGaussian::new(sigma).unwrap();
        let draw = |s: u64| {
            let mut rng = seeded_rng(s);
            (0..32).map(|_| g.sample(&mut rng).to_bits()).collect::<Vec<u64>>()
        };
        prop_assert_eq!(draw(seed), draw(seed));
    }
}
