//! Blocking client for the Nimbus wire protocol.
//!
//! One [`NimbusClient`] owns one TCP connection (re-established on demand
//! after a failure) and issues synchronous request/response calls. A
//! server-side `BUSY` frame (admission-control shedding) and transient
//! transport faults are retried under the configured [`RetryPolicy`] with
//! exponential backoff and jitter; once the budget is exhausted they
//! surface as typed errors. Any other error frame surfaces as
//! [`ServerError::Remote`] with its machine-readable
//! [`crate::wire::ErrorCode`]. Connect, read and write are all bounded by
//! [`ClientConfig`] timeouts — a hung server costs the caller at most one
//! timeout per attempt, never a stuck thread.
//!
//! # Retry safety
//!
//! Read-only requests (`MENU`, `QUOTE`, `INFO`, `STATS`) are always safe
//! to retry. A plain [`NimbusClient::commit`] is *not*: if the ACK is
//! lost the client cannot tell a failed commit from a successful one, so
//! it is only retried when the failure provably happened before the
//! request was sent. [`NimbusClient::commit_idempotent`] closes that gap:
//! it attaches an idempotency key (quote epoch + a client nonce), which
//! the broker's write-ahead journal deduplicates — a retried commit after
//! a lost ACK replays the recorded [`SaleMsg`] instead of charging twice.
//! [`NimbusClient::buy`] uses the idempotent path.

//!
//! # Pipelining (wire v4)
//!
//! [`PipelinedClient`] keeps many requests in flight on one connection:
//! [`PipelinedClient::send`] stamps each frame with a fresh correlation
//! id and returns immediately, [`PipelinedClient::recv`] returns the next
//! response *with its id* — responses may arrive out of request order.
//! [`NimbusClient::buy_batch`] amortizes whole purchase sessions: quotes
//! pipeline, then a single `BATCH_COMMIT` frame redeems all of them with
//! per-item status (one fsync per batch server-side).

use crate::error::ServerError;
use crate::wire::{
    self, AccountMsg, BatchItemMsg, BatchOutcomeMsg, InfoMsg, ListingsMsg, MenuMsg, QuoteMsg,
    Request, Response, SaleMsg, StatsMsg,
};
use crate::Result;
use nimbus_market::PurchaseRequest;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Bounded-retry schedule for `BUSY` sheds and transient transport
/// faults: attempt `k` (1-based) backs off `base_backoff · 2^(k-1)`
/// capped at `max_backoff`, jittered uniformly into the upper half of
/// that window. A server `retry_after_ms` hint raises (never lowers) the
/// wait.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts including the first (`1` disables retries; `0` is
    /// treated as `1`).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_backoff: Duration,
    /// Jitter / nonce seed. `0` (the default) derives a per-client seed
    /// from wall-clock entropy; fix it for deterministic tests.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// No retries: every failure surfaces on the first attempt. Load
    /// generators that do their own shed accounting use this.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }
}

/// Client-side socket timeouts and retry schedule.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Response read timeout.
    pub read_timeout: Duration,
    /// Request write timeout.
    pub write_timeout: Duration,
    /// Retry schedule for `BUSY` and transient transport failures.
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(5),
            retry: RetryPolicy::default(),
        }
    }
}

/// A blocking connection to a [`crate::NimbusServer`].
pub struct NimbusClient {
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    stream: Option<TcpStream>,
    rng_state: u64,
    buyer: Option<u64>,
}

/// Where in the request lifecycle an attempt failed — decides whether a
/// non-idempotent request may be retried.
enum Failure {
    /// The request never left this process (connect or resolution).
    BeforeSend(ServerError),
    /// The request may have reached the server (write or read failed).
    AfterSend(ServerError),
}

impl Failure {
    fn into_error(self) -> ServerError {
        match self {
            Failure::BeforeSend(e) | Failure::AfterSend(e) => e,
        }
    }
}

impl NimbusClient {
    /// Connects to `addr` under `config`'s timeouts.
    pub fn connect(addr: impl ToSocketAddrs, config: &ClientConfig) -> Result<NimbusClient> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
            .into());
        }
        let mut client = NimbusClient {
            addrs,
            config: *config,
            stream: None,
            rng_state: seed_entropy(config.retry.seed),
            buyer: None,
        };
        client.ensure_connected().map_err(Failure::into_error)?;
        Ok(client)
    }

    /// Attaches a buyer identity (wire v5) to every subsequent commit
    /// and batch item, routing purchases through the listing's per-buyer
    /// noise-budget accounts. `None` (the default) commits anonymously.
    ///
    /// A [`crate::wire::ErrorCode::BudgetExhausted`] rejection is a
    /// *typed* error — it surfaces immediately as
    /// [`ServerError::Remote`] and is never retried (retrying cannot
    /// succeed until the budget is raised).
    pub fn set_buyer(&mut self, buyer: Option<u64>) {
        self.buyer = buyer;
    }

    /// The buyer identity attached to commits, if any.
    pub fn buyer(&self) -> Option<u64> {
        self.buyer
    }

    /// Fetches the posted `(inverse NCP, price)` menu of the server's
    /// default listing.
    pub fn menu(&mut self) -> Result<MenuMsg> {
        self.menu_on_opt(None)
    }

    /// Fetches the posted menu of the named listing.
    pub fn menu_on(&mut self, listing: &str) -> Result<MenuMsg> {
        self.menu_on_opt(Some(listing.to_string()))
    }

    fn menu_on_opt(&mut self, listing: Option<String>) -> Result<MenuMsg> {
        match self.call(&Request::Menu { listing }, true)? {
            Response::Menu(m) => Ok(m),
            other => Err(unexpected(&other)),
        }
    }

    /// Prices a purchase request against the server's default listing;
    /// the quote pins the snapshot epoch (and echoes the listing).
    pub fn quote(&mut self, request: PurchaseRequest) -> Result<QuoteMsg> {
        self.quote_on_opt(None, request)
    }

    /// Prices a purchase request against the named listing.
    pub fn quote_on(&mut self, listing: &str, request: PurchaseRequest) -> Result<QuoteMsg> {
        self.quote_on_opt(Some(listing.to_string()), request)
    }

    fn quote_on_opt(
        &mut self,
        listing: Option<String>,
        request: PurchaseRequest,
    ) -> Result<QuoteMsg> {
        match self.call(&Request::Quote { listing, request }, true)? {
            Response::Quote(q) => Ok(q),
            other => Err(unexpected(&other)),
        }
    }

    /// Redeems a quote with a payment; the sale carries the noisy weights.
    /// The commit routes to the listing the quote echoes (the default
    /// listing for quotes from pre-v3 servers).
    ///
    /// Without an idempotency key, this is only retried when the failure
    /// provably happened before the request was sent — prefer
    /// [`NimbusClient::commit_idempotent`] under lossy conditions.
    pub fn commit(&mut self, quote: &QuoteMsg, payment: f64) -> Result<SaleMsg> {
        let request = Request::Commit {
            listing: quoted_listing(quote),
            x: quote.x,
            snapshot_epoch: quote.snapshot_epoch,
            payment,
            nonce: None,
            buyer: self.buyer,
        };
        match self.call(&request, false)? {
            Response::Commit(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    /// Redeems a quote under a fresh idempotency key, so retries after a
    /// lost ACK replay the journalled sale exactly once instead of
    /// charging twice. Routes to the listing the quote echoes.
    pub fn commit_idempotent(&mut self, quote: &QuoteMsg, payment: f64) -> Result<SaleMsg> {
        let request = Request::Commit {
            listing: quoted_listing(quote),
            x: quote.x,
            snapshot_epoch: quote.snapshot_epoch,
            payment,
            nonce: Some(self.next_nonce()),
            buyer: self.buyer,
        };
        match self.call(&request, true)? {
            Response::Commit(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    /// Quote then commit at exactly the quoted price, idempotently,
    /// against the server's default listing.
    pub fn buy(&mut self, request: PurchaseRequest) -> Result<SaleMsg> {
        let quote = self.quote(request)?;
        self.commit_idempotent(&quote, quote.price)
    }

    /// Quote then commit at exactly the quoted price, idempotently,
    /// against the named listing.
    pub fn buy_on(&mut self, listing: &str, request: PurchaseRequest) -> Result<SaleMsg> {
        let quote = self.quote_on(listing, request)?;
        self.commit_idempotent(&quote, quote.price)
    }

    /// Fetches metadata and ledger accounting of the default listing.
    pub fn info(&mut self) -> Result<InfoMsg> {
        self.info_on_opt(None)
    }

    /// Fetches metadata and ledger accounting of the named listing.
    pub fn info_on(&mut self, listing: &str) -> Result<InfoMsg> {
        self.info_on_opt(Some(listing.to_string()))
    }

    fn info_on_opt(&mut self, listing: Option<String>) -> Result<InfoMsg> {
        match self.call(&Request::Info { listing }, true)? {
            Response::Info(i) => Ok(i),
            other => Err(unexpected(&other)),
        }
    }

    /// Queries a buyer's noise-budget account against the default
    /// listing (wire v5): precision spent, budget, and remaining.
    pub fn account(&mut self, buyer: u64) -> Result<AccountMsg> {
        self.account_on_opt(None, buyer)
    }

    /// Queries a buyer's noise-budget account against the named listing.
    pub fn account_on(&mut self, listing: &str, buyer: u64) -> Result<AccountMsg> {
        self.account_on_opt(Some(listing.to_string()), buyer)
    }

    fn account_on_opt(&mut self, listing: Option<String>, buyer: u64) -> Result<AccountMsg> {
        match self.call(&Request::Account { listing, buyer }, true)? {
            Response::Account(a) => Ok(a),
            other => Err(unexpected(&other)),
        }
    }

    /// Enumerates the marketplace's listing directory.
    pub fn listings(&mut self) -> Result<ListingsMsg> {
        match self.call(&Request::Listings, true)? {
            Response::Listings(l) => Ok(l),
            other => Err(unexpected(&other)),
        }
    }

    /// Admin: publishes (or re-publishes) a listing, returning
    /// `(epoch, expected_revenue)` of the freshly posted snapshot. A
    /// re-publish invalidates every outstanding quote via the epoch check.
    pub fn publish(&mut self, listing: &str) -> Result<(u64, f64)> {
        let request = Request::Publish {
            listing: listing.to_string(),
        };
        // Publishing is idempotent at the marketplace level (a repeated
        // publish just posts another epoch), so retries are safe.
        match self.call(&request, true)? {
            Response::Publish {
                epoch,
                expected_revenue,
                ..
            } => Ok((epoch, expected_revenue)),
            other => Err(unexpected(&other)),
        }
    }

    /// Admin: retires a listing permanently.
    pub fn retire(&mut self, listing: &str) -> Result<()> {
        let request = Request::Retire {
            listing: listing.to_string(),
        };
        match self.call(&request, false)? {
            Response::Retire { .. } => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the server's serving statistics.
    pub fn stats(&mut self) -> Result<StatsMsg> {
        match self.call(&Request::Stats, true)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    /// Redeems many quotes in one `BATCH_COMMIT` frame (v4), returning
    /// per-item outcomes in request order. One stale epoch or short
    /// payment fails only its own item.
    ///
    /// The call is retried after a lost ACK only when *every* item
    /// carries an idempotency nonce — the journal then dedups replayed
    /// items exactly like [`NimbusClient::commit_idempotent`].
    pub fn commit_batch(
        &mut self,
        listing: Option<&str>,
        items: Vec<BatchItemMsg>,
    ) -> Result<Vec<BatchOutcomeMsg>> {
        let idempotent = !items.is_empty() && items.iter().all(|i| i.nonce.is_some());
        let request = Request::BatchCommit {
            listing: listing.map(str::to_string),
            items,
        };
        match self.call(&request, idempotent)? {
            Response::BatchCommit(batch) => Ok(batch.items),
            other => Err(unexpected(&other)),
        }
    }

    /// Quotes every request, then redeems all of them in one idempotent
    /// `BATCH_COMMIT` at exactly the quoted prices, against the server's
    /// default listing. Returns per-item outcomes in request order.
    ///
    /// Compared with [`NimbusClient::buy`] in a loop this pays one
    /// commit round trip — and one journal fsync server-side — for the
    /// whole batch.
    pub fn buy_batch(&mut self, requests: &[PurchaseRequest]) -> Result<Vec<BatchOutcomeMsg>> {
        let mut items = Vec::with_capacity(requests.len());
        for request in requests {
            let quote = self.quote(*request)?;
            items.push(BatchItemMsg {
                x: quote.x,
                snapshot_epoch: quote.snapshot_epoch,
                payment: quote.price,
                nonce: Some(self.next_nonce()),
                buyer: self.buyer,
            });
        }
        if items.is_empty() {
            return Ok(Vec::new());
        }
        self.commit_batch(None, items)
    }

    /// Fetches the default listing's menu as a `MENU_STREAM` chunk
    /// sequence (v4) and reassembles it. Mid-stream failures are not
    /// retried (the remainder of a half-read stream cannot be resumed);
    /// callers can simply re-issue the call.
    pub fn menu_stream(&mut self, chunk: u32) -> Result<MenuMsg> {
        self.menu_stream_on_opt(None, chunk)
    }

    /// Fetches the named listing's menu as a chunk stream.
    pub fn menu_stream_on(&mut self, listing: &str, chunk: u32) -> Result<MenuMsg> {
        self.menu_stream_on_opt(Some(listing.to_string()), chunk)
    }

    fn menu_stream_on_opt(&mut self, listing: Option<String>, chunk: u32) -> Result<MenuMsg> {
        self.ensure_connected().map_err(Failure::into_error)?;
        let Some(mut stream) = self.stream.take() else {
            return Err(ServerError::ConnectionClosed);
        };
        let request = Request::MenuStream { listing, chunk };
        let result = menu_stream_io(&mut stream, &request);
        // A typed server error is a single well-framed reply — the
        // connection stays usable. Anything else may have died
        // mid-stream, so the framing state is unknown: reconnect later.
        if matches!(result, Ok(_) | Err(ServerError::Remote { .. })) {
            self.stream = Some(stream);
        }
        result
    }

    /// One request with bounded retries. `idempotent` gates whether
    /// attempts that may have reached the server can be retried.
    fn call(&mut self, request: &Request, idempotent: bool) -> Result<Response> {
        let max_attempts = self.config.retry.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let budget_left = attempt < max_attempts;
            match self.call_once(request) {
                Ok(Response::Busy { retry_after_ms }) => {
                    // The server hangs up after a BUSY frame; reconnect on
                    // the next attempt.
                    self.stream = None;
                    if !budget_left {
                        return Err(ServerError::Busy { retry_after_ms });
                    }
                    self.backoff(attempt, Some(retry_after_ms));
                }
                Ok(Response::Error { code, message }) => {
                    return Err(ServerError::Remote { code, message });
                }
                Ok(ok) => return Ok(ok),
                Err(failure) => {
                    self.stream = None;
                    let retryable = match &failure {
                        Failure::BeforeSend(e) => transient(e),
                        Failure::AfterSend(e) => idempotent && transient(e),
                    };
                    if !budget_left || !retryable {
                        return Err(failure.into_error());
                    }
                    self.backoff(attempt, None);
                }
            }
        }
    }

    /// One synchronous round trip over the current (or a fresh)
    /// connection.
    fn call_once(&mut self, request: &Request) -> std::result::Result<Response, Failure> {
        let stream = self.ensure_connected()?;
        wire::write_frame(stream, &request.encode()).map_err(Failure::AfterSend)?;
        let payload = wire::read_frame(stream).map_err(Failure::AfterSend)?;
        Response::decode(&payload).map_err(Failure::AfterSend)
    }

    /// Returns the live connection, dialing every configured address in
    /// order if there is none.
    fn ensure_connected(&mut self) -> std::result::Result<&mut TcpStream, Failure> {
        let mut last_err: Option<std::io::Error> = None;
        if self.stream.is_none() {
            for candidate in &self.addrs {
                match TcpStream::connect_timeout(candidate, self.config.connect_timeout) {
                    Ok(stream) => {
                        stream
                            .set_read_timeout(Some(self.config.read_timeout))
                            .map_err(|e| Failure::BeforeSend(e.into()))?;
                        stream
                            .set_write_timeout(Some(self.config.write_timeout))
                            .map_err(|e| Failure::BeforeSend(e.into()))?;
                        let _ = stream.set_nodelay(true);
                        self.stream = Some(stream);
                        break;
                    }
                    Err(e) => last_err = Some(e),
                }
            }
        }
        match self.stream.as_mut() {
            Some(stream) => Ok(stream),
            None => {
                let err = last_err.unwrap_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::AddrNotAvailable,
                        "no addresses to dial",
                    )
                });
                Err(Failure::BeforeSend(err.into()))
            }
        }
    }

    /// Sleeps the jittered exponential backoff for retry `attempt`
    /// (1-based); a server hint raises the wait but never lowers it.
    fn backoff(&mut self, attempt: u32, hint_ms: Option<u32>) {
        let retry = self.config.retry;
        let exp = retry
            .base_backoff
            .saturating_mul(1u32 << (attempt - 1).min(16));
        let cap = exp.min(retry.max_backoff).max(Duration::from_millis(1));
        // Uniform jitter in [cap/2, cap]: decorrelates clients that were
        // shed by the same queue-full episode.
        let half = cap / 2;
        let jitter_ns = self.next_u64() % (half.as_nanos().max(1) as u64);
        let mut wait = half + Duration::from_nanos(jitter_ns);
        if let Some(ms) = hint_ms {
            wait = wait.max(Duration::from_millis(ms as u64));
        }
        std::thread::sleep(wait);
    }

    fn next_nonce(&mut self) -> u64 {
        self.next_u64()
    }

    /// splitmix64 step over the client's private state.
    fn next_u64(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix_finalize(self.rng_state)
    }
}

/// Drives one `MENU_STREAM` exchange on a connected socket: write the
/// request, reassemble chunk frames until `done`.
fn menu_stream_io(stream: &mut TcpStream, request: &Request) -> Result<MenuMsg> {
    wire::write_frame(stream, &request.encode())?;
    let mut menu: Option<MenuMsg> = None;
    loop {
        let payload = wire::read_frame(stream)?;
        let (_corr, response) = Response::decode_framed(&payload)?;
        let part = match response {
            Response::MenuChunk(part) => part,
            Response::Error { code, message } => {
                return Err(ServerError::Remote { code, message });
            }
            Response::Busy { retry_after_ms } => {
                return Err(ServerError::Busy { retry_after_ms });
            }
            other => return Err(unexpected(&other)),
        };
        let done = part.done;
        let assembled = menu.get_or_insert_with(|| MenuMsg {
            epoch: part.epoch,
            metric: part.metric.clone(),
            points: Vec::new(),
        });
        assembled.points.extend_from_slice(&part.points);
        if done {
            return menu.ok_or(ServerError::Protocol {
                reason: "menu stream ended with no chunks".to_string(),
            });
        }
    }
}

/// A pipelined (wire v4) connection: many requests in flight at once,
/// responses matched by correlation id rather than order.
///
/// [`PipelinedClient::send`] writes a frame stamped with a fresh id and
/// returns without waiting; [`PipelinedClient::recv`] blocks for the
/// *next* response on the socket, which may answer any outstanding id —
/// the server executes v4 frames concurrently and answers as they
/// complete. This is the transport under the load generator's pipelined
/// mode; unlike [`NimbusClient`] it does no retrying or reconnecting of
/// its own (in-flight requests cannot be transparently replayed), so a
/// transport error poisons the connection and the caller starts a new
/// one.
///
/// A `MENU_STREAM` request answers with *several* frames sharing one id
/// (the last marked done); [`PipelinedClient::in_flight`] counts
/// request frames sent minus response frames received and therefore
/// over-counts an in-progress stream's remaining chunks as separate
/// responses — callers mixing streams into a pipeline should track the
/// `done` flag themselves.
pub struct PipelinedClient {
    stream: TcpStream,
    next_corr: u64,
    in_flight: usize,
}

impl PipelinedClient {
    /// Connects under `config`'s timeouts (the retry policy is unused:
    /// pipelined transport errors are not retryable).
    pub fn connect(addr: impl ToSocketAddrs, config: &ClientConfig) -> Result<PipelinedClient> {
        let mut last_err: Option<std::io::Error> = None;
        for candidate in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&candidate, config.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(config.read_timeout))?;
                    stream.set_write_timeout(Some(config.write_timeout))?;
                    let _ = stream.set_nodelay(true);
                    return Ok(PipelinedClient {
                        stream,
                        // Corr ids start at 1: 0 is what loop-originated
                        // frames (timeout sheds) are stamped with.
                        next_corr: 1,
                        in_flight: 0,
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err
            .unwrap_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "no addresses to dial")
            })
            .into())
    }

    /// Sends `request` stamped with a fresh correlation id, returning the
    /// id without waiting for the response.
    pub fn send(&mut self, request: &Request) -> Result<u64> {
        let corr = self.next_corr;
        self.next_corr = self.next_corr.wrapping_add(1).max(1);
        wire::write_frame(&mut self.stream, &request.encode_with_corr(corr))?;
        self.in_flight += 1;
        Ok(corr)
    }

    /// Receives the next response frame, whichever outstanding request it
    /// answers. Typed error and `BUSY` frames are returned as
    /// [`Response`] values (they carry the id of the request they
    /// answer); only transport faults surface as `Err`.
    pub fn recv(&mut self) -> Result<(u64, Response)> {
        let payload = wire::read_frame(&mut self.stream)?;
        let decoded = Response::decode_framed(&payload)?;
        self.in_flight = self.in_flight.saturating_sub(1);
        Ok(decoded)
    }

    /// Requests sent minus responses received.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }
}

fn splitmix_finalize(v: u64) -> u64 {
    let mut z = v;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeds the jitter/nonce stream: a fixed non-zero seed is deterministic;
/// seed 0 mixes wall-clock nanos with the process id so concurrent
/// clients draw distinct nonces.
fn seed_entropy(seed: u64) -> u64 {
    if seed != 0 {
        return splitmix_finalize(seed);
    }
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    splitmix_finalize(nanos ^ (u64::from(std::process::id()) << 32))
}

/// Whether an error is a transient transport fault worth retrying, as
/// opposed to a protocol violation or typed server error.
fn transient(e: &ServerError) -> bool {
    matches!(e, ServerError::Io(_) | ServerError::ConnectionClosed)
}

/// The listing a commit should route back to: the one the quote echoed,
/// or `None` (default listing) for quotes from pre-v3 servers.
fn quoted_listing(quote: &QuoteMsg) -> Option<String> {
    if quote.listing.is_empty() {
        None
    } else {
        Some(quote.listing.clone())
    }
}

fn unexpected(response: &Response) -> ServerError {
    ServerError::Protocol {
        reason: format!("response variant does not match the request: {response:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_policy_defaults_are_bounded() {
        let p = RetryPolicy::default();
        assert!(p.max_attempts >= 2);
        assert!(p.base_backoff <= p.max_backoff);
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    #[test]
    fn seeded_nonce_streams_are_deterministic_and_distinct() {
        let a1 = splitmix_finalize(7u64.wrapping_add(0x9E37_79B9_7F4A_7C15));
        let mut state = splitmix_finalize(7);
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        assert_ne!(splitmix_finalize(state), a1); // chained state, not a pure fn of the seed
        assert_eq!(seed_entropy(42), seed_entropy(42));
        assert_ne!(seed_entropy(42), seed_entropy(43));
    }

    #[test]
    fn transient_classification() {
        assert!(transient(&ServerError::ConnectionClosed));
        assert!(transient(
            &std::io::Error::new(std::io::ErrorKind::TimedOut, "slow").into()
        ));
        assert!(!transient(&ServerError::Busy { retry_after_ms: 1 }));
        assert!(!transient(&ServerError::Protocol {
            reason: "bad".into()
        }));
    }
}
