//! Blocking client for the Nimbus wire protocol.
//!
//! One [`NimbusClient`] owns one TCP connection and issues synchronous
//! request/response calls. A server-side `BUSY` frame (admission-control
//! shedding) surfaces as the typed [`ServerError::Busy`]; any other error
//! frame surfaces as [`ServerError::Remote`] with its machine-readable
//! [`crate::wire::ErrorCode`]. Connect, read and write are all bounded by
//! [`ClientConfig`] timeouts — a hung server costs the caller at most one
//! timeout, never a stuck thread.

use crate::error::ServerError;
use crate::wire::{self, InfoMsg, MenuMsg, QuoteMsg, Request, Response, SaleMsg, StatsMsg};
use crate::Result;
use nimbus_market::PurchaseRequest;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side socket timeouts.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Response read timeout.
    pub read_timeout: Duration,
    /// Request write timeout.
    pub write_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// A blocking connection to a [`crate::NimbusServer`].
pub struct NimbusClient {
    stream: TcpStream,
}

impl NimbusClient {
    /// Connects to `addr` under `config`'s timeouts.
    pub fn connect(addr: impl ToSocketAddrs, config: &ClientConfig) -> Result<NimbusClient> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let mut last_err: Option<std::io::Error> = None;
        for candidate in addrs {
            match TcpStream::connect_timeout(&candidate, config.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(config.read_timeout))?;
                    stream.set_write_timeout(Some(config.write_timeout))?;
                    let _ = stream.set_nodelay(true);
                    return Ok(NimbusClient { stream });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err
            .unwrap_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "address resolved to nothing",
                )
            })
            .into())
    }

    /// One synchronous round trip; typed errors come back as `Err`.
    fn call(&mut self, request: &Request) -> Result<Response> {
        wire::write_frame(&mut self.stream, &request.encode())?;
        let payload = wire::read_frame(&mut self.stream)?;
        match Response::decode(&payload)? {
            Response::Busy => Err(ServerError::Busy),
            Response::Error { code, message } => Err(ServerError::Remote { code, message }),
            ok => Ok(ok),
        }
    }

    /// Fetches the posted `(inverse NCP, price)` menu.
    pub fn menu(&mut self) -> Result<MenuMsg> {
        match self.call(&Request::Menu)? {
            Response::Menu(m) => Ok(m),
            other => Err(unexpected(&other)),
        }
    }

    /// Prices a purchase request; the quote pins the snapshot epoch.
    pub fn quote(&mut self, request: PurchaseRequest) -> Result<QuoteMsg> {
        match self.call(&Request::Quote(request))? {
            Response::Quote(q) => Ok(q),
            other => Err(unexpected(&other)),
        }
    }

    /// Redeems a quote with a payment; the sale carries the noisy weights.
    pub fn commit(&mut self, quote: &QuoteMsg, payment: f64) -> Result<SaleMsg> {
        match self.call(&Request::Commit {
            x: quote.x,
            snapshot_epoch: quote.snapshot_epoch,
            payment,
        })? {
            Response::Commit(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    /// Quote then commit at exactly the quoted price.
    pub fn buy(&mut self, request: PurchaseRequest) -> Result<SaleMsg> {
        let quote = self.quote(request)?;
        self.commit(&quote, quote.price)
    }

    /// Fetches listing metadata and ledger accounting.
    pub fn info(&mut self) -> Result<InfoMsg> {
        match self.call(&Request::Info)? {
            Response::Info(i) => Ok(i),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the server's serving statistics.
    pub fn stats(&mut self) -> Result<StatsMsg> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(response: &Response) -> ServerError {
    ServerError::Protocol {
        reason: format!("response variant does not match the request: {response:?}"),
    }
}
