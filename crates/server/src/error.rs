//! Error type for the networked serving layer.

use crate::wire::ErrorCode;
use std::fmt;

/// Errors produced by the `nimbus-server` crate, on either side of the
/// wire.
#[derive(Debug)]
pub enum ServerError {
    /// An underlying socket operation failed (includes read/write
    /// timeouts, which surface as `WouldBlock`/`TimedOut` I/O errors).
    Io(std::io::Error),
    /// The peer closed the connection mid-frame.
    ConnectionClosed,
    /// The server shed this connection at admission: its bounded queue was
    /// full, so it answered with a typed `BUSY` frame instead of stalling.
    /// Surfaces once the client's retry budget (if any) is exhausted.
    Busy {
        /// Server's advisory back-off hint in milliseconds (0 from v1
        /// peers, which do not send one).
        retry_after_ms: u32,
    },
    /// A frame violated the wire protocol (bad magic, truncated body,
    /// trailing bytes, unknown opcode, string/vector over its cap).
    Protocol {
        /// Human-readable reason.
        reason: String,
    },
    /// The peer speaks a different protocol version.
    UnsupportedVersion {
        /// Version byte received.
        got: u8,
    },
    /// A frame announced a length beyond [`crate::wire::MAX_FRAME_LEN`].
    FrameTooLarge {
        /// Announced payload length.
        len: u64,
    },
    /// The server answered with a typed error frame.
    Remote {
        /// Machine-readable error code.
        code: ErrorCode,
        /// Server-rendered message.
        message: String,
    },
    /// Invalid server or client configuration.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// A server-side broker operation failed (only surfaces in-process,
    /// e.g. when starting a server on an unopened market).
    Market(nimbus_market::MarketError),
}

impl ServerError {
    /// Whether this is the typed admission-control rejection.
    pub fn is_busy(&self) -> bool {
        matches!(self, ServerError::Busy { .. })
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "i/o error: {e}"),
            ServerError::ConnectionClosed => write!(f, "connection closed by peer"),
            ServerError::Busy { retry_after_ms } => {
                write!(
                    f,
                    "server busy: admission queue full (retry after {retry_after_ms} ms)"
                )
            }
            ServerError::Protocol { reason } => write!(f, "protocol error: {reason}"),
            ServerError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported protocol version {got} (this side speaks {})",
                    crate::wire::VERSION
                )
            }
            ServerError::FrameTooLarge { len } => {
                write!(
                    f,
                    "frame of {len} bytes exceeds the {} byte limit",
                    crate::wire::MAX_FRAME_LEN
                )
            }
            ServerError::Remote { code, message } => {
                write!(f, "server error [{code:?}]: {message}")
            }
            ServerError::InvalidConfig { reason } => {
                write!(f, "invalid server configuration: {reason}")
            }
            ServerError::Market(e) => write!(f, "market error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Market(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<nimbus_market::MarketError> for ServerError {
    fn from(e: nimbus_market::MarketError) -> Self {
        ServerError::Market(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let busy = ServerError::Busy { retry_after_ms: 25 };
        assert!(busy.to_string().contains("admission queue"));
        assert!(busy.to_string().contains("25 ms"));
        assert!(busy.is_busy());
        assert!(!ServerError::ConnectionClosed.is_busy());
        assert!(ServerError::UnsupportedVersion { got: 9 }
            .to_string()
            .contains('9'));
        assert!(ServerError::FrameTooLarge { len: 1 << 30 }
            .to_string()
            .contains("limit"));
        assert!(ServerError::Remote {
            code: ErrorCode::QuoteExpired,
            message: "stale".into()
        }
        .to_string()
        .contains("QuoteExpired"));
    }

    #[test]
    fn sources_are_preserved() {
        use std::error::Error;
        let e: ServerError = std::io::Error::new(std::io::ErrorKind::TimedOut, "slow").into();
        assert!(e.source().is_some());
        let e: ServerError = nimbus_market::MarketError::MarketNotOpen.into();
        assert!(e.source().is_some());
    }
}
