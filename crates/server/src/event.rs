//! Readiness event loop: one thread, tens of thousands of connections.
//!
//! The loop thread owns every socket. It multiplexes the listener, a
//! wake-up pipe and all client connections over one [`crate::sys::Poller`]
//! (`epoll` on Linux, `poll(2)` elsewhere) in level-triggered mode, and
//! never blocks on any single peer:
//!
//! ```text
//!             ┌────────────────────────── event loop thread ───┐
//!  accept ───▶│ slab of per-connection state machines          │
//!  readable ─▶│   read → frame-parse → dispatch to shard queue─┼─▶ workers
//!  writable ─▶│   flush ← completions ← wake pipe ◀────────────┼── (CPU)
//!             └────────────────────────────────────────────────┘
//! ```
//!
//! * **Per-connection state machine.** Each connection is a slab slot
//!   holding a read buffer, a queue of parsed-but-undispatched frames, a
//!   write buffer and a handful of counters. An idle connection costs one
//!   fd and one slab slot — no thread, no stack.
//! * **Pipelining with v≤3 serialization.** A v4 frame carries a
//!   correlation id and may be dispatched while earlier frames from the
//!   same connection are still executing; responses are matched by id,
//!   not order. Frames from v1–v3 peers (which have no ids) are strictly
//!   serialized: one in flight per connection, responses in order —
//!   exactly the blocking-server contract those peers were built against.
//! * **Shedding, not stalling.** Dispatch pushes onto the same bounded
//!   shard queues as before; a full queue answers the *frame* with a
//!   typed `BUSY` instead of queueing unboundedly. v4 connections stay
//!   open across a shed (the id tells the client which request was hit);
//!   v≤3 connections are closed after the frame, matching the old
//!   admission-shed behavior.
//! * **Slow-loris defense.** A timer wheel (binary heap with lazy
//!   invalidation) enforces three deadlines per connection: a
//!   header-read deadline from the first byte of an incomplete frame, an
//!   idle deadline between requests, and a write-stall deadline while a
//!   response is buffered. Header/idle expiry sheds the connection with
//!   a courtesy `BUSY` frame and counts in
//!   [`crate::stats::StatsRegistry::timeout_sheds`]; a stalled writer is
//!   closed outright (the peer is not reading).
//! * **Backpressure.** Read interest is dropped while a connection has
//!   more than [`WRITE_BACKPRESSURE`] buffered response bytes or
//!   [`MAX_PARSED`] undispatched frames, so a fast writer cannot balloon
//!   server memory.
//! * **Determinism.** The loop never reads the ambient clock; the server
//!   injects a monotonic `Fn() -> Duration` at start, so every deadline
//!   decision is a pure function of injected time.
//!
//! Completions flow back from the workers through
//! [`crate::server::Inner::completions`] plus one byte on the wake pipe;
//! the loop appends the encoded frames to the connection's write buffer
//! and flushes as the socket drains.

use crate::server::{Inner, Job};
use crate::sys::{PollEvent, Poller};
use crate::wire::{self, ErrorCode, Response};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Bytes read per `read(2)` pass.
const READ_CHUNK: usize = 16 * 1024;
/// Buffered response bytes beyond which a connection stops being read.
pub const WRITE_BACKPRESSURE: usize = 256 * 1024;
/// Parsed-but-undispatched frames beyond which a connection stops being
/// read — the per-connection pipeline depth bound.
pub const MAX_PARSED: usize = 128;
/// Poll timeout ceiling so the stop flag is observed promptly even with
/// no timers armed.
const POLL_CAP: Duration = Duration::from_millis(500);
/// Poll timeout ceiling while draining for shutdown.
const POLL_CAP_STOPPING: Duration = Duration::from_millis(10);

/// First protocol version that carries correlation ids and may pipeline;
/// frames below it are strictly serialized per connection.
const PIPELINE_MIN_VERSION: u8 = 4;

/// Poller token of the TCP listener.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Poller token of the wake-pipe read end.
const TOKEN_WAKE: u64 = u64::MAX - 1;

/// Packs a slab slot and its generation into a poller token. The
/// generation guards against ABA: an event for a closed connection whose
/// slot was reused must not touch the new tenant.
fn token_for(slot: u32, gen: u32) -> u64 {
    (u64::from(gen) << 32) | u64::from(slot)
}

/// Splits a connection token back into `(slot, generation)`.
fn split_token(token: u64) -> (u32, u32) {
    (token as u32, (token >> 32) as u32)
}

/// Which deadline a timer entry represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeadlineKind {
    /// A response is buffered and the socket has not drained in time:
    /// the peer stopped reading. Hard close.
    WriteStall,
    /// The first byte of a frame arrived but the frame never completed
    /// (slow-loris). Shed with `BUSY`, then close.
    Header,
    /// No request in flight, none parsed, nothing buffered, and the
    /// connection has been silent too long. Shed with `BUSY`, then close.
    Idle,
}

/// One frame sniffed off a connection, waiting for dispatch.
struct PendingFrame {
    version: u8,
    corr: u64,
    payload: Vec<u8>,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    fd: i32,
    gen: u32,
    /// Shard this connection's frames dispatch to (fixed at accept).
    shard: usize,
    read_buf: Vec<u8>,
    parsed: VecDeque<PendingFrame>,
    /// Dispatched jobs whose completions have not come back yet.
    in_flight: u32,
    /// A v≤3 frame is executing; nothing else may dispatch until it
    /// completes (those peers expect strict request/response order).
    serial_in_flight: bool,
    write_buf: Vec<u8>,
    write_pos: usize,
    close_after_flush: bool,
    peer_eof: bool,
    io_dead: bool,
    /// Version of the last frame sniffed; stamps loop-originated frames
    /// (timeout `BUSY`, oversized-frame errors). Starts at 3 so a peer
    /// that never sent a parseable frame gets the widest-compat stamp.
    last_version: u8,
    last_activity: Duration,
    last_write_progress: Duration,
    /// When the currently incomplete frame's first byte arrived.
    partial_since: Option<Duration>,
    /// `(read, write)` interest currently registered with the poller.
    interest: (bool, bool),
    /// The deadline currently armed for this connection, if any.
    deadline: Option<(Duration, DeadlineKind)>,
}

impl Conn {
    fn pending_write(&self) -> usize {
        self.write_buf.len().saturating_sub(self.write_pos)
    }

    /// Appends one length-prefixed frame to the write buffer.
    fn queue_frame(&mut self, payload: &[u8]) {
        self.write_buf
            .extend_from_slice(&(payload.len() as u32).to_be_bytes());
        self.write_buf.extend_from_slice(payload);
    }

    /// The earliest applicable deadline under the current state.
    fn compute_deadline(
        &self,
        cfg: &crate::server::ServerConfig,
    ) -> Option<(Duration, DeadlineKind)> {
        let mut best: Option<(Duration, DeadlineKind)> = None;
        let mut consider = |at: Duration, kind: DeadlineKind| match best {
            Some((t, _)) if t <= at => {}
            _ => best = Some((at, kind)),
        };
        if self.pending_write() > 0 {
            consider(
                self.last_write_progress + cfg.write_timeout,
                DeadlineKind::WriteStall,
            );
        }
        if let Some(since) = self.partial_since {
            consider(since + cfg.header_read_timeout, DeadlineKind::Header);
        }
        if self.in_flight == 0
            && self.parsed.is_empty()
            && self.pending_write() == 0
            && self.partial_since.is_none()
            && !self.close_after_flush
        {
            consider(self.last_activity + cfg.idle_timeout, DeadlineKind::Idle);
        }
        best
    }
}

/// The event loop. Owns the listener, the wake pipe's read end and every
/// live connection; everything else reaches it through the shard queues
/// and the completion list.
pub(crate) struct EventLoop {
    inner: Arc<Inner>,
    poller: Poller,
    listener: Option<TcpListener>,
    wake_rx: UnixStream,
    conns: Vec<Option<Conn>>,
    free: Vec<u32>,
    timers: BinaryHeap<Reverse<(Duration, u32, u32)>>,
    /// Jobs dispatched to workers whose completions have not been applied
    /// yet, across all connections (including already-closed ones).
    total_in_flight: u64,
    next_shard: usize,
    next_gen: u32,
    stopping: bool,
    clock: Box<dyn Fn() -> Duration + Send>,
}

impl EventLoop {
    pub(crate) fn new(
        inner: Arc<Inner>,
        listener: TcpListener,
        wake_rx: UnixStream,
        clock: Box<dyn Fn() -> Duration + Send>,
    ) -> std::io::Result<EventLoop> {
        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, true, false)?;
        poller.register(wake_rx.as_raw_fd(), TOKEN_WAKE, true, false)?;
        Ok(EventLoop {
            inner,
            poller,
            listener: Some(listener),
            wake_rx,
            conns: Vec::new(),
            free: Vec::new(),
            timers: BinaryHeap::new(),
            total_in_flight: 0,
            next_shard: 0,
            next_gen: 1,
            stopping: false,
            clock,
        })
    }

    pub(crate) fn run(&mut self) {
        let mut events: Vec<PollEvent> = Vec::new();
        loop {
            if !self.stopping && self.inner.stop.load(Ordering::SeqCst) {
                self.begin_shutdown();
            }
            if self.stopping && self.drained() {
                break;
            }
            let timeout = self.poll_timeout();
            match self.poller.wait(Some(timeout), &mut events) {
                Ok(()) => {}
                Err(_) => {
                    // A failing poller is unrecoverable; drain what we
                    // can and exit rather than spin.
                    if self.stopping {
                        break;
                    }
                    self.begin_shutdown();
                    continue;
                }
            }
            // Drain completions every turn: the wake byte and the list
            // push are not atomic together, so a byteless completion is
            // picked up here at the latest.
            self.apply_completions();
            for i in 0..events.len() {
                let Some(ev) = events.get(i).copied() else {
                    break;
                };
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.drain_wake_pipe(),
                    token => self.conn_ready(token, ev),
                }
            }
            self.fire_due_timers();
        }
        self.close_all();
    }

    /// Whether shutdown can complete: no job in flight anywhere and no
    /// response bytes still buffered on a live connection.
    fn drained(&self) -> bool {
        self.total_in_flight == 0 && self.conns.iter().flatten().all(|c| c.pending_write() == 0)
    }

    fn poll_timeout(&mut self) -> Duration {
        let cap = if self.stopping {
            POLL_CAP_STOPPING
        } else {
            POLL_CAP
        };
        let now = (self.clock)();
        match self.timers.peek() {
            Some(Reverse((at, _, _))) => at.saturating_sub(now).min(cap),
            None => cap,
        }
    }

    /// Stops accepting and reading; existing responses still flush.
    fn begin_shutdown(&mut self) {
        self.stopping = true;
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
            // Dropping the listener closes the port: connects after
            // shutdown fail instead of queueing in the backlog.
        }
        for slot in 0..self.conns.len() as u32 {
            if let Some(conn) = self.conns.get_mut(slot as usize).and_then(Option::as_mut) {
                // Parsed-but-undispatched frames are dropped: their
                // requests were never admitted, so no response is owed.
                conn.parsed.clear();
                conn.close_after_flush = true;
            }
            self.after_io(slot);
        }
    }

    // -- accept ------------------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            let accepted = {
                let Some(listener) = self.listener.as_ref() else {
                    return;
                };
                listener.accept()
            };
            match accepted {
                Ok((stream, _peer)) => self.install(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient accept failure (e.g. EMFILE): leave the rest
                // of the backlog for the next readiness event.
                Err(_) => return,
            }
        }
    }

    fn install(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let fd = stream.as_raw_fd();
        let gen = self.next_gen;
        self.next_gen = self.next_gen.wrapping_add(1).max(1);
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.conns.push(None);
                (self.conns.len() - 1) as u32
            }
        };
        if self
            .poller
            .register(fd, token_for(slot, gen), true, false)
            .is_err()
        {
            self.free.push(slot);
            return;
        }
        self.inner.stats.connection_accepted();
        let shard = self.next_shard % self.inner.shards.len().max(1);
        self.next_shard = self.next_shard.wrapping_add(1);
        let now = (self.clock)();
        let conn = Conn {
            stream,
            fd,
            gen,
            shard,
            read_buf: Vec::new(),
            parsed: VecDeque::new(),
            in_flight: 0,
            serial_in_flight: false,
            write_buf: Vec::new(),
            write_pos: 0,
            close_after_flush: false,
            peer_eof: false,
            io_dead: false,
            last_version: wire::V3_VERSION,
            last_activity: now,
            last_write_progress: now,
            partial_since: None,
            interest: (true, false),
            deadline: None,
        };
        if let Some(cell) = self.conns.get_mut(slot as usize) {
            *cell = Some(conn);
        }
        self.rearm_deadline(slot);
    }

    // -- wake pipe / completions -------------------------------------------

    fn drain_wake_pipe(&mut self) {
        let mut sink = [0u8; 64];
        loop {
            match self.wake_rx.read(&mut sink) {
                Ok(0) => return, // workers gone; completions still drain
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return, // WouldBlock: pipe drained
            }
        }
    }

    fn apply_completions(&mut self) {
        let completed = {
            let mut guard = match self.inner.completions.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            std::mem::take(&mut *guard)
        };
        for completion in completed {
            // Every dispatched job produces exactly one completion, so
            // the global count decrements here even when the connection
            // is already gone (its response is simply dropped).
            self.total_in_flight = self.total_in_flight.saturating_sub(1);
            let slot = completion.slot;
            let Some(conn) = self.conns.get_mut(slot as usize).and_then(Option::as_mut) else {
                continue;
            };
            if conn.gen != completion.gen {
                continue;
            }
            conn.in_flight = conn.in_flight.saturating_sub(1);
            if conn.in_flight == 0 {
                conn.serial_in_flight = false;
            }
            for frame in &completion.frames {
                conn.queue_frame(frame);
            }
            if completion.close {
                // Protocol violation: the framing is untrustworthy past
                // this frame. Answer, then hang up.
                conn.close_after_flush = true;
                conn.parsed.clear();
            }
            self.after_io(slot);
        }
    }

    // -- socket readiness --------------------------------------------------

    fn conn_ready(&mut self, token: u64, ev: PollEvent) {
        let (slot, gen) = split_token(token);
        {
            let Some(conn) = self.conns.get_mut(slot as usize).and_then(Option::as_mut) else {
                return;
            };
            if conn.gen != gen {
                return;
            }
        }
        if ev.readable {
            self.do_read(slot);
        }
        if ev.writable {
            self.do_write(slot);
        }
        if ev.hangup && !ev.readable {
            // Pure hangup with nothing left to read.
            if let Some(conn) = self.conns.get_mut(slot as usize).and_then(Option::as_mut) {
                conn.peer_eof = true;
            }
        }
        self.after_io(slot);
    }

    /// Reads until `WouldBlock` (bounded per pass by backpressure caps).
    fn do_read(&mut self, slot: u32) {
        let now = (self.clock)();
        let Some(conn) = self.conns.get_mut(slot as usize).and_then(Option::as_mut) else {
            return;
        };
        if conn.close_after_flush || conn.peer_eof {
            return;
        }
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            if conn.parsed.len() >= MAX_PARSED || conn.pending_write() > WRITE_BACKPRESSURE {
                break; // backpressure: interest drops in after_io
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf
                        .extend_from_slice(chunk.get(..n).unwrap_or(&[]));
                    conn.last_activity = now;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.io_dead = true;
                    break;
                }
            }
        }
    }

    /// Flushes the write buffer until done or `WouldBlock`.
    fn do_write(&mut self, slot: u32) {
        let now = (self.clock)();
        let Some(conn) = self.conns.get_mut(slot as usize).and_then(Option::as_mut) else {
            return;
        };
        while conn.pending_write() > 0 {
            let pending = conn.write_buf.get(conn.write_pos..).unwrap_or(&[]);
            match conn.stream.write(pending) {
                Ok(0) => {
                    conn.io_dead = true;
                    break;
                }
                Ok(n) => {
                    conn.write_pos += n;
                    conn.last_write_progress = now;
                    conn.last_activity = now;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.io_dead = true;
                    break;
                }
            }
        }
        if conn.pending_write() == 0 {
            conn.write_buf.clear();
            conn.write_pos = 0;
        }
    }

    /// Parse → dispatch → flush → interest/deadline/close bookkeeping.
    /// Every path that touches a connection funnels through here.
    fn after_io(&mut self, slot: u32) {
        self.parse_frames(slot);
        self.dispatch(slot);
        self.do_write(slot);
        let close = {
            let Some(conn) = self.conns.get_mut(slot as usize).and_then(Option::as_mut) else {
                return;
            };
            let done_writing = conn.pending_write() == 0;
            // After EOF a leftover partial frame can never complete, so
            // `parsed` emptiness is the only read-side condition.
            conn.io_dead
                || (conn.close_after_flush && done_writing && conn.in_flight == 0)
                || (conn.peer_eof && done_writing && conn.in_flight == 0 && conn.parsed.is_empty())
        };
        if close {
            self.close(slot);
            return;
        }
        self.update_interest(slot);
        self.rearm_deadline(slot);
    }

    /// Extracts complete frames from the read buffer into the parsed
    /// queue, sniffing version and correlation id for routing.
    fn parse_frames(&mut self, slot: u32) {
        let now = (self.clock)();
        let Some(conn) = self.conns.get_mut(slot as usize).and_then(Option::as_mut) else {
            return;
        };
        if self.stopping || conn.close_after_flush {
            return;
        }
        let mut pos = 0usize;
        loop {
            if conn.parsed.len() >= MAX_PARSED {
                break;
            }
            let Some(header) = conn.read_buf.get(pos..pos + 4) else {
                break;
            };
            let len = match <[u8; 4]>::try_from(header) {
                Ok(raw) => u32::from_be_bytes(raw) as usize,
                Err(_) => break,
            };
            if len > wire::MAX_FRAME_LEN {
                // Framing is lost past an oversized announcement: answer
                // with the typed error the blocking server sent, then
                // close. `last_version` keeps the stamp peer-compatible.
                self.inner.stats.protocol_error();
                let frame = Response::Error {
                    code: ErrorCode::BadFrame,
                    message: format!(
                        "frame of {len} bytes exceeds the {} byte limit",
                        wire::MAX_FRAME_LEN
                    ),
                }
                .encode_versioned(conn.last_version, 0);
                conn.queue_frame(&frame);
                conn.close_after_flush = true;
                conn.parsed.clear();
                conn.read_buf.clear();
                return;
            }
            let Some(payload) = conn.read_buf.get(pos + 4..pos + 4 + len) else {
                break; // incomplete frame
            };
            let (version, corr) = wire::sniff_header(payload);
            if version >= wire::MIN_VERSION {
                conn.last_version = version;
            }
            conn.parsed.push_back(PendingFrame {
                version,
                corr,
                payload: payload.to_vec(),
            });
            pos += 4 + len;
        }
        if pos > 0 {
            conn.read_buf.drain(..pos);
        }
        // Slow-loris tracking: the header deadline runs from the first
        // byte of an incomplete frame and is NOT reset by trickled bytes.
        if conn.read_buf.is_empty() {
            conn.partial_since = None;
        } else if conn.partial_since.is_none() {
            conn.partial_since = Some(now);
        }
    }

    /// Moves parsed frames onto the shard queue, shedding with `BUSY`
    /// when it is full. v≤3 frames are serialized; v4 frames pipeline.
    fn dispatch(&mut self, slot: u32) {
        let retry_after_ms = self.retry_after_ms();
        let Some(conn) = self.conns.get_mut(slot as usize).and_then(Option::as_mut) else {
            return;
        };
        let Some(shard) = self.inner.shards.get(conn.shard) else {
            return;
        };
        loop {
            if conn.close_after_flush || self.stopping {
                conn.parsed.clear();
                break;
            }
            let front_version = match conn.parsed.front() {
                Some(frame) => frame.version,
                None => break,
            };
            let may_dispatch = conn.in_flight == 0
                || (front_version >= PIPELINE_MIN_VERSION && !conn.serial_in_flight);
            if !may_dispatch {
                break;
            }
            let Some(frame) = conn.parsed.pop_front() else {
                break;
            };
            let mut queue = match shard.queue.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            // Checked under the lock: a worker's exit decision (stop &&
            // empty) is serialized with this push, so a job enqueued here
            // is guaranteed to be drained.
            if self.inner.stop.load(Ordering::SeqCst) {
                conn.parsed.clear();
                break;
            }
            if queue.len() >= self.inner.config.queue_capacity {
                drop(queue);
                self.inner.stats.busy_rejection();
                let busy =
                    Response::Busy { retry_after_ms }.encode_versioned(frame.version, frame.corr);
                conn.queue_frame(&busy);
                if frame.version < PIPELINE_MIN_VERSION {
                    // Pre-pipelining peers treat BUSY as a connection-level
                    // shed and reconnect; close like the old server did.
                    conn.close_after_flush = true;
                    conn.parsed.clear();
                    break;
                }
                continue;
            }
            queue.push_back(Job {
                slot,
                gen: conn.gen,
                version: frame.version,
                corr: frame.corr,
                payload: frame.payload,
            });
            drop(queue);
            shard.available.notify_one();
            conn.serial_in_flight = frame.version < PIPELINE_MIN_VERSION;
            conn.in_flight += 1;
            self.total_in_flight += 1;
        }
    }

    fn retry_after_ms(&self) -> u32 {
        self.inner
            .config
            .retry_after_hint
            .as_millis()
            .min(u32::MAX as u128) as u32
    }

    fn update_interest(&mut self, slot: u32) {
        let Some(conn) = self.conns.get_mut(slot as usize).and_then(Option::as_mut) else {
            return;
        };
        let want_read = !self.stopping
            && !conn.peer_eof
            && !conn.close_after_flush
            && conn.pending_write() <= WRITE_BACKPRESSURE
            && conn.parsed.len() < MAX_PARSED;
        let want_write = conn.pending_write() > 0;
        if conn.interest != (want_read, want_write) {
            if self
                .poller
                .modify(conn.fd, token_for(slot, conn.gen), want_read, want_write)
                .is_err()
            {
                conn.io_dead = true;
            } else {
                conn.interest = (want_read, want_write);
            }
        }
        if conn.io_dead {
            self.close(slot);
        }
    }

    // -- timers ------------------------------------------------------------

    /// Recomputes the connection's deadline and arms a timer entry if it
    /// changed. Stale heap entries are invalidated lazily at pop time.
    fn rearm_deadline(&mut self, slot: u32) {
        let Some(conn) = self.conns.get_mut(slot as usize).and_then(Option::as_mut) else {
            return;
        };
        let next = conn.compute_deadline(&self.inner.config);
        if next != conn.deadline {
            conn.deadline = next;
            if let Some((at, _)) = next {
                self.timers.push(Reverse((at, slot, conn.gen)));
            }
        }
    }

    fn fire_due_timers(&mut self) {
        let now = (self.clock)();
        loop {
            match self.timers.peek() {
                Some(Reverse((at, _, _))) if *at <= now => {}
                _ => break,
            }
            let Some(Reverse((_, slot, gen))) = self.timers.pop() else {
                break;
            };
            let kind = {
                let Some(conn) = self.conns.get_mut(slot as usize).and_then(Option::as_mut) else {
                    continue;
                };
                if conn.gen != gen {
                    continue;
                }
                // Lazy invalidation: fire only the connection's *current*
                // deadline, and only if it is actually due.
                match conn.deadline {
                    Some((at, kind)) if at <= now => {
                        conn.deadline = None;
                        kind
                    }
                    Some((at, _)) => {
                        self.timers.push(Reverse((at, slot, gen)));
                        continue;
                    }
                    None => continue,
                }
            };
            match kind {
                DeadlineKind::WriteStall => {
                    // The peer stopped reading; nothing we send lands.
                    self.close(slot);
                }
                DeadlineKind::Header | DeadlineKind::Idle => {
                    self.timeout_shed(slot);
                }
            }
        }
    }

    /// Sheds a slow or idle connection: a courtesy `BUSY` frame (stamped
    /// at the peer's last seen version), then close-after-flush.
    fn timeout_shed(&mut self, slot: u32) {
        let retry_after_ms = self.retry_after_ms();
        {
            let Some(conn) = self.conns.get_mut(slot as usize).and_then(Option::as_mut) else {
                return;
            };
            self.inner.stats.timeout_shed();
            let busy = Response::Busy { retry_after_ms }.encode_versioned(conn.last_version, 0);
            conn.queue_frame(&busy);
            conn.close_after_flush = true;
            conn.parsed.clear();
            conn.read_buf.clear();
            conn.partial_since = None;
        }
        self.after_io(slot);
    }

    // -- teardown ----------------------------------------------------------

    fn close(&mut self, slot: u32) {
        let Some(cell) = self.conns.get_mut(slot as usize) else {
            return;
        };
        let Some(conn) = cell.take() else {
            return;
        };
        let _ = self.poller.deregister(conn.fd);
        // In-flight jobs for this connection may still complete; their
        // completions decrement the global count and are otherwise
        // dropped (the generation check misses on a reused slot).
        self.free.push(slot);
        drop(conn);
    }

    fn close_all(&mut self) {
        for slot in 0..self.conns.len() as u32 {
            self.close(slot);
        }
    }
}

/// Entry point for the server's event thread.
pub(crate) fn run(
    inner: Arc<Inner>,
    listener: TcpListener,
    wake_rx: UnixStream,
    clock: Box<dyn Fn() -> Duration + Send>,
) {
    match EventLoop::new(inner, listener, wake_rx, clock) {
        Ok(mut event_loop) => event_loop.run(),
        Err(_) => {
            // Poller construction failed (fd exhaustion at startup): the
            // server cannot serve; stop_and_join still reaps the workers.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip_slot_and_generation() {
        let token = token_for(7, 123);
        assert_eq!(split_token(token), (7, 123));
        let token = token_for(u32::MAX - 2, u32::MAX - 9);
        assert_eq!(split_token(token), (u32::MAX - 2, u32::MAX - 9));
        assert_ne!(token_for(1, 2), TOKEN_LISTENER);
        assert_ne!(token_for(1, 2), TOKEN_WAKE);
    }
}
