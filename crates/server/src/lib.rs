// Unit tests exercise failure paths where `unwrap`/`panic!` are the
// point; the serving-path hygiene lints apply to shipped code only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::panic))]

//! # nimbus-server — the broker as a networked service
//!
//! The SIGMOD'19 Nimbus demo is a *service*: buyers drive live purchase
//! sessions against a running broker, not a library. This crate is that
//! serving layer, built on std TCP alone (the workspace vendors no async
//! runtime or serialization crates):
//!
//! * [`wire`] — a hand-rolled, length-prefixed, explicitly versioned
//!   binary protocol covering the full quote→commit epoch protocol:
//!   `MENU`, `QUOTE`, `COMMIT` (weight vectors included in the reply),
//!   `INFO` and `STATS`, plus typed `BUSY` and error frames.
//! * [`server`] — [`NimbusServer`]: a sharded thread-pool accept loop
//!   with bounded admission queues that shed load with `BUSY` instead of
//!   stalling, per-connection read/write timeouts, graceful shutdown that
//!   drains in-flight requests, and an atomic per-op stats registry.
//! * [`client`] — [`NimbusClient`]: a blocking connection with typed
//!   errors (`Busy` vs `Remote { code, .. }`), full timeouts, bounded
//!   [`RetryPolicy`] backoff on sheds and transient faults, and
//!   idempotent commits keyed by a client nonce so a retried purchase
//!   after a lost ACK is deduplicated by the broker's sale journal.
//! * [`loadgen`] — the N-threads × M-requests loopback load generator
//!   behind the `server_throughput` bench and `nimbus client load`.
//! * [`stats`] — [`StatsRegistry`]: lock-free counters and fixed-bucket
//!   latency histograms (p50/p99) served by `STATS`.
//!
//! ## Quickstart
//!
//! ```no_run
//! use nimbus_server::{ClientConfig, NimbusClient, NimbusServer, ServerConfig};
//! use nimbus_market::PurchaseRequest;
//! use std::sync::Arc;
//!
//! # fn doc(broker: nimbus_market::Broker) -> nimbus_server::Result<()> {
//! // Server side: the broker must have an open market.
//! let server = NimbusServer::start(
//!     Arc::new(broker),
//!     "acme-data",
//!     "127.0.0.1:0",
//!     ServerConfig::default(),
//! )?;
//! let addr = server.local_addr();
//!
//! // Client side: quote → commit, epochs checked end to end.
//! let mut client = NimbusClient::connect(addr, &ClientConfig::default())?;
//! let quote = client.quote(PurchaseRequest::ErrorBudget(0.05))?;
//! let sale = client.commit(&quote, quote.price)?;
//! assert_eq!(sale.weights.is_empty(), false);
//! server.shutdown();
//! # Ok(()) }
//! ```

pub mod client;
pub mod error;
pub mod loadgen;
pub mod server;
pub mod stats;
pub mod wire;

pub use client::{ClientConfig, NimbusClient, RetryPolicy};
pub use error::ServerError;
pub use loadgen::{run_load, LoadConfig, LoadMode, LoadReport};
pub use server::{NimbusServer, ServerConfig};
pub use stats::{render_prometheus, LatencyHistogram, Op, StatsRegistry};
pub use wire::{
    ErrorCode, InfoMsg, MenuMsg, OpStatsMsg, QuoteMsg, Request, Response, SaleMsg, StatsMsg,
};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, ServerError>;
