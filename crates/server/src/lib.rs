// Unit tests exercise failure paths where `unwrap`/`panic!` are the
// point; the serving-path hygiene lints apply to shipped code only.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::panic))]

//! # nimbus-server — the broker as a networked service
//!
//! The SIGMOD'19 Nimbus demo is a *service*: buyers drive live purchase
//! sessions against a running broker, not a library. This crate is that
//! serving layer, built on std TCP alone (the workspace vendors no async
//! runtime or serialization crates):
//!
//! * [`wire`] — a hand-rolled, length-prefixed, explicitly versioned
//!   binary protocol covering the full quote→commit epoch protocol:
//!   `MENU`, `QUOTE`, `COMMIT` (weight vectors included in the reply),
//!   `INFO` and `STATS`, plus typed `BUSY` and error frames. Protocol v3
//!   routes every call by listing name (`LISTINGS` enumerates the
//!   marketplace; `PUBLISH`/`RETIRE` drive the listing lifecycle live).
//!   Protocol v4 adds correlation ids for pipelining, `BATCH_COMMIT`
//!   (many sales, one frame, per-item status) and a streaming
//!   `MENU_STREAM`; v1–v3 peers keep working byte-for-byte against a
//!   configurable default listing.
//! * [`server`] — [`NimbusServer`]: a single readiness event loop
//!   (`epoll`/`poll(2)` via [`sys`], no async runtime) multiplexing every
//!   connection, dispatching complete frames onto sharded bounded job
//!   queues drained by CPU workers. Bounded queues shed load with `BUSY`
//!   instead of stalling; slow-loris and idle peers are shed by
//!   event-loop deadlines; graceful shutdown drains in-flight requests
//!   and checkpoints every listing journal; an atomic per-op stats
//!   registry records everything.
//! * [`client`] — [`NimbusClient`]: a blocking connection with typed
//!   errors (`Busy` vs `Remote { code, .. }`), full timeouts, bounded
//!   [`RetryPolicy`] backoff on sheds and transient faults, and
//!   idempotent commits keyed by a client nonce so a retried purchase
//!   after a lost ACK is deduplicated by the broker's sale journal.
//!   [`PipelinedClient`] keeps many correlated requests in flight on one
//!   connection; `buy_batch` amortizes commits over `BATCH_COMMIT`.
//! * [`loadgen`] — the N-threads × M-requests loopback load generator
//!   behind the `server_throughput` bench and `nimbus client load`,
//!   with pipelined/batched modes and p50/p99 latency reporting.
//! * [`stats`] — [`StatsRegistry`]: lock-free counters and fixed-bucket
//!   latency histograms (p50/p99) served by `STATS`.
//! * [`sys`] — the raw `epoll`/`poll(2)`/`rlimit` syscall shim the event
//!   loop runs on.
//!
//! ## Quickstart
//!
//! ```no_run
//! use nimbus_server::{ClientConfig, NimbusClient, NimbusServer, ServerConfig};
//! use nimbus_market::PurchaseRequest;
//! use std::sync::Arc;
//!
//! # fn doc(marketplace: nimbus_market::Marketplace) -> nimbus_server::Result<()> {
//! // Server side: a marketplace of published listings; the named
//! // default listing is what v1/v2 peers (no listing field on the
//! // wire) are routed to.
//! let server = NimbusServer::start(
//!     Arc::new(marketplace),
//!     "acme-data",
//!     "127.0.0.1:0",
//!     ServerConfig::default(),
//! )?;
//! let addr = server.local_addr();
//!
//! // Client side: quote → commit, epochs checked end to end. The
//! // `*_on` variants route explicitly by listing name.
//! let mut client = NimbusClient::connect(addr, &ClientConfig::default())?;
//! let quote = client.quote_on("acme-data", PurchaseRequest::ErrorBudget(0.05))?;
//! let sale = client.commit(&quote, quote.price)?;
//! assert_eq!(sale.weights.is_empty(), false);
//! server.shutdown();
//! # Ok(()) }
//! ```

pub mod client;
pub mod error;
mod event;
pub mod loadgen;
pub mod server;
pub mod stats;
pub mod sys;
pub mod wire;

pub use client::{ClientConfig, NimbusClient, PipelinedClient, RetryPolicy};
pub use error::ServerError;
pub use loadgen::{run_load, ListingLoad, LoadConfig, LoadMode, LoadReport};
pub use server::{NimbusServer, ServerConfig};
pub use stats::{render_prometheus, LatencyHistogram, Op, StatsRegistry};
pub use wire::{
    AccountMsg, BatchCommitMsg, BatchItemMsg, BatchOutcomeMsg, ErrorCode, InfoMsg, ListingMsg,
    ListingStatsMsg, ListingsMsg, MenuChunkMsg, MenuMsg, OpStatsMsg, QuoteMsg, Request, Response,
    SaleMsg, StatsMsg,
};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, ServerError>;
