//! Loopback load generator: N client threads × M requests against one
//! server, reporting throughput, latency quantiles and shed rate.
//!
//! Shared by the `server_throughput` bench, the `nimbus client load` CLI
//! subcommand and the end-to-end tests. Each thread owns its own
//! connection(s) and issues its requests; when a connection is shed
//! (`BUSY`) or fails, the thread reconnects and keeps going, counting
//! every outcome. With [`LoadConfig::busy_retries`] > 0, a shed request
//! is retried after honoring the server's `retry_after_ms` hint; retried
//! sheds are counted separately from final ones, and a request that is
//! shed then succeeds counts **once** in `ok` and zero times in `busy`
//! (see `run_request`'s unit tests). The report therefore reconciles
//! exactly: `attempted == ok + busy + budget_rejected + errors` and —
//! on the classic per-request path — the server's `busy_rejections`
//! counter equals `busy + busy_retried`; for [`LoadMode::Buy`] the
//! client-observed revenue can be checked against the server-side
//! ledger.
//!
//! # Buyer identity and budget sheds (wire v5)
//!
//! With [`LoadConfig::buyer`] set, every commit carries that buyer
//! identity and is metered against the listing's noise budget. A
//! `BUDGET_EXHAUSTED` rejection is **not** a `BUSY` shed and not a
//! generic error: it is deterministic (retrying cannot succeed), so it
//! is never retried and lands in [`LoadReport::budget_rejected`] — a
//! run that drains its buyer's budget reports exactly how much of the
//! offered load the server refused for exhaustion.
//!
//! # Pipelining and batching (wire v4)
//!
//! With [`LoadConfig::pipeline_depth`] > 1 each thread drives one
//! [`PipelinedClient`] with up to that many correlated requests in
//! flight. [`LoadMode::Buy`] additionally groups commits:
//! [`LoadConfig::batch_size`] quotes pipeline first, then one
//! `BATCH_COMMIT` frame redeems the window (one group-committed journal
//! write server-side). A shed `BATCH_COMMIT` is retried like any shed
//! request (its items carry nonces, so replays are deduplicated); if its
//! retry budget runs out, *every* request in the window counts as `busy`
//! — one shed frame, `batch_size` shed requests — so the server-side
//! `busy_rejections` equality above does not hold for batched runs.
//! The pipelined path targets the server's default listing; a non-empty
//! [`LoadConfig::mix`] falls back to the classic per-request path.
//!
//! # Idle connections
//!
//! [`LoadConfig::idle_connections`] extra sockets are opened before the
//! run and held silent until it ends — the 10k-connection regime of the
//! `server_throughput` bench. [`LoadReport::open_connections`] reports
//! how many sockets the run held open concurrently.
//!
//! # Per-listing traffic mix
//!
//! [`LoadConfig::mix`] drives the marketplace routing path: each entry is
//! a `(listing, weight)` pair, expanded into a deterministic ring that
//! request `i` of thread `t` indexes by `(t·M + i) mod ring.len()`, so a
//! mix of `[("a", 3), ("b", 1)]` sends 3 of every 4 requests to `"a"`.
//! An empty mix preserves the classic behavior: every request goes to the
//! server's default listing. [`LoadReport::per_listing`] breaks `ok` and
//! `revenue` down by listing so each ledger reconciles independently.

use crate::client::{ClientConfig, NimbusClient, PipelinedClient, RetryPolicy};
use crate::error::ServerError;
use crate::stats::LatencyHistogram;
use crate::wire::{BatchItemMsg, BatchOutcomeMsg, ErrorCode, QuoteMsg, Request, Response};
use crate::Result;
use nimbus_market::PurchaseRequest;
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What each load-generator request does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Read-only pricing: one `QUOTE` per request.
    Quote,
    /// Full purchase: `QUOTE` then `COMMIT` at the quoted price (or one
    /// shared `BATCH_COMMIT` per window when batching).
    Buy,
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client threads.
    pub threads: usize,
    /// Requests issued per thread.
    pub requests_per_thread: usize,
    /// Per-request mode.
    pub mode: LoadMode,
    /// Socket timeouts for every connection. The retry policy inside is
    /// overridden to [`RetryPolicy::none`]: the load generator does its
    /// own shed accounting and must see every `BUSY` individually.
    pub client: ClientConfig,
    /// Times a shed request is retried (after the server's
    /// `retry_after_ms` hint) before counting as a final `busy`. `0`
    /// preserves the classic one-shot accounting.
    pub busy_retries: u32,
    /// Weighted per-listing traffic mix. Empty = every request targets
    /// the server's default listing; entries with weight 0 are skipped.
    pub mix: Vec<(String, u32)>,
    /// Correlated requests kept in flight per thread (wire v4). `0` or
    /// `1` = classic blocking request/response.
    pub pipeline_depth: usize,
    /// Commits grouped into one `BATCH_COMMIT` frame per window
    /// ([`LoadMode::Buy`] on the pipelined path only). `0` or `1` =
    /// one `COMMIT` per request.
    pub batch_size: usize,
    /// Extra connections opened before the run and held silent until it
    /// ends, to measure serving latency under connection pressure.
    pub idle_connections: usize,
    /// Buyer identity attached to every commit (wire v5). `None` =
    /// anonymous commits that bypass budget accounting.
    pub buyer: Option<u64>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            threads: 4,
            requests_per_thread: 64,
            mode: LoadMode::Quote,
            client: ClientConfig::default(),
            busy_retries: 0,
            mix: Vec::new(),
            pipeline_depth: 1,
            batch_size: 1,
            idle_connections: 0,
            buyer: None,
        }
    }
}

/// One listing's slice of a [`LoadReport`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ListingLoad {
    /// Listing name (empty string = the server's default listing).
    pub listing: String,
    /// Requests that completed successfully against this listing.
    pub ok: u64,
    /// Client-observed revenue at this listing ([`LoadMode::Buy`] only).
    pub revenue: f64,
}

/// Aggregate outcome of one load run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    /// Requests attempted (`threads × requests_per_thread`).
    pub attempted: u64,
    /// Requests that completed successfully.
    pub ok: u64,
    /// Requests whose final outcome was the typed `BUSY` shed.
    pub busy: u64,
    /// `BUSY` sheds that were absorbed by a retry (the request itself
    /// went on to succeed or fail some other way).
    pub busy_retried: u64,
    /// Requests rejected with `BUDGET_EXHAUSTED` (wire v5): the buyer's
    /// noise budget could not cover the commit. Deterministic — never
    /// retried — and counted separately from `busy` and `errors`.
    pub budget_rejected: u64,
    /// Requests that failed any other way (timeouts, resets, remote errors).
    pub errors: u64,
    /// Sum of client-observed sale prices (only grows in [`LoadMode::Buy`]).
    pub revenue: f64,
    /// Per-listing breakdown of `ok`/`revenue`, in listing-name order.
    /// Empty when the run used no mix (all traffic on the default
    /// listing).
    pub per_listing: Vec<ListingLoad>,
    /// Sockets the run held open concurrently: one per worker thread
    /// plus every idle connection that opened successfully.
    pub open_connections: u64,
    /// Median successful-request latency (upper bucket bound, µs; 0 when
    /// nothing succeeded).
    pub p50_micros: u64,
    /// 99th-percentile successful-request latency (upper bucket bound,
    /// µs; 0 when nothing succeeded).
    pub p99_micros: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Successful requests per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.ok as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Fraction of attempts shed with `BUSY`.
    pub fn shed_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.busy as f64 / self.attempted as f64
        }
    }

    /// Fraction of attempts that succeeded. A request shed and then
    /// retried to success counts exactly once, as a success.
    pub fn ok_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.ok as f64 / self.attempted as f64
        }
    }
}

/// Final resolution of one load-generator request, after retries.
#[derive(Debug, Default, PartialEq)]
struct RequestOutcome {
    /// The request succeeded (exactly one of `ok`/`busy`/`error`).
    ok: bool,
    /// Sale price (`Buy`) or `0.0` (`Quote`) when `ok`.
    price: f64,
    /// The final outcome was a `BUSY` shed.
    busy: bool,
    /// The final outcome was a `BUDGET_EXHAUSTED` rejection.
    budget: bool,
    /// The final outcome was some other failure.
    error: bool,
    /// `BUSY` sheds absorbed by retries along the way.
    busy_retried: u64,
}

/// Resolves one request under the shed-retry budget. Every call of
/// `attempt` is one wire round trip; a `BUSY` with budget left sleeps
/// the server's hint and tries again. The outcome is **mutually
/// exclusive**: a request that was shed and then succeeded reports `ok`
/// (with its sheds in `busy_retried`), never both `ok` and `busy` —
/// this is what keeps `attempted == ok + busy + errors` exact.
fn run_request<F>(busy_retries: u32, mut attempt: F) -> RequestOutcome
where
    F: FnMut() -> Result<f64>,
{
    let mut outcome = RequestOutcome::default();
    let mut sheds_left = busy_retries;
    loop {
        match attempt() {
            Ok(price) => {
                outcome.ok = true;
                outcome.price = price;
                return outcome;
            }
            Err(ServerError::Busy { retry_after_ms }) => {
                if sheds_left > 0 {
                    sheds_left -= 1;
                    outcome.busy_retried += 1;
                    std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms).max(1)));
                    continue;
                }
                outcome.busy = true;
                return outcome;
            }
            // Budget exhaustion is deterministic: retrying cannot
            // succeed, so it resolves immediately regardless of the
            // shed-retry budget.
            Err(ServerError::Remote {
                code: ErrorCode::BudgetExhausted,
                ..
            }) => {
                outcome.budget = true;
                return outcome;
            }
            Err(_) => {
                outcome.error = true;
                return outcome;
            }
        }
    }
}

/// Folds one resolved request into the running report.
fn apply_outcome(report: &mut LoadReport, outcome: &RequestOutcome) {
    report.attempted += 1;
    report.busy_retried += outcome.busy_retried;
    if outcome.ok {
        report.ok += 1;
        // Wire-sourced price: never let a corrupt frame poison the
        // running revenue total.
        if outcome.price.is_finite() {
            report.revenue += outcome.price;
        }
    } else if outcome.busy {
        report.busy += 1;
    } else if outcome.budget {
        report.budget_rejected += 1;
    } else {
        report.errors += 1;
    }
}

/// The request issued for attempt `i` of thread `t`: a deterministic
/// spread over the menu support, same shape as the in-process throughput
/// bench.
fn request_for(thread: usize, i: usize, per_thread: usize) -> PurchaseRequest {
    PurchaseRequest::AtInverseNcp(1.0 + ((thread * per_thread + i) % 99) as f64)
}

/// Expands the weighted mix into a deterministic target ring. One `None`
/// entry (= the default listing) when the mix is empty or all-zero.
fn expand_mix(mix: &[(String, u32)]) -> Vec<Option<String>> {
    let mut ring = Vec::new();
    for (listing, weight) in mix {
        for _ in 0..*weight {
            ring.push(Some(listing.clone()));
        }
    }
    if ring.is_empty() {
        ring.push(None);
    }
    ring
}

/// The listing targeted by attempt `i` of thread `t`.
fn target_for(ring: &[Option<String>], thread: usize, i: usize, per_thread: usize) -> Option<&str> {
    let idx = (thread * per_thread + i) % ring.len().max(1);
    ring.get(idx).and_then(|t| t.as_deref())
}

/// Runs the load: `threads × requests_per_thread` requests against
/// `addr`, each thread on its own connection(s).
pub fn run_load(addr: SocketAddr, config: &LoadConfig) -> LoadReport {
    let ring = expand_mix(&config.mix);
    // One histogram shared by every thread: the buckets are atomic, so
    // recording through a shared reference needs no merge step.
    let latency = Arc::new(LatencyHistogram::default());
    // Idle connections open before the load starts and stay silent until
    // after it ends: the server must carry them while serving the real
    // traffic. They are opened from a small pool of threads (a loopback
    // handshake still costs ~1ms of kernel time, which would dominate a
    // 10k herd opened serially) and excluded from `elapsed`, which times
    // only the load itself.
    let idle: Vec<TcpStream> = if config.idle_connections == 0 {
        Vec::new()
    } else {
        let openers = 16.min(config.idle_connections);
        let per = config.idle_connections.div_ceil(openers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..openers)
                .map(|o| {
                    let count = per.min(config.idle_connections.saturating_sub(o * per));
                    scope.spawn(move || {
                        (0..count)
                            .filter_map(|_| {
                                TcpStream::connect_timeout(&addr, config.client.connect_timeout)
                                    .ok()
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap_or_default())
                .collect()
        })
    };
    let started = Instant::now();
    let pipelined = config.pipeline_depth > 1 && config.mix.is_empty();
    let per_thread: Vec<LoadReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.threads)
            .map(|t| {
                let ring = &ring;
                let latency = Arc::clone(&latency);
                scope.spawn(move || {
                    if pipelined {
                        thread_load_pipelined(addr, config, &latency, t)
                    } else {
                        thread_load(addr, config, ring, &latency, t)
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(report) => report,
                // Surface the worker's own panic payload instead of
                // minting a second, less informative one here.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut total = LoadReport {
        elapsed: started.elapsed(),
        open_connections: (config.threads + idle.len()) as u64,
        ..LoadReport::default()
    };
    drop(idle);
    let mut by_listing: BTreeMap<String, (u64, f64)> = BTreeMap::new();
    for r in per_thread {
        total.attempted += r.attempted;
        total.ok += r.ok;
        total.busy += r.busy;
        total.busy_retried += r.busy_retried;
        total.budget_rejected += r.budget_rejected;
        total.errors += r.errors;
        // nimbus-audit: allow(money-safety) — per-run totals were finiteness-guarded where each price was accumulated
        total.revenue += r.revenue;
        for slice in r.per_listing {
            let entry = by_listing.entry(slice.listing).or_insert((0, 0.0));
            entry.0 += slice.ok;
            // nimbus-audit: allow(money-safety) — per-listing slices carry revenue already guarded in the worker loop
            entry.1 += slice.revenue;
        }
    }
    total.per_listing = by_listing
        .into_iter()
        .map(|(listing, (ok, revenue))| ListingLoad {
            listing,
            ok,
            revenue,
        })
        .collect();
    if latency.count() > 0 {
        total.p50_micros = latency.quantile_upper_micros(0.5);
        total.p99_micros = latency.quantile_upper_micros(0.99);
    }
    total
}

/// Classic blocking path: one request at a time per thread.
fn thread_load(
    addr: SocketAddr,
    config: &LoadConfig,
    ring: &[Option<String>],
    latency: &LatencyHistogram,
    thread: usize,
) -> LoadReport {
    let mut report = LoadReport::default();
    let mut by_listing: BTreeMap<String, (u64, f64)> = BTreeMap::new();
    let mut client: Option<NimbusClient> = None;
    for i in 0..config.requests_per_thread {
        let target = target_for(ring, thread, i, config.requests_per_thread);
        let mut last_latency = Duration::ZERO;
        let outcome = run_request(config.busy_retries, || {
            let attempt_started = Instant::now();
            let result = attempt(&mut client, addr, config, target, thread, i);
            last_latency = attempt_started.elapsed();
            if result.is_err() {
                // The connection state is unknown after any failure;
                // reconnect before the next attempt.
                client = None;
            }
            result
        });
        if outcome.ok {
            latency.record(last_latency);
            if !config.mix.is_empty() {
                let entry = by_listing
                    .entry(target.unwrap_or("").to_string())
                    .or_insert((0, 0.0));
                entry.0 += 1;
                // Wire-sourced price: never let a corrupt frame poison
                // the per-listing revenue total.
                if outcome.price.is_finite() {
                    entry.1 += outcome.price;
                }
            }
        }
        apply_outcome(&mut report, &outcome);
    }
    report.per_listing = by_listing
        .into_iter()
        .map(|(listing, (ok, revenue))| ListingLoad {
            listing,
            ok,
            revenue,
        })
        .collect();
    report
}

/// One request on a cached connection (re-established on demand).
/// Returns the sale price for `Buy`, `0.0` for `Quote`.
fn attempt(
    client: &mut Option<NimbusClient>,
    addr: SocketAddr,
    config: &LoadConfig,
    target: Option<&str>,
    thread: usize,
    i: usize,
) -> Result<f64> {
    let conn = match client {
        Some(conn) => conn,
        None => {
            // Force off the client's internal retries: the generator
            // counts and paces every shed itself.
            let client_config = ClientConfig {
                retry: RetryPolicy::none(),
                ..config.client
            };
            let conn = client.insert(NimbusClient::connect(addr, &client_config)?);
            conn.set_buyer(config.buyer);
            conn
        }
    };
    let request = request_for(thread, i, config.requests_per_thread);
    match (config.mode, target) {
        (LoadMode::Quote, None) => {
            conn.quote(request)?;
            Ok(0.0)
        }
        (LoadMode::Quote, Some(listing)) => {
            conn.quote_on(listing, request)?;
            Ok(0.0)
        }
        (LoadMode::Buy, None) => Ok(conn.buy(request)?.price),
        (LoadMode::Buy, Some(listing)) => Ok(conn.buy_on(listing, request)?.price),
    }
}

/// splitmix64 finalizer — the generator's nonce stream for batched
/// commits (must never repeat within a run, or the journal dedups a
/// genuine purchase).
fn splitmix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pipelined (wire v4) path: up to `pipeline_depth` quotes in flight on
/// one connection; `Buy` windows redeem through `BATCH_COMMIT`.
fn thread_load_pipelined(
    addr: SocketAddr,
    config: &LoadConfig,
    latency: &LatencyHistogram,
    thread: usize,
) -> LoadReport {
    let mut report = LoadReport::default();
    let total = config.requests_per_thread;
    let window = match config.mode {
        LoadMode::Quote => total.max(1),
        LoadMode::Buy => config.batch_size.max(1),
    };
    let client_config = ClientConfig {
        retry: RetryPolicy::none(),
        ..config.client
    };
    let mut conn = match PipelinedClient::connect(addr, &client_config) {
        Ok(conn) => conn,
        Err(_) => {
            report.attempted = total as u64;
            report.errors = total as u64;
            return report;
        }
    };
    // Seeded per thread, chained across windows: every nonce in the run
    // is distinct.
    let mut nonce_state = splitmix((thread as u64) ^ 0xD1B5_4A32_D192_ED03);
    let mut issued = 0usize;
    while issued < total {
        let batch = window.min(total - issued);
        let quotes = pipeline_quotes(
            &mut conn,
            config,
            latency,
            &mut report,
            thread,
            issued,
            batch,
        );
        issued += batch;
        let Some(quotes) = quotes else {
            // Transport death: everything not yet resolved (including
            // all still-unissued requests) counts as an error.
            let resolved = report.ok + report.busy + report.budget_rejected + report.errors;
            report.attempted = total as u64;
            report.errors += (total as u64).saturating_sub(resolved);
            return report;
        };
        if config.mode == LoadMode::Buy
            && !quotes.is_empty()
            && !batch_commit_window(
                &mut conn,
                config,
                latency,
                &mut report,
                &mut nonce_state,
                &quotes,
            )
        {
            let resolved = report.ok + report.busy + report.budget_rejected + report.errors;
            report.attempted = total as u64;
            report.errors += (total as u64).saturating_sub(resolved);
            return report;
        }
    }
    report.attempted = total as u64;
    report
}

/// Pipelines `count` quote requests starting at request index `base`,
/// resolving each as it answers (responses may arrive out of order). In
/// `Quote` mode a successful quote is a successful request; in `Buy`
/// mode the quotes come back for the window's `BATCH_COMMIT` and the
/// requests they price stay unresolved until it answers. A shed quote
/// with retry budget left is re-issued immediately under a fresh
/// correlation id — the pipeline keeps moving, so the `retry_after_ms`
/// hint is not slept on here. Returns `None` on transport death.
fn pipeline_quotes(
    conn: &mut PipelinedClient,
    config: &LoadConfig,
    latency: &LatencyHistogram,
    report: &mut LoadReport,
    thread: usize,
    base: usize,
    count: usize,
) -> Option<Vec<QuoteMsg>> {
    let depth = config.pipeline_depth.max(1);
    // corr id -> (request index, sheds left, send time)
    let mut pending: BTreeMap<u64, (usize, u32, Instant)> = BTreeMap::new();
    let mut quotes = Vec::new();
    let mut next = 0usize;
    let mut resolved = 0usize;
    while resolved < count {
        while next < count && pending.len() < depth {
            let corr = send_quote(conn, config, thread, base + next)?;
            pending.insert(corr, (next, config.busy_retries, Instant::now()));
            next += 1;
        }
        let (corr, response) = conn.recv().ok()?;
        let Some((idx, sheds_left, sent_at)) = pending.remove(&corr) else {
            continue; // unmatched id (e.g. a corr-0 loop-originated shed)
        };
        match response {
            Response::Quote(quote) => {
                latency.record(sent_at.elapsed());
                if config.mode == LoadMode::Quote {
                    report.ok += 1;
                } else {
                    quotes.push(quote);
                }
                resolved += 1;
            }
            Response::Busy { .. } if sheds_left > 0 => {
                report.busy_retried += 1;
                let corr = send_quote(conn, config, thread, base + idx)?;
                pending.insert(corr, (idx, sheds_left - 1, Instant::now()));
            }
            Response::Busy { .. } => {
                report.busy += 1;
                resolved += 1;
            }
            _ => {
                report.errors += 1;
                resolved += 1;
            }
        }
    }
    Some(quotes)
}

/// Sends one default-listing quote for request index `i` of `thread`,
/// returning its correlation id (`None` on transport death).
fn send_quote(
    conn: &mut PipelinedClient,
    config: &LoadConfig,
    thread: usize,
    i: usize,
) -> Option<u64> {
    let request = Request::Quote {
        listing: None,
        request: request_for(thread, i, config.requests_per_thread),
    };
    conn.send(&request).ok()
}

/// Redeems one window of quotes with a single idempotent `BATCH_COMMIT`.
/// Returns `false` on transport death.
fn batch_commit_window(
    conn: &mut PipelinedClient,
    config: &LoadConfig,
    latency: &LatencyHistogram,
    report: &mut LoadReport,
    nonce_state: &mut u64,
    quotes: &[QuoteMsg],
) -> bool {
    let items: Vec<BatchItemMsg> = quotes
        .iter()
        .map(|q| {
            *nonce_state = splitmix(*nonce_state);
            BatchItemMsg {
                x: q.x,
                snapshot_epoch: q.snapshot_epoch,
                payment: q.price,
                nonce: Some(*nonce_state),
                buyer: config.buyer,
            }
        })
        .collect();
    let request = Request::BatchCommit {
        listing: None,
        items,
    };
    let mut sheds_left = config.busy_retries;
    loop {
        let sent_at = Instant::now();
        let Ok(corr) = conn.send(&request) else {
            return false;
        };
        let outcome = loop {
            let Ok((got, response)) = conn.recv() else {
                return false;
            };
            if got == corr {
                break response;
            }
        };
        match outcome {
            Response::BatchCommit(batch) => {
                latency.record(sent_at.elapsed());
                for item in batch.items {
                    match item {
                        BatchOutcomeMsg::Sale(sale) => {
                            report.ok += 1;
                            // Wire-sourced price: never let a corrupt
                            // frame poison the running revenue total.
                            if sale.price.is_finite() {
                                report.revenue += sale.price;
                            }
                        }
                        BatchOutcomeMsg::Error {
                            code: ErrorCode::BudgetExhausted,
                            ..
                        } => report.budget_rejected += 1,
                        BatchOutcomeMsg::Error { .. } => report.errors += 1,
                    }
                }
                return true;
            }
            Response::Busy { retry_after_ms } if sheds_left > 0 => {
                // The items carry nonces, so a full replay is safe: the
                // journal dedups anything that did land.
                sheds_left -= 1;
                report.busy_retried += 1;
                std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms).max(1)));
            }
            Response::Busy { .. } => {
                // One shed frame, `quotes.len()` shed requests.
                report.busy += quotes.len() as u64;
                return true;
            }
            _ => {
                report.errors += quotes.len() as u64;
                return true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_mix_targets_the_default_listing() {
        let ring = expand_mix(&[]);
        assert_eq!(ring, vec![None]);
        assert_eq!(target_for(&ring, 3, 17, 64), None);
    }

    #[test]
    fn weighted_mix_expands_proportionally() {
        let ring = expand_mix(&[("a".into(), 3), ("zero".into(), 0), ("b".into(), 1)]);
        assert_eq!(ring.len(), 4);
        let a = ring.iter().filter(|t| t.as_deref() == Some("a")).count();
        let b = ring.iter().filter(|t| t.as_deref() == Some("b")).count();
        assert_eq!((a, b), (3, 1));
        // Deterministic: the same (thread, i) always targets the same listing.
        assert_eq!(target_for(&ring, 1, 2, 8), target_for(&ring, 1, 2, 8));
        // Across a full cycle every entry is hit per its weight.
        let hits = (0..8)
            .filter(|&i| target_for(&ring, 0, i, 8) == Some("b"))
            .count();
        assert_eq!(hits, 2);
    }

    #[test]
    fn busy_then_success_counts_once_as_ok() {
        // The accounting bug this guards against: a request shed once and
        // then served must not show up in both `busy` and `ok`.
        let mut calls = 0;
        let outcome = run_request(2, || {
            calls += 1;
            if calls == 1 {
                Err(ServerError::Busy { retry_after_ms: 1 })
            } else {
                Ok(2.5)
            }
        });
        assert!(outcome.ok);
        assert!(!outcome.busy);
        assert!(!outcome.error);
        assert_eq!(outcome.busy_retried, 1);
        assert_eq!(outcome.price, 2.5);

        let mut report = LoadReport::default();
        apply_outcome(&mut report, &outcome);
        assert_eq!(
            (
                report.attempted,
                report.ok,
                report.busy,
                report.busy_retried
            ),
            (1, 1, 0, 1)
        );
        assert_eq!(report.attempted, report.ok + report.busy + report.errors);
        assert!((report.ok_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn busy_budget_exhaustion_is_a_final_shed() {
        let outcome = run_request(1, || Err::<f64, _>(ServerError::Busy { retry_after_ms: 1 }));
        assert!(outcome.busy);
        assert!(!outcome.ok);
        assert_eq!(outcome.busy_retried, 1);

        let mut report = LoadReport::default();
        apply_outcome(&mut report, &outcome);
        assert_eq!((report.ok, report.busy, report.busy_retried), (0, 1, 1));
        assert_eq!(report.attempted, report.ok + report.busy + report.errors);
    }

    #[test]
    fn transport_errors_resolve_without_retry() {
        let mut calls = 0;
        let outcome = run_request(3, || {
            calls += 1;
            Err::<f64, _>(ServerError::ConnectionClosed)
        });
        assert_eq!(calls, 1); // only BUSY is retried
        assert!(outcome.error);

        let mut report = LoadReport::default();
        apply_outcome(&mut report, &outcome);
        assert_eq!((report.ok, report.busy, report.errors), (0, 0, 1));
    }
}
