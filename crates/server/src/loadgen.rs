//! Loopback load generator: N client threads × M requests against one
//! server, reporting throughput and admission-control shed rate.
//!
//! Shared by the `server_throughput` bench, the `nimbus client load` CLI
//! subcommand and the end-to-end tests. Each thread opens its own
//! connection and issues its requests back to back; when a connection is
//! shed (`BUSY`) or fails, the thread reconnects and keeps going, counting
//! every outcome. With [`LoadConfig::busy_retries`] > 0, a shed request
//! is retried after honoring the server's `retry_after_ms` hint; retried
//! sheds are counted separately from final ones. The report therefore
//! reconciles exactly: `attempted == ok + busy + errors` and the server's
//! `busy_rejections` counter equals `busy + busy_retried`; for
//! [`LoadMode::Buy`] the client-observed revenue can be checked against
//! the server-side ledger.
//!
//! # Per-listing traffic mix
//!
//! [`LoadConfig::mix`] drives the marketplace routing path: each entry is
//! a `(listing, weight)` pair, expanded into a deterministic ring that
//! request `i` of thread `t` indexes by `(t·M + i) mod ring.len()`, so a
//! mix of `[("a", 3), ("b", 1)]` sends 3 of every 4 requests to `"a"`.
//! An empty mix preserves the classic behavior: every request goes to the
//! server's default listing. [`LoadReport::per_listing`] breaks `ok` and
//! `revenue` down by listing so each ledger reconciles independently.

use crate::client::{ClientConfig, NimbusClient, RetryPolicy};
use crate::error::ServerError;
use crate::Result;
use nimbus_market::PurchaseRequest;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// What each load-generator request does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Read-only pricing: one `QUOTE` per request.
    Quote,
    /// Full purchase: `QUOTE` then `COMMIT` at the quoted price.
    Buy,
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client threads.
    pub threads: usize,
    /// Requests issued per thread.
    pub requests_per_thread: usize,
    /// Per-request mode.
    pub mode: LoadMode,
    /// Socket timeouts for every connection. The retry policy inside is
    /// overridden to [`RetryPolicy::none`]: the load generator does its
    /// own shed accounting and must see every `BUSY` individually.
    pub client: ClientConfig,
    /// Times a shed request is retried (after the server's
    /// `retry_after_ms` hint) before counting as a final `busy`. `0`
    /// preserves the classic one-shot accounting.
    pub busy_retries: u32,
    /// Weighted per-listing traffic mix. Empty = every request targets
    /// the server's default listing; entries with weight 0 are skipped.
    pub mix: Vec<(String, u32)>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            threads: 4,
            requests_per_thread: 64,
            mode: LoadMode::Quote,
            client: ClientConfig::default(),
            busy_retries: 0,
            mix: Vec::new(),
        }
    }
}

/// One listing's slice of a [`LoadReport`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ListingLoad {
    /// Listing name (empty string = the server's default listing).
    pub listing: String,
    /// Requests that completed successfully against this listing.
    pub ok: u64,
    /// Client-observed revenue at this listing ([`LoadMode::Buy`] only).
    pub revenue: f64,
}

/// Aggregate outcome of one load run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    /// Requests attempted (`threads × requests_per_thread`).
    pub attempted: u64,
    /// Requests that completed successfully.
    pub ok: u64,
    /// Requests whose final outcome was the typed `BUSY` shed.
    pub busy: u64,
    /// `BUSY` sheds that were absorbed by a retry (the request itself
    /// went on to succeed or fail some other way).
    pub busy_retried: u64,
    /// Requests that failed any other way (timeouts, resets, remote errors).
    pub errors: u64,
    /// Sum of client-observed sale prices (only grows in [`LoadMode::Buy`]).
    pub revenue: f64,
    /// Per-listing breakdown of `ok`/`revenue`, in listing-name order.
    /// Empty when the run used no mix (all traffic on the default
    /// listing).
    pub per_listing: Vec<ListingLoad>,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Successful requests per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.ok as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Fraction of attempts shed with `BUSY`.
    pub fn shed_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.busy as f64 / self.attempted as f64
        }
    }
}

/// The request issued for attempt `i` of thread `t`: a deterministic
/// spread over the menu support, same shape as the in-process throughput
/// bench.
fn request_for(thread: usize, i: usize, per_thread: usize) -> PurchaseRequest {
    PurchaseRequest::AtInverseNcp(1.0 + ((thread * per_thread + i) % 99) as f64)
}

/// Expands the weighted mix into a deterministic target ring. One `None`
/// entry (= the default listing) when the mix is empty or all-zero.
fn expand_mix(mix: &[(String, u32)]) -> Vec<Option<String>> {
    let mut ring = Vec::new();
    for (listing, weight) in mix {
        for _ in 0..*weight {
            ring.push(Some(listing.clone()));
        }
    }
    if ring.is_empty() {
        ring.push(None);
    }
    ring
}

/// The listing targeted by attempt `i` of thread `t`.
fn target_for(ring: &[Option<String>], thread: usize, i: usize, per_thread: usize) -> Option<&str> {
    let idx = (thread * per_thread + i) % ring.len().max(1);
    ring.get(idx).and_then(|t| t.as_deref())
}

/// Runs the load: `threads × requests_per_thread` requests against
/// `addr`, each thread on its own connection(s).
pub fn run_load(addr: SocketAddr, config: &LoadConfig) -> LoadReport {
    let started = Instant::now();
    let ring = expand_mix(&config.mix);
    let per_thread: Vec<LoadReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.threads)
            .map(|t| {
                let ring = &ring;
                scope.spawn(move || thread_load(addr, config, ring, t))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(report) => report,
                // Surface the worker's own panic payload instead of
                // minting a second, less informative one here.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut total = LoadReport {
        elapsed: started.elapsed(),
        ..LoadReport::default()
    };
    let mut by_listing: BTreeMap<String, (u64, f64)> = BTreeMap::new();
    for r in per_thread {
        total.attempted += r.attempted;
        total.ok += r.ok;
        total.busy += r.busy;
        total.busy_retried += r.busy_retried;
        total.errors += r.errors;
        total.revenue += r.revenue;
        for slice in r.per_listing {
            let entry = by_listing.entry(slice.listing).or_insert((0, 0.0));
            entry.0 += slice.ok;
            entry.1 += slice.revenue;
        }
    }
    total.per_listing = by_listing
        .into_iter()
        .map(|(listing, (ok, revenue))| ListingLoad {
            listing,
            ok,
            revenue,
        })
        .collect();
    total
}

fn thread_load(
    addr: SocketAddr,
    config: &LoadConfig,
    ring: &[Option<String>],
    thread: usize,
) -> LoadReport {
    let mut report = LoadReport::default();
    let mut by_listing: BTreeMap<String, (u64, f64)> = BTreeMap::new();
    let mut client: Option<NimbusClient> = None;
    for i in 0..config.requests_per_thread {
        report.attempted += 1;
        let target = target_for(ring, thread, i, config.requests_per_thread);
        let mut sheds_left = config.busy_retries;
        loop {
            let outcome = attempt(&mut client, addr, config, target, thread, i);
            match outcome {
                Ok(price) => {
                    report.ok += 1;
                    report.revenue += price;
                    if !config.mix.is_empty() {
                        let entry = by_listing
                            .entry(target.unwrap_or("").to_string())
                            .or_insert((0, 0.0));
                        entry.0 += 1;
                        entry.1 += price;
                    }
                    break;
                }
                Err(e) => {
                    // The connection state is unknown after any failure;
                    // reconnect before the next attempt.
                    client = None;
                    if let ServerError::Busy { retry_after_ms } = e {
                        if sheds_left > 0 {
                            sheds_left -= 1;
                            report.busy_retried += 1;
                            std::thread::sleep(Duration::from_millis(
                                u64::from(retry_after_ms).max(1),
                            ));
                            continue;
                        }
                        report.busy += 1;
                    } else {
                        report.errors += 1;
                    }
                    break;
                }
            }
        }
    }
    report.per_listing = by_listing
        .into_iter()
        .map(|(listing, (ok, revenue))| ListingLoad {
            listing,
            ok,
            revenue,
        })
        .collect();
    report
}

/// One request on a cached connection (re-established on demand).
/// Returns the sale price for `Buy`, `0.0` for `Quote`.
fn attempt(
    client: &mut Option<NimbusClient>,
    addr: SocketAddr,
    config: &LoadConfig,
    target: Option<&str>,
    thread: usize,
    i: usize,
) -> Result<f64> {
    let conn = match client {
        Some(conn) => conn,
        None => {
            // Force off the client's internal retries: the generator
            // counts and paces every shed itself.
            let config = ClientConfig {
                retry: RetryPolicy::none(),
                ..config.client
            };
            client.insert(NimbusClient::connect(addr, &config)?)
        }
    };
    let request = request_for(thread, i, config.requests_per_thread);
    match (config.mode, target) {
        (LoadMode::Quote, None) => {
            conn.quote(request)?;
            Ok(0.0)
        }
        (LoadMode::Quote, Some(listing)) => {
            conn.quote_on(listing, request)?;
            Ok(0.0)
        }
        (LoadMode::Buy, None) => Ok(conn.buy(request)?.price),
        (LoadMode::Buy, Some(listing)) => Ok(conn.buy_on(listing, request)?.price),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_mix_targets_the_default_listing() {
        let ring = expand_mix(&[]);
        assert_eq!(ring, vec![None]);
        assert_eq!(target_for(&ring, 3, 17, 64), None);
    }

    #[test]
    fn weighted_mix_expands_proportionally() {
        let ring = expand_mix(&[("a".into(), 3), ("zero".into(), 0), ("b".into(), 1)]);
        assert_eq!(ring.len(), 4);
        let a = ring.iter().filter(|t| t.as_deref() == Some("a")).count();
        let b = ring.iter().filter(|t| t.as_deref() == Some("b")).count();
        assert_eq!((a, b), (3, 1));
        // Deterministic: the same (thread, i) always targets the same listing.
        assert_eq!(target_for(&ring, 1, 2, 8), target_for(&ring, 1, 2, 8));
        // Across a full cycle every entry is hit per its weight.
        let hits = (0..8)
            .filter(|&i| target_for(&ring, 0, i, 8) == Some("b"))
            .count();
        assert_eq!(hits, 2);
    }
}
