//! Loopback load generator: N client threads × M requests against one
//! server, reporting throughput and admission-control shed rate.
//!
//! Shared by the `server_throughput` bench, the `nimbus client load` CLI
//! subcommand and the end-to-end tests. Each thread opens its own
//! connection and issues its requests back to back; when a connection is
//! shed (`BUSY`) or fails, the thread reconnects and keeps going, counting
//! every outcome. With [`LoadConfig::busy_retries`] > 0, a shed request
//! is retried after honoring the server's `retry_after_ms` hint; retried
//! sheds are counted separately from final ones. The report therefore
//! reconciles exactly: `attempted == ok + busy + errors` and the server's
//! `busy_rejections` counter equals `busy + busy_retried`; for
//! [`LoadMode::Buy`] the client-observed revenue can be checked against
//! the server-side ledger.

use crate::client::{ClientConfig, NimbusClient, RetryPolicy};
use crate::error::ServerError;
use crate::Result;
use nimbus_market::PurchaseRequest;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// What each load-generator request does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Read-only pricing: one `QUOTE` per request.
    Quote,
    /// Full purchase: `QUOTE` then `COMMIT` at the quoted price.
    Buy,
}

/// Load-generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Concurrent client threads.
    pub threads: usize,
    /// Requests issued per thread.
    pub requests_per_thread: usize,
    /// Per-request mode.
    pub mode: LoadMode,
    /// Socket timeouts for every connection. The retry policy inside is
    /// overridden to [`RetryPolicy::none`]: the load generator does its
    /// own shed accounting and must see every `BUSY` individually.
    pub client: ClientConfig,
    /// Times a shed request is retried (after the server's
    /// `retry_after_ms` hint) before counting as a final `busy`. `0`
    /// preserves the classic one-shot accounting.
    pub busy_retries: u32,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            threads: 4,
            requests_per_thread: 64,
            mode: LoadMode::Quote,
            client: ClientConfig::default(),
            busy_retries: 0,
        }
    }
}

/// Aggregate outcome of one load run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LoadReport {
    /// Requests attempted (`threads × requests_per_thread`).
    pub attempted: u64,
    /// Requests that completed successfully.
    pub ok: u64,
    /// Requests whose final outcome was the typed `BUSY` shed.
    pub busy: u64,
    /// `BUSY` sheds that were absorbed by a retry (the request itself
    /// went on to succeed or fail some other way).
    pub busy_retried: u64,
    /// Requests that failed any other way (timeouts, resets, remote errors).
    pub errors: u64,
    /// Sum of client-observed sale prices (only grows in [`LoadMode::Buy`]).
    pub revenue: f64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Successful requests per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.ok as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Fraction of attempts shed with `BUSY`.
    pub fn shed_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.busy as f64 / self.attempted as f64
        }
    }
}

/// The request issued for attempt `i` of thread `t`: a deterministic
/// spread over the menu support, same shape as the in-process throughput
/// bench.
fn request_for(thread: usize, i: usize, per_thread: usize) -> PurchaseRequest {
    PurchaseRequest::AtInverseNcp(1.0 + ((thread * per_thread + i) % 99) as f64)
}

/// Runs the load: `threads × requests_per_thread` requests against
/// `addr`, each thread on its own connection(s).
pub fn run_load(addr: SocketAddr, config: &LoadConfig) -> LoadReport {
    let started = Instant::now();
    let per_thread: Vec<LoadReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.threads)
            .map(|t| scope.spawn(move || thread_load(addr, config, t)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(report) => report,
                // Surface the worker's own panic payload instead of
                // minting a second, less informative one here.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut total = LoadReport {
        elapsed: started.elapsed(),
        ..LoadReport::default()
    };
    for r in per_thread {
        total.attempted += r.attempted;
        total.ok += r.ok;
        total.busy += r.busy;
        total.busy_retried += r.busy_retried;
        total.errors += r.errors;
        total.revenue += r.revenue;
    }
    total
}

fn thread_load(addr: SocketAddr, config: &LoadConfig, thread: usize) -> LoadReport {
    let mut report = LoadReport::default();
    let mut client: Option<NimbusClient> = None;
    for i in 0..config.requests_per_thread {
        report.attempted += 1;
        let mut sheds_left = config.busy_retries;
        loop {
            let outcome = attempt(&mut client, addr, config, thread, i);
            match outcome {
                Ok(price) => {
                    report.ok += 1;
                    report.revenue += price;
                    break;
                }
                Err(e) => {
                    // The connection state is unknown after any failure;
                    // reconnect before the next attempt.
                    client = None;
                    if let ServerError::Busy { retry_after_ms } = e {
                        if sheds_left > 0 {
                            sheds_left -= 1;
                            report.busy_retried += 1;
                            std::thread::sleep(Duration::from_millis(
                                u64::from(retry_after_ms).max(1),
                            ));
                            continue;
                        }
                        report.busy += 1;
                    } else {
                        report.errors += 1;
                    }
                    break;
                }
            }
        }
    }
    report
}

/// One request on a cached connection (re-established on demand).
/// Returns the sale price for `Buy`, `0.0` for `Quote`.
fn attempt(
    client: &mut Option<NimbusClient>,
    addr: SocketAddr,
    config: &LoadConfig,
    thread: usize,
    i: usize,
) -> Result<f64> {
    let conn = match client {
        Some(conn) => conn,
        None => {
            // Force off the client's internal retries: the generator
            // counts and paces every shed itself.
            let config = ClientConfig {
                retry: RetryPolicy::none(),
                ..config.client
            };
            client.insert(NimbusClient::connect(addr, &config)?)
        }
    };
    let request = request_for(thread, i, config.requests_per_thread);
    match config.mode {
        LoadMode::Quote => {
            conn.quote(request)?;
            Ok(0.0)
        }
        LoadMode::Buy => Ok(conn.buy(request)?.price),
    }
}
