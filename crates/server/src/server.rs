//! The broker service: a sharded thread-pool TCP server over std.
//!
//! # Architecture
//!
//! ```text
//!                 ┌─────────────┐      shard 0: bounded queue ─ workers
//!   TCP accept ──▶│ accept loop │─┬──▶ shard 1: bounded queue ─ workers
//!   (non-block    └─────────────┘ │            …
//!    poll loop)        │          └──▶ shard K: bounded queue ─ workers
//!                      └── queue full ⇒ typed BUSY frame + close
//! ```
//!
//! * **Sharded admission.** Accepted connections round-robin onto `K`
//!   shards, each a bounded `Mutex<VecDeque<TcpStream>> + Condvar` queue
//!   drained by its own worker threads. Sharding keeps queue locks short
//!   and independent; a stall in one shard's workers cannot block
//!   admission to the others.
//! * **Load shedding, not stalling.** When a shard's queue is at
//!   capacity the connection is *shed*: a detached rejector writes one
//!   typed `BUSY` frame, drains the peer briefly (so the frame survives
//!   the close on loopback), and hangs up. The accept loop never blocks
//!   on a slow client, and a flood beyond `shards × queue_capacity`
//!   resolves as explicit `BUSY` responses instead of unbounded queueing.
//! * **Timeouts everywhere.** Every served connection gets read and write
//!   timeouts, so a dead or byzantine peer costs a worker at most one
//!   timeout interval; shed connections use an even shorter drain timeout.
//! * **Graceful shutdown.** [`NimbusServer::shutdown`] flips one atomic
//!   flag. The accept loop exits at its next poll; workers finish the
//!   request currently in flight (responses are never truncated), answer
//!   queued-but-unserved connections with a `ShuttingDown` error frame,
//!   and join. Total shutdown time is bounded by the read timeout.
//! * **Stats.** Every handled request lands in the shared
//!   [`StatsRegistry`] (atomic counters + fixed-bucket latency
//!   histograms), served back over the wire by `STATS`.
//!
//! The market side is exactly the in-process API: requests resolve their
//! listing through [`Marketplace::route`] (one atomic load, no lock),
//! `MENU`/`QUOTE` are lock-free snapshot reads, and `COMMIT` routes
//! through [`Broker::commit_at`] and therefore gets the same epoch check,
//! payment validation and price re-derivation as a local caller. A
//! request that names no listing (every v1/v2 request, and any v3 request
//! with an empty listing field) resolves to the server's configured
//! *default listing*. The `PUBLISH`/`RETIRE` admin opcodes drive the
//! marketplace's listing lifecycle on the live server.
//!
//! [`Broker::commit_at`]: nimbus_market::Broker::commit_at
//! [`Marketplace::route`]: nimbus_market::Marketplace::route

use crate::error::ServerError;
use crate::stats::{Op, StatsRegistry};
use crate::wire::{
    self, ErrorCode, InfoMsg, ListingMsg, ListingStatsMsg, ListingsMsg, MenuMsg, QuoteMsg, Request,
    Response, SaleMsg,
};
use crate::Result;
use nimbus_market::{Marketplace, Quote};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Cap on concurrently detached rejector threads; sheds beyond it are
/// dropped without the courtesy `BUSY` frame (the peer sees a reset).
const MAX_REJECTORS: usize = 256;

/// Server tuning knobs, validated by [`NimbusServer::start`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Number of admission shards (`≥ 1`).
    pub shards: usize,
    /// Worker threads per shard (`≥ 1`).
    pub workers_per_shard: usize,
    /// Pending-connection bound per shard (`≥ 1`); beyond it, shed.
    pub queue_capacity: usize,
    /// Per-connection read timeout (also bounds shutdown latency).
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Accept-loop poll interval while the listener is idle.
    pub accept_poll: Duration,
    /// Artificial service time per request, for load and shedding tests.
    pub handle_delay: Option<Duration>,
    /// Back-off hint carried in `BUSY` frames: how long a shed client
    /// should wait before retrying. Purely advisory; milliseconds on the
    /// wire (saturating at `u32::MAX` ms).
    pub retry_after_hint: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 2,
            workers_per_shard: 2,
            queue_capacity: 16,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            accept_poll: Duration::from_millis(2),
            handle_delay: None,
            retry_after_hint: Duration::from_millis(25),
        }
    }
}

/// One admission shard: a bounded queue of accepted connections.
struct Shard {
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
}

struct Inner {
    marketplace: Arc<Marketplace>,
    default_listing: String,
    config: ServerConfig,
    stats: Arc<StatsRegistry>,
    stop: AtomicBool,
    shards: Vec<Shard>,
    rejectors: AtomicUsize,
}

/// A running broker service bound to a TCP address.
///
/// Dropping the handle shuts the server down gracefully (equivalent to
/// [`NimbusServer::shutdown`]).
pub struct NimbusServer {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl NimbusServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `marketplace` under `config`. `default_listing` names the listing
    /// that unscoped requests (and every v1/v2 peer) resolve to; it must
    /// exist and be published when the server starts.
    pub fn start(
        marketplace: Arc<Marketplace>,
        default_listing: impl Into<String>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<NimbusServer> {
        if config.shards < 1 || config.workers_per_shard < 1 || config.queue_capacity < 1 {
            return Err(ServerError::InvalidConfig {
                reason: format!(
                    "shards ({}), workers_per_shard ({}) and queue_capacity ({}) must all be ≥ 1",
                    config.shards, config.workers_per_shard, config.queue_capacity
                ),
            });
        }
        if config.read_timeout.is_zero()
            || config.write_timeout.is_zero()
            || config.accept_poll.is_zero()
        {
            return Err(ServerError::InvalidConfig {
                reason: "timeouts and the accept poll interval must be non-zero".to_string(),
            });
        }
        let default_listing = default_listing.into();
        // The default listing is the compatibility anchor for v1/v2
        // peers: it must be resolvable and serving before we accept.
        marketplace.route(&default_listing)?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let inner = Arc::new(Inner {
            marketplace,
            default_listing,
            config,
            stats: Arc::new(StatsRegistry::new()),
            stop: AtomicBool::new(false),
            shards: (0..config.shards)
                .map(|_| Shard {
                    queue: Mutex::new(VecDeque::new()),
                    available: Condvar::new(),
                })
                .collect(),
            rejectors: AtomicUsize::new(0),
        });

        let mut workers = Vec::with_capacity(config.shards * config.workers_per_shard);
        let mut spawn_err: Option<std::io::Error> = None;
        'spawn: for shard_idx in 0..config.shards {
            for worker_idx in 0..config.workers_per_shard {
                let inner = inner.clone();
                let spawned = std::thread::Builder::new()
                    .name(format!("nimbus-worker-{shard_idx}-{worker_idx}"))
                    .spawn(move || worker_loop(&inner, shard_idx));
                match spawned {
                    Ok(handle) => workers.push(handle),
                    Err(e) => {
                        spawn_err = Some(e);
                        break 'spawn;
                    }
                }
            }
        }
        let accept = if spawn_err.is_none() {
            let inner = inner.clone();
            let spawned = std::thread::Builder::new()
                .name("nimbus-accept".to_string())
                .spawn(move || accept_loop(&inner, listener));
            match spawned {
                Ok(handle) => Some(handle),
                Err(e) => {
                    spawn_err = Some(e);
                    None
                }
            }
        } else {
            None
        };
        if let Some(e) = spawn_err {
            // Unwind the partial spawn: wake and join whatever started, so
            // no orphaned worker outlives the failed constructor.
            inner.stop.store(true, Ordering::SeqCst);
            for shard in &inner.shards {
                shard.available.notify_all();
            }
            for handle in workers {
                let _ = handle.join();
            }
            return Err(e.into());
        }

        Ok(NimbusServer {
            inner,
            local_addr,
            accept,
            workers,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared stats registry (same counters `STATS` serves).
    pub fn stats(&self) -> Arc<StatsRegistry> {
        self.inner.stats.clone()
    }

    /// The marketplace being served.
    pub fn marketplace(&self) -> Arc<Marketplace> {
        self.inner.marketplace.clone()
    }

    /// The default listing unscoped (and v1/v2) requests resolve to.
    pub fn default_listing(&self) -> &str {
        &self.inner.default_listing
    }

    /// Gracefully shuts down: stop accepting, finish in-flight requests,
    /// answer queued connections with `ShuttingDown`, join every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for shard in &self.inner.shards {
            shard.available.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // With every worker joined, no commit is in flight: compact every
        // listing's sale journal so the next boot replays one checkpoint
        // record instead of the whole append history. Best-effort — the
        // logs are already durable record-by-record, a failed compaction
        // loses nothing.
        let _ = self.inner.marketplace.checkpoint_journals();
    }
}

impl Drop for NimbusServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(inner: &Arc<Inner>, listener: TcpListener) {
    let mut next_shard = 0usize;
    while !inner.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                inner.stats.connection_accepted();
                let shard_idx = next_shard % inner.shards.len();
                next_shard = next_shard.wrapping_add(1);
                if let Some(rejected) = try_enqueue(inner, shard_idx, stream) {
                    shed(inner, rejected);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(inner.config.accept_poll);
            }
            Err(_) => {
                // Transient accept failure (e.g. EMFILE): back off briefly
                // rather than spinning.
                std::thread::sleep(inner.config.accept_poll);
            }
        }
    }
}

/// Enqueues onto the shard's bounded queue; gives the stream back when the
/// queue is full so the caller can shed it.
fn try_enqueue(inner: &Inner, shard_idx: usize, stream: TcpStream) -> Option<TcpStream> {
    // nimbus-audit: allow(no-panic) — shard_idx is next_shard % shards.len()
    let shard = &inner.shards[shard_idx];
    // A panicking worker poisons the queue lock; the queue itself (a
    // VecDeque of sockets) is still structurally sound, so keep serving.
    let mut queue = match shard.queue.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    if queue.len() >= inner.config.queue_capacity {
        return Some(stream);
    }
    queue.push_back(stream);
    drop(queue);
    shard.available.notify_one();
    None
}

/// Sheds one connection with a typed `BUSY` frame on a detached rejector
/// thread so the accept loop never blocks on the peer. The rejector
/// drains the peer's request bytes before closing: dropping a socket with
/// unread input resets the connection, which could destroy the `BUSY`
/// frame in flight.
fn shed(inner: &Arc<Inner>, stream: TcpStream) {
    inner.stats.busy_rejection();
    if inner.rejectors.fetch_add(1, Ordering::SeqCst) >= MAX_REJECTORS {
        inner.rejectors.fetch_sub(1, Ordering::SeqCst);
        return; // hard-drop: the flood is beyond even the shed budget
    }
    let inner = inner.clone();
    let _ = std::thread::Builder::new()
        .name("nimbus-reject".to_string())
        .spawn(move || {
            let drain_timeout = inner.config.read_timeout.min(Duration::from_millis(250));
            let _ = stream.set_write_timeout(Some(inner.config.write_timeout));
            let _ = stream.set_read_timeout(Some(drain_timeout));
            let mut stream = stream;
            let retry_after_ms = inner
                .config
                .retry_after_hint
                .as_millis()
                .min(u32::MAX as u128) as u32;
            let _ = wire::write_frame(&mut stream, &Response::Busy { retry_after_ms }.encode());
            let _ = stream.shutdown(std::net::Shutdown::Write);
            let mut sink = [0u8; 256];
            while let Ok(n) = std::io::Read::read(&mut stream, &mut sink) {
                if n == 0 {
                    break;
                }
            }
            inner.rejectors.fetch_sub(1, Ordering::SeqCst);
        });
}

fn worker_loop(inner: &Arc<Inner>, shard_idx: usize) {
    // nimbus-audit: allow(no-panic) — spawned with shard_idx in 0..shards.len()
    let shard = &inner.shards[shard_idx];
    loop {
        let next = {
            let mut queue = match shard.queue.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if inner.stop.load(Ordering::SeqCst) {
                    break None;
                }
                queue = match shard.available.wait(queue) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        match next {
            None => break,
            Some(mut stream) => {
                if inner.stop.load(Ordering::SeqCst) {
                    // Shutdown drain: the connection was admitted but not
                    // yet served — answer it honestly instead of hanging up.
                    let _ = stream.set_write_timeout(Some(inner.config.write_timeout));
                    let _ = wire::write_frame(
                        &mut stream,
                        &Response::Error {
                            code: ErrorCode::ShuttingDown,
                            message: "server is draining for shutdown".to_string(),
                        }
                        .encode(),
                    );
                } else {
                    serve_connection(inner, stream);
                }
            }
        }
    }
}

/// Serves one connection's request/response loop until the peer hangs up,
/// a timeout fires, a protocol violation occurs, or shutdown begins.
fn serve_connection(inner: &Inner, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(Some(inner.config.read_timeout))
        .is_err()
        || stream
            .set_write_timeout(Some(inner.config.write_timeout))
            .is_err()
    {
        return;
    }
    loop {
        // Shutdown drains between requests: the response to a request
        // already read is always written before the connection closes.
        if inner.stop.load(Ordering::SeqCst) {
            break;
        }
        let payload = match wire::read_frame_opt(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => break, // clean close between frames
            Err(ServerError::FrameTooLarge { len }) => {
                inner.stats.protocol_error();
                let _ = wire::write_frame(
                    &mut stream,
                    &Response::Error {
                        code: ErrorCode::BadFrame,
                        message: format!(
                            "frame of {len} bytes exceeds the {} byte limit",
                            wire::MAX_FRAME_LEN
                        ),
                    }
                    .encode(),
                );
                break; // framing is lost past an oversized announcement
            }
            Err(_) => break, // timeout / reset / truncated frame
        };
        let started = Instant::now();
        let (response, recorded) = handle_payload(inner, &payload);
        match recorded {
            Some((op, ok)) => inner.stats.record(op, ok, started.elapsed()),
            None => inner.stats.protocol_error(),
        }
        if wire::write_frame(&mut stream, &response.encode()).is_err() {
            break;
        }
        // A malformed frame poisons the stream's framing assumptions; stop
        // reading from it after answering.
        if recorded.is_none() {
            break;
        }
    }
}

/// Decodes and executes one request payload. Returns the response plus
/// `Some((op, ok))` when the payload decoded to a request, `None` for
/// protocol errors.
fn handle_payload(inner: &Inner, payload: &[u8]) -> (Response, Option<(Op, bool)>) {
    let request = match Request::decode(payload) {
        Ok(request) => request,
        Err(ServerError::UnsupportedVersion { got }) => {
            return (
                Response::Error {
                    code: ErrorCode::UnsupportedVersion,
                    message: format!("server speaks version {}, got {got}", wire::VERSION),
                },
                None,
            );
        }
        Err(e) => {
            return (
                Response::Error {
                    code: ErrorCode::BadFrame,
                    message: e.to_string(),
                },
                None,
            );
        }
    };
    if let Some(delay) = inner.config.handle_delay {
        std::thread::sleep(delay);
    }
    let op = match request {
        Request::Menu { .. } => Op::Menu,
        Request::Quote { .. } => Op::Quote,
        Request::Commit { .. } => Op::Commit,
        Request::Info { .. } => Op::Info,
        Request::Listings => Op::Listings,
        Request::Stats => Op::Stats,
        Request::Publish { .. } => Op::Publish,
        Request::Retire { .. } => Op::Retire,
    };
    let result = execute(inner, request);
    match result {
        Ok(response) => (response, Some((op, true))),
        Err(e) => (
            Response::Error {
                code: ErrorCode::for_market_error(&e),
                message: e.to_string(),
            },
            Some((op, false)),
        ),
    }
}

/// Resolves a request's optional listing to a concrete name: `None` (and
/// every v1/v2 request) means the server's default listing.
fn resolve<'a>(inner: &'a Inner, listing: &'a Option<String>) -> &'a str {
    listing.as_deref().unwrap_or(&inner.default_listing)
}

fn execute(inner: &Inner, request: Request) -> nimbus_market::Result<Response> {
    let marketplace = &inner.marketplace;
    match request {
        Request::Menu { listing } => {
            let broker = marketplace.route(resolve(inner, &listing))?;
            let snapshot = broker
                .snapshot()
                .ok_or(nimbus_market::MarketError::MarketNotOpen)?;
            Ok(Response::Menu(MenuMsg {
                epoch: snapshot.epoch(),
                metric: snapshot.metric_name().to_string(),
                points: snapshot.menu(),
            }))
        }
        Request::Quote {
            listing,
            request: purchase,
        } => {
            let name = resolve(inner, &listing);
            let quote: Quote = marketplace.route(name)?.quote_request(purchase)?;
            Ok(Response::Quote(QuoteMsg {
                x: quote.x,
                delta: quote.delta,
                price: quote.price,
                expected_error: quote.expected_error,
                metric: quote.metric.to_string(),
                snapshot_epoch: quote.snapshot_epoch,
                listing: name.to_string(),
            }))
        }
        Request::Commit {
            listing,
            x,
            snapshot_epoch,
            payment,
            nonce,
        } => {
            let broker = marketplace.route(resolve(inner, &listing))?;
            // A nonce makes the commit idempotent: a retry after a lost
            // ACK replays the journalled sale instead of double-charging.
            let sale = match nonce {
                Some(nonce) => broker.commit_at_idempotent(x, snapshot_epoch, payment, nonce)?,
                None => broker.commit_at(x, snapshot_epoch, payment)?,
            };
            Ok(Response::Commit(SaleMsg {
                inverse_ncp: sale.inverse_ncp,
                price: sale.price,
                expected_error: sale.expected_error,
                metric: sale.metric.to_string(),
                transaction: sale.transaction.sequence,
                weights: sale.model.weights().as_slice().to_vec(),
            }))
        }
        Request::Info { listing } => {
            let name = resolve(inner, &listing);
            let broker = marketplace.route(name)?;
            let snapshot = broker
                .snapshot()
                .ok_or(nimbus_market::MarketError::MarketNotOpen)?;
            let stats = broker.market_stats();
            let (x_lo, x_hi) = snapshot.support();
            Ok(Response::Info(InfoMsg {
                listing: name.to_string(),
                metric: snapshot.metric_name().to_string(),
                epoch: snapshot.epoch(),
                menu_len: snapshot.menu().len() as u64,
                x_lo,
                x_hi,
                expected_revenue: stats.expected_revenue.unwrap_or(0.0),
                sales: stats.sales as u64,
                revenue: stats.revenue,
            }))
        }
        Request::Listings => {
            let listings = marketplace
                .menu()
                .into_iter()
                .map(|e| ListingMsg {
                    name: e.name,
                    model_kind: e.model_kind.to_string(),
                    mechanism: e.mechanism.to_string(),
                    state: e.state.name().to_string(),
                    open: e.open,
                    expected_revenue: e.expected_revenue,
                })
                .collect();
            Ok(Response::Listings(ListingsMsg {
                default_listing: inner.default_listing.clone(),
                listings,
            }))
        }
        Request::Stats => {
            let mut msg = inner.stats.snapshot();
            // Queue depth and per-listing accounting are instantaneous
            // state, not counters, so they are read at serve time rather
            // than from the registry.
            msg.queue_depth = inner
                .shards
                .iter()
                .map(|s| s.queue.lock().map(|q| q.len() as u64).unwrap_or(0))
                .sum();
            msg.listings = marketplace
                .stats()
                .listings
                .into_iter()
                .map(|row| ListingStatsMsg {
                    listing: row.name,
                    state: row.state.name().to_string(),
                    epoch: row.epoch,
                    sales: row.sales,
                    revenue: row.revenue,
                })
                .collect();
            Ok(Response::Stats(msg))
        }
        Request::Publish { listing } => {
            let expected_revenue = marketplace.publish(&listing)?;
            let epoch = match marketplace.broker(&listing)?.0.snapshot() {
                Some(snapshot) => snapshot.epoch(),
                None => 0,
            };
            Ok(Response::Publish {
                listing,
                epoch,
                expected_revenue,
            })
        }
        Request::Retire { listing } => {
            if listing == inner.default_listing {
                // The default listing anchors v1/v2 interop; retiring it
                // would orphan every unscoped peer.
                return Err(nimbus_market::MarketError::InvalidConfig {
                    reason: format!(
                        "listing {listing:?} is the server's default listing and cannot be retired"
                    ),
                });
            }
            marketplace.retire(&listing)?;
            Ok(Response::Retire { listing })
        }
    }
}
