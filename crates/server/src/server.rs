//! The broker service: an event-driven TCP server over std.
//!
//! # Architecture
//!
//! ```text
//!               ┌──────────────────────────────┐   shard 0: job queue ─ workers
//!   TCP conns ─▶│ event loop (crate::event)    │─┬▶ shard 1: job queue ─ workers
//!   (epoll /    │ accept · read · frame-parse  │ │          …
//!    poll(2))   │ flush ◀─ completions ◀ wake ─┼─┴▶ shard K: job queue ─ workers
//!               └──────────────────────────────┘   queue full ⇒ typed BUSY frame
//! ```
//!
//! * **One loop thread, many sockets.** A single readiness loop
//!   (`crate::event`) owns every connection: it accepts, reads frames,
//!   and flushes responses without ever blocking on a peer. Tens of
//!   thousands of idle connections cost two fds and a slab slot — no
//!   thread per connection.
//! * **Sharded execution.** Complete frames become `Job`s on one of `K`
//!   bounded `Mutex<VecDeque<Job>> + Condvar` shard queues, drained by
//!   worker threads that do the CPU-bound work (decode, route, quote,
//!   commit, encode). Completed frames flow back through
//!   `Inner::completions` plus one byte on a wake pipe.
//! * **Pipelining (wire v4).** Frames carrying correlation ids may
//!   overlap on one connection; responses are matched by id. v1–v3
//!   frames are serialized per connection, preserving the strict
//!   request/response order those peers expect.
//! * **Load shedding, not stalling.** A full shard queue answers the
//!   frame with a typed `BUSY` instead of queueing unboundedly; v≤3
//!   connections are closed after the frame (the old admission-shed
//!   contract), v4 connections stay open. Slow-loris and idle peers are
//!   shed by event-loop deadlines ([`ServerConfig::header_read_timeout`],
//!   [`ServerConfig::idle_timeout`]) and counted separately in
//!   [`StatsRegistry::timeout_sheds`].
//! * **Graceful shutdown.** [`NimbusServer::shutdown`] flips one atomic
//!   flag and writes a wake byte. The loop closes the listener, stops
//!   reading, drops undispatched frames, and keeps flushing until every
//!   dispatched job's response has been written; workers drain their
//!   queues and join. Responses are never truncated.
//! * **Stats.** Every handled request lands in the shared
//!   [`StatsRegistry`] (atomic counters + fixed-bucket latency
//!   histograms), served back over the wire by `STATS`.
//!
//! The market side is exactly the in-process API: requests resolve their
//! listing through [`Marketplace::route`] (one atomic load, no lock),
//! `MENU`/`QUOTE` are lock-free snapshot reads, and `COMMIT` routes
//! through [`Broker::commit_at`] and therefore gets the same epoch check,
//! payment validation and price re-derivation as a local caller.
//! `BATCH_COMMIT` routes through [`Broker::commit_batch_at`], which
//! resolves items independently and coalesces their journal fsyncs under
//! the group-commit window. A request that names no listing (every v1/v2
//! request, and any v3+ request with an empty listing field) resolves to
//! the server's configured *default listing*. The `PUBLISH`/`RETIRE`
//! admin opcodes drive the marketplace's listing lifecycle live.
//!
//! [`Broker::commit_at`]: nimbus_market::Broker::commit_at
//! [`Broker::commit_batch_at`]: nimbus_market::Broker::commit_batch_at
//! [`Marketplace::route`]: nimbus_market::Marketplace::route
//! [`StatsRegistry::timeout_sheds`]: crate::stats::StatsRegistry::timeout_sheds

use crate::error::ServerError;
use crate::stats::{Op, StatsRegistry};
use crate::wire::{
    self, BatchCommitMsg, BatchOutcomeMsg, ErrorCode, InfoMsg, ListingMsg, ListingStatsMsg,
    ListingsMsg, MenuChunkMsg, MenuMsg, QuoteMsg, Request, Response, SaleMsg,
};
use crate::Result;
use nimbus_market::{BatchCommitItem, Marketplace, Quote};
use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs, validated by [`NimbusServer::start`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Number of execution shards (`≥ 1`).
    pub shards: usize,
    /// Worker threads per shard (`≥ 1`).
    pub workers_per_shard: usize,
    /// Pending-job bound per shard (`≥ 1`); beyond it, the frame is shed
    /// with a typed `BUSY`.
    pub queue_capacity: usize,
    /// Legacy per-connection read timeout. The event loop's
    /// [`ServerConfig::header_read_timeout`] and
    /// [`ServerConfig::idle_timeout`] have superseded it on the serving
    /// path; it is retained as a config-compat knob and still validated.
    pub read_timeout: Duration,
    /// Write-stall bound: a connection whose buffered response bytes make
    /// no progress for this long is closed (the peer stopped reading).
    pub write_timeout: Duration,
    /// Legacy accept-loop poll interval; retained for config compat. The
    /// event loop sleeps on readiness instead of polling.
    pub accept_poll: Duration,
    /// Artificial service time per request, for load and shedding tests.
    pub handle_delay: Option<Duration>,
    /// Back-off hint carried in `BUSY` frames: how long a shed client
    /// should wait before retrying. Purely advisory; milliseconds on the
    /// wire (saturating at `u32::MAX` ms).
    pub retry_after_hint: Duration,
    /// Slow-loris bound: once the first byte of a frame arrives, the
    /// whole frame must complete within this window or the connection is
    /// shed (`BUSY` + close, counted in `timeout_sheds`).
    pub header_read_timeout: Duration,
    /// Keep-alive bound: a connection with no request in flight and no
    /// bytes pending for this long is shed (`BUSY` + close, counted in
    /// `timeout_sheds`).
    pub idle_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 2,
            workers_per_shard: 2,
            queue_capacity: 16,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            accept_poll: Duration::from_millis(2),
            handle_delay: None,
            retry_after_hint: Duration::from_millis(25),
            header_read_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// One complete frame handed from the event loop to a worker.
pub(crate) struct Job {
    /// Slab slot of the owning connection.
    pub(crate) slot: u32,
    /// Slot generation at dispatch time (guards slot reuse).
    pub(crate) gen: u32,
    /// Sniffed protocol version; stamps the response frames.
    pub(crate) version: u8,
    /// Sniffed correlation id (0 for v≤3 frames).
    pub(crate) corr: u64,
    /// The undecoded frame payload.
    pub(crate) payload: Vec<u8>,
}

/// A worker's answer to one [`Job`]: encoded response frame(s) for the
/// event loop to flush, and whether the connection must close after them
/// (protocol violations poison the framing).
pub(crate) struct Completion {
    pub(crate) slot: u32,
    pub(crate) gen: u32,
    pub(crate) frames: Vec<Vec<u8>>,
    pub(crate) close: bool,
}

/// One execution shard: a bounded queue of parsed frames.
pub(crate) struct Shard {
    pub(crate) queue: Mutex<VecDeque<Job>>,
    pub(crate) available: Condvar,
}

pub(crate) struct Inner {
    pub(crate) marketplace: Arc<Marketplace>,
    pub(crate) default_listing: String,
    pub(crate) config: ServerConfig,
    pub(crate) stats: Arc<StatsRegistry>,
    pub(crate) stop: AtomicBool,
    pub(crate) shards: Vec<Shard>,
    /// Completed jobs waiting for the event loop to pick them up.
    pub(crate) completions: Mutex<Vec<Completion>>,
    /// Write end of the wake pipe: one byte per completion batch nudges
    /// the event loop out of its poll.
    pub(crate) wake_tx: UnixStream,
}

/// A running broker service bound to a TCP address.
///
/// Dropping the handle shuts the server down gracefully (equivalent to
/// [`NimbusServer::shutdown`]).
pub struct NimbusServer {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    event: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl NimbusServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `marketplace` under `config`. `default_listing` names the listing
    /// that unscoped requests (and every v1/v2 peer) resolve to; it must
    /// exist and be published when the server starts.
    pub fn start(
        marketplace: Arc<Marketplace>,
        default_listing: impl Into<String>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<NimbusServer> {
        if config.shards < 1 || config.workers_per_shard < 1 || config.queue_capacity < 1 {
            return Err(ServerError::InvalidConfig {
                reason: format!(
                    "shards ({}), workers_per_shard ({}) and queue_capacity ({}) must all be ≥ 1",
                    config.shards, config.workers_per_shard, config.queue_capacity
                ),
            });
        }
        if config.read_timeout.is_zero()
            || config.write_timeout.is_zero()
            || config.accept_poll.is_zero()
            || config.header_read_timeout.is_zero()
            || config.idle_timeout.is_zero()
        {
            return Err(ServerError::InvalidConfig {
                reason: "timeouts and the accept poll interval must be non-zero".to_string(),
            });
        }
        let default_listing = default_listing.into();
        // The default listing is the compatibility anchor for v1/v2
        // peers: it must be resolvable and serving before we accept.
        marketplace.route(&default_listing)?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;

        let inner = Arc::new(Inner {
            marketplace,
            default_listing,
            config,
            stats: Arc::new(StatsRegistry::new()),
            stop: AtomicBool::new(false),
            shards: (0..config.shards)
                .map(|_| Shard {
                    queue: Mutex::new(VecDeque::new()),
                    available: Condvar::new(),
                })
                .collect(),
            completions: Mutex::new(Vec::new()),
            wake_tx,
        });

        let mut workers = Vec::with_capacity(config.shards * config.workers_per_shard);
        let mut spawn_err: Option<std::io::Error> = None;
        'spawn: for shard_idx in 0..config.shards {
            for worker_idx in 0..config.workers_per_shard {
                let inner = inner.clone();
                let spawned = std::thread::Builder::new()
                    .name(format!("nimbus-worker-{shard_idx}-{worker_idx}"))
                    .spawn(move || worker_loop(&inner, shard_idx));
                match spawned {
                    Ok(handle) => workers.push(handle),
                    Err(e) => {
                        spawn_err = Some(e);
                        break 'spawn;
                    }
                }
            }
        }
        let event = if spawn_err.is_none() {
            let inner_for_loop = inner.clone();
            // The loop never reads the ambient clock directly; deadlines
            // are pure functions of this injected monotonic source.
            let clock: Box<dyn Fn() -> Duration + Send> =
                Box::new(nimbus_market::clock::wall_clock());
            let spawned = std::thread::Builder::new()
                .name("nimbus-event".to_string())
                .spawn(move || crate::event::run(inner_for_loop, listener, wake_rx, clock));
            match spawned {
                Ok(handle) => Some(handle),
                Err(e) => {
                    spawn_err = Some(e);
                    None
                }
            }
        } else {
            None
        };
        if let Some(e) = spawn_err {
            // Unwind the partial spawn: wake and join whatever started, so
            // no orphaned worker outlives the failed constructor.
            inner.stop.store(true, Ordering::SeqCst);
            for shard in &inner.shards {
                shard.available.notify_all();
            }
            for handle in workers {
                let _ = handle.join();
            }
            return Err(e.into());
        }

        Ok(NimbusServer {
            inner,
            local_addr,
            event,
            workers,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared stats registry (same counters `STATS` serves).
    pub fn stats(&self) -> Arc<StatsRegistry> {
        self.inner.stats.clone()
    }

    /// The marketplace being served.
    pub fn marketplace(&self) -> Arc<Marketplace> {
        self.inner.marketplace.clone()
    }

    /// The default listing unscoped (and v1/v2) requests resolve to.
    pub fn default_listing(&self) -> &str {
        &self.inner.default_listing
    }

    /// Gracefully shuts down: stop accepting, finish in-flight requests,
    /// flush every dispatched response, join every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        for shard in &self.inner.shards {
            shard.available.notify_all();
        }
        // Nudge the event loop out of its poll; a full pipe is fine (any
        // pending byte wakes it just as well).
        let _ = (&self.inner.wake_tx).write(&[1u8]);
        if let Some(handle) = self.event.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // With every worker joined, no commit is in flight: compact every
        // listing's sale journal so the next boot replays one checkpoint
        // record instead of the whole append history. Best-effort — the
        // logs are already durable record-by-record, a failed compaction
        // loses nothing.
        let _ = self.inner.marketplace.checkpoint_journals();
    }
}

impl Drop for NimbusServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Drains one shard's job queue until shutdown. The exit check runs under
/// the queue lock and only fires on an empty queue, so every job the
/// event loop managed to enqueue is executed and answered.
pub(crate) fn worker_loop(inner: &Arc<Inner>, shard_idx: usize) {
    let Some(shard) = inner.shards.get(shard_idx) else {
        return;
    };
    loop {
        let next = {
            let mut queue = match shard.queue.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if inner.stop.load(Ordering::SeqCst) {
                    break None;
                }
                queue = match shard.available.wait(queue) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        let Some(job) = next else { break };
        let completion = execute_job(inner, &job);
        let mut guard = match inner.completions.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.push(completion);
        drop(guard);
        // Errors (pipe full / loop gone) are fine: a full pipe already
        // has a wake byte in flight, and a gone loop needs none.
        let _ = (&inner.wake_tx).write(&[1u8]);
    }
}

/// Decodes and executes one job, producing the encoded response frame(s).
/// Responses are stamped at the requesting frame's version and carry its
/// correlation id, so v≤3 peers see byte-identical answers to the
/// blocking server's.
fn execute_job(inner: &Inner, job: &Job) -> Completion {
    let started = Instant::now();
    let request = match Request::decode_framed(&job.payload) {
        Ok((_corr, request)) => request,
        Err(e) => {
            inner.stats.protocol_error();
            let (code, message) = match e {
                ServerError::UnsupportedVersion { got } => (
                    ErrorCode::UnsupportedVersion,
                    format!("server speaks version {}, got {got}", wire::VERSION),
                ),
                e => (ErrorCode::BadFrame, e.to_string()),
            };
            let frame = Response::Error { code, message }.encode_versioned(job.version, job.corr);
            return Completion {
                slot: job.slot,
                gen: job.gen,
                frames: vec![frame],
                close: true,
            };
        }
    };
    if let Some(delay) = inner.config.handle_delay {
        std::thread::sleep(delay);
    }
    let op = match request {
        Request::Menu { .. } => Op::Menu,
        Request::Quote { .. } => Op::Quote,
        Request::Commit { .. } => Op::Commit,
        Request::BatchCommit { .. } => Op::BatchCommit,
        Request::MenuStream { .. } => Op::MenuStream,
        Request::Info { .. } => Op::Info,
        Request::Account { .. } => Op::Account,
        Request::Listings => Op::Listings,
        Request::Stats => Op::Stats,
        Request::Publish { .. } => Op::Publish,
        Request::Retire { .. } => Op::Retire,
    };
    let (frames, ok) = match execute(inner, request) {
        Ok(responses) => (
            responses
                .iter()
                .map(|r| r.encode_versioned(job.version, job.corr))
                .collect(),
            true,
        ),
        Err(e) => (
            vec![Response::Error {
                code: ErrorCode::for_market_error(&e),
                message: e.to_string(),
            }
            .encode_versioned(job.version, job.corr)],
            false,
        ),
    };
    inner.stats.record(op, ok, started.elapsed());
    Completion {
        slot: job.slot,
        gen: job.gen,
        frames,
        close: false,
    }
}

/// Resolves a request's optional listing to a concrete name: `None` (and
/// every v1/v2 request) means the server's default listing.
fn resolve<'a>(inner: &'a Inner, listing: &'a Option<String>) -> &'a str {
    listing.as_deref().unwrap_or(&inner.default_listing)
}

/// The wire image of a completed sale.
fn sale_msg(sale: &nimbus_market::Sale) -> SaleMsg {
    SaleMsg {
        inverse_ncp: sale.inverse_ncp,
        price: sale.price,
        expected_error: sale.expected_error,
        metric: sale.metric.to_string(),
        transaction: sale.transaction.sequence,
        weights: sale.model.weights().as_slice().to_vec(),
    }
}

/// Executes one request against the marketplace. Most requests produce
/// exactly one response frame; `MENU_STREAM` produces a chunk sequence
/// (all sharing the request's correlation id, last one marked `done`).
fn execute(inner: &Inner, request: Request) -> nimbus_market::Result<Vec<Response>> {
    let marketplace = &inner.marketplace;
    match request {
        Request::Menu { listing } => {
            let broker = marketplace.route(resolve(inner, &listing))?;
            let snapshot = broker
                .snapshot()
                .ok_or(nimbus_market::MarketError::MarketNotOpen)?;
            Ok(vec![Response::Menu(MenuMsg {
                epoch: snapshot.epoch(),
                metric: snapshot.metric_name().to_string(),
                points: snapshot.menu(),
            })])
        }
        Request::Quote {
            listing,
            request: purchase,
        } => {
            let name = resolve(inner, &listing);
            let quote: Quote = marketplace.route(name)?.quote_request(purchase)?;
            Ok(vec![Response::Quote(QuoteMsg {
                x: quote.x,
                delta: quote.delta,
                price: quote.price,
                expected_error: quote.expected_error,
                metric: quote.metric.to_string(),
                snapshot_epoch: quote.snapshot_epoch,
                listing: name.to_string(),
            })])
        }
        Request::Commit {
            listing,
            x,
            snapshot_epoch,
            payment,
            nonce,
            buyer,
        } => {
            let broker = marketplace.route(resolve(inner, &listing))?;
            // A nonce makes the commit idempotent: a retry after a lost
            // ACK replays the journalled sale instead of double-charging
            // money or budget. A buyer identity routes the sale through
            // the listing's noise-budget accounts.
            let sale = match nonce {
                Some(nonce) => {
                    broker.commit_at_idempotent_for(x, snapshot_epoch, payment, nonce, buyer)?
                }
                None => broker.commit_at_for(x, snapshot_epoch, payment, buyer)?,
            };
            Ok(vec![Response::Commit(sale_msg(&sale))])
        }
        Request::BatchCommit { listing, items } => {
            let broker = marketplace.route(resolve(inner, &listing))?;
            let batch: Vec<BatchCommitItem> = items
                .iter()
                .map(|item| BatchCommitItem {
                    x: item.x,
                    snapshot_epoch: item.snapshot_epoch,
                    payment: item.payment,
                    nonce: item.nonce,
                    buyer: item.buyer,
                })
                .collect();
            // Items resolve independently; the broker coalesces the
            // journal fsyncs of the successful ones (group commit), so
            // durability-per-sale is preserved at one fsync per batch.
            let outcomes = broker
                .commit_batch_at(&batch)
                .into_iter()
                .map(|outcome| match outcome {
                    Ok(sale) => BatchOutcomeMsg::Sale(sale_msg(&sale)),
                    Err(e) => BatchOutcomeMsg::Error {
                        code: ErrorCode::for_market_error(&e),
                        message: e.to_string(),
                    },
                })
                .collect();
            Ok(vec![Response::BatchCommit(BatchCommitMsg {
                items: outcomes,
            })])
        }
        Request::MenuStream { listing, chunk } => {
            let broker = marketplace.route(resolve(inner, &listing))?;
            let snapshot = broker
                .snapshot()
                .ok_or(nimbus_market::MarketError::MarketNotOpen)?;
            let points = snapshot.menu();
            let chunk = if chunk == 0 || chunk as usize > wire::MENU_STREAM_CHUNK {
                wire::MENU_STREAM_CHUNK
            } else {
                chunk as usize
            };
            let epoch = snapshot.epoch();
            let metric = snapshot.metric_name().to_string();
            let total = points.len() as u64;
            if points.is_empty() {
                // An empty menu still answers: one empty, done chunk.
                return Ok(vec![Response::MenuChunk(MenuChunkMsg {
                    epoch,
                    metric,
                    offset: 0,
                    total: 0,
                    points: Vec::new(),
                    done: true,
                })]);
            }
            let n_chunks = points.len().div_ceil(chunk);
            Ok(points
                .chunks(chunk)
                .enumerate()
                .map(|(i, part)| {
                    Response::MenuChunk(MenuChunkMsg {
                        epoch,
                        metric: metric.clone(),
                        offset: (i * chunk) as u64,
                        total,
                        points: part.to_vec(),
                        done: i + 1 == n_chunks,
                    })
                })
                .collect())
        }
        Request::Info { listing } => {
            let name = resolve(inner, &listing);
            let broker = marketplace.route(name)?;
            let snapshot = broker
                .snapshot()
                .ok_or(nimbus_market::MarketError::MarketNotOpen)?;
            let stats = broker.market_stats();
            let (x_lo, x_hi) = snapshot.support();
            Ok(vec![Response::Info(InfoMsg {
                listing: name.to_string(),
                metric: snapshot.metric_name().to_string(),
                epoch: snapshot.epoch(),
                menu_len: snapshot.menu().len() as u64,
                x_lo,
                x_hi,
                expected_revenue: stats.expected_revenue.unwrap_or(0.0),
                sales: stats.sales as u64,
                revenue: stats.revenue,
            })])
        }
        Request::Account { listing, buyer } => {
            let name = resolve(inner, &listing);
            let broker = marketplace.route(name)?;
            let accounts = broker.accounts();
            Ok(vec![Response::Account(wire::AccountMsg {
                listing: name.to_string(),
                buyer,
                spent: accounts.spent(buyer),
                budget: accounts.budget(),
                remaining: accounts.remaining(buyer),
            })])
        }
        Request::Listings => {
            let listings = marketplace
                .menu()
                .into_iter()
                .map(|e| ListingMsg {
                    name: e.name,
                    model_kind: e.model_kind.to_string(),
                    mechanism: e.mechanism.to_string(),
                    state: e.state.name().to_string(),
                    open: e.open,
                    expected_revenue: e.expected_revenue,
                })
                .collect();
            Ok(vec![Response::Listings(ListingsMsg {
                default_listing: inner.default_listing.clone(),
                listings,
            })])
        }
        Request::Stats => {
            let mut msg = inner.stats.snapshot();
            // Queue depth and per-listing accounting are instantaneous
            // state, not counters, so they are read at serve time rather
            // than from the registry.
            msg.queue_depth = inner
                .shards
                .iter()
                .map(|s| s.queue.lock().map(|q| q.len() as u64).unwrap_or(0))
                .sum();
            msg.listings = marketplace
                .stats()
                .listings
                .into_iter()
                .map(|row| ListingStatsMsg {
                    listing: row.name,
                    state: row.state.name().to_string(),
                    epoch: row.epoch,
                    sales: row.sales,
                    revenue: row.revenue,
                    budget_rejects: row.budget_rejects,
                    exhausted_buyers: row.exhausted_buyers,
                })
                .collect();
            Ok(vec![Response::Stats(msg)])
        }
        Request::Publish { listing } => {
            let expected_revenue = marketplace.publish(&listing)?;
            let epoch = match marketplace.broker(&listing)?.0.snapshot() {
                Some(snapshot) => snapshot.epoch(),
                None => 0,
            };
            Ok(vec![Response::Publish {
                listing,
                epoch,
                expected_revenue,
            }])
        }
        Request::Retire { listing } => {
            if listing == inner.default_listing {
                // The default listing anchors v1/v2 interop; retiring it
                // would orphan every unscoped peer.
                return Err(nimbus_market::MarketError::InvalidConfig {
                    reason: format!(
                        "listing {listing:?} is the server's default listing and cannot be retired"
                    ),
                });
            }
            marketplace.retire(&listing)?;
            Ok(vec![Response::Retire { listing }])
        }
    }
}
