//! Lock-free serving statistics: per-op counters and latency histograms.
//!
//! Every worker thread records into shared atomics — no mutex sits on the
//! hot path, so `STATS` observability never serializes serving. Latency
//! uses a fixed power-of-two bucket histogram over microseconds: bucket
//! `i` covers `[2^i, 2^(i+1))` µs, the last bucket absorbing everything
//! slower. Quantiles are read as the *upper bound* of the bucket holding
//! the requested rank, so a reported p99 is a guaranteed upper estimate at
//! 2× resolution — plenty for load shedding and regression tracking, at
//! the cost of one `fetch_add` per request.
//!
//! Counter reads are `Relaxed` snapshots: totals observed concurrently
//! with traffic may be mid-update relative to each other, which is the
//! usual (and here acceptable) contract for monitoring counters.

use crate::wire::{OpStatsMsg, StatsMsg};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets: `[1µs, 2µs, 4µs, …, ~2.1s, +∞)`.
pub const N_LATENCY_BUCKETS: usize = 22;

/// The wire operations, in registry order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `MENU`.
    Menu = 0,
    /// `QUOTE`.
    Quote = 1,
    /// `COMMIT`.
    Commit = 2,
    /// `INFO`.
    Info = 3,
    /// `STATS`.
    Stats = 4,
    /// `LISTINGS`.
    Listings = 5,
    /// `PUBLISH`.
    Publish = 6,
    /// `RETIRE`.
    Retire = 7,
    /// `BATCH_COMMIT` (v4).
    BatchCommit = 8,
    /// `MENU_STREAM` (v4).
    MenuStream = 9,
    /// `ACCOUNT` (v5).
    Account = 10,
}

/// Number of wire operations in the registry.
pub const N_OPS: usize = 11;

impl Op {
    /// All operations, in registry order.
    pub const ALL: [Op; N_OPS] = [
        Op::Menu,
        Op::Quote,
        Op::Commit,
        Op::Info,
        Op::Stats,
        Op::Listings,
        Op::Publish,
        Op::Retire,
        Op::BatchCommit,
        Op::MenuStream,
        Op::Account,
    ];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Op::Menu => "menu",
            Op::Quote => "quote",
            Op::Commit => "commit",
            Op::Info => "info",
            Op::Stats => "stats",
            Op::Listings => "listings",
            Op::Publish => "publish",
            Op::Retire => "retire",
            Op::BatchCommit => "batch_commit",
            Op::MenuStream => "menu_stream",
            Op::Account => "account",
        }
    }
}

/// Fixed-bucket latency histogram (power-of-two µs buckets).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; N_LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().max(1) as u64;
        let idx = (63 - micros.leading_zeros()) as usize;
        // nimbus-audit: allow(no-panic) — index clamped to the last bucket by min()
        self.buckets[idx.min(N_LATENCY_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Upper bucket bound (µs) of the `q`-quantile, `0` when empty.
    /// `q` is clamped to `[0, 1]`.
    pub fn quantile_upper_micros(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << N_LATENCY_BUCKETS
    }
}

/// One operation's counters.
#[derive(Debug, Default)]
pub struct OpCounters {
    requests: AtomicU64,
    errors: AtomicU64,
    latency: LatencyHistogram,
}

/// The server's shared statistics registry.
#[derive(Debug, Default)]
pub struct StatsRegistry {
    connections: AtomicU64,
    busy_rejections: AtomicU64,
    protocol_errors: AtomicU64,
    timeout_sheds: AtomicU64,
    ops: [OpCounters; N_OPS],
}

impl StatsRegistry {
    /// Creates an all-zero registry.
    pub fn new() -> Self {
        StatsRegistry::default()
    }

    /// Records one handled request for `op`. `ok = false` means the
    /// request was answered with a typed error frame.
    pub fn record(&self, op: Op, ok: bool, latency: Duration) {
        // nimbus-audit: allow(no-panic) — ops array is sized to the Op enum
        let counters = &self.ops[op as usize];
        counters.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        counters.latency.record(latency);
    }

    /// Records an accepted connection.
    pub fn connection_accepted(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection shed with `BUSY` at admission.
    pub fn busy_rejection(&self) {
        self.busy_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a frame that failed to decode.
    pub fn protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection shed by a deadline (idle or header-read
    /// timeout) rather than by admission control. Kept separate from
    /// [`busy_rejections`](Self::busy_rejection) so admission accounting
    /// stays exact under load tests.
    pub fn timeout_shed(&self) {
        self.timeout_sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections shed so far (test/bench hook).
    pub fn busy_rejections(&self) -> u64 {
        self.busy_rejections.load(Ordering::Relaxed)
    }

    /// Connections shed by idle/header deadlines so far (test/bench hook).
    pub fn timeout_sheds(&self) -> u64 {
        self.timeout_sheds.load(Ordering::Relaxed)
    }

    /// Requests handled for one op so far (test/bench hook).
    pub fn requests(&self, op: Op) -> u64 {
        // nimbus-audit: allow(no-panic) — ops array is sized to the Op enum
        self.ops[op as usize].requests.load(Ordering::Relaxed)
    }

    /// Renders the registry as the `STATS` wire message.
    pub fn snapshot(&self) -> StatsMsg {
        StatsMsg {
            connections: self.connections.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            // Queue depth and the per-listing rows are server-side
            // instantaneous state; the serving layer fills them in when
            // answering `STATS`.
            queue_depth: 0,
            listings: Vec::new(),
            ops: Op::ALL
                .iter()
                .map(|&op| {
                    // nimbus-audit: allow(no-panic) — ops array is sized to the Op enum
                    let c = &self.ops[op as usize];
                    OpStatsMsg {
                        op: op.name().to_string(),
                        requests: c.requests.load(Ordering::Relaxed),
                        errors: c.errors.load(Ordering::Relaxed),
                        p50_micros: c.latency.quantile_upper_micros(0.50),
                        p99_micros: c.latency.quantile_upper_micros(0.99),
                    }
                })
                .collect(),
        }
    }
}

/// Renders a `STATS` reply in the Prometheus text exposition format
/// (`# HELP` / `# TYPE` comments plus one sample per line), suitable for
/// piping into a scrape file or node-exporter textfile collector.
///
/// All series are prefixed `nimbus_`. Monotone counters keep the
/// `_total` suffix convention; `nimbus_queue_depth` and
/// `nimbus_shed_rate` are gauges (the latter is shed connections as a
/// fraction of all accepted-or-shed connections, 0 when idle).
pub fn render_prometheus(stats: &StatsMsg) -> String {
    use std::fmt::Write as _;
    fn metric(out: &mut String, name: &str, kind: &str, help: &str) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "# HELP nimbus_{name} {help}");
        let _ = writeln!(out, "# TYPE nimbus_{name} {kind}");
    }
    let mut out = String::new();
    metric(
        &mut out,
        "connections_total",
        "counter",
        "Connections accepted for service.",
    );
    let _ = writeln!(out, "nimbus_connections_total {}", stats.connections);
    metric(
        &mut out,
        "busy_rejections_total",
        "counter",
        "Connections shed with BUSY at admission.",
    );
    let _ = writeln!(
        out,
        "nimbus_busy_rejections_total {}",
        stats.busy_rejections
    );
    metric(
        &mut out,
        "protocol_errors_total",
        "counter",
        "Frames that failed to decode.",
    );
    let _ = writeln!(
        out,
        "nimbus_protocol_errors_total {}",
        stats.protocol_errors
    );
    metric(
        &mut out,
        "queue_depth",
        "gauge",
        "Connections admitted but not yet picked up by a worker.",
    );
    let _ = writeln!(out, "nimbus_queue_depth {}", stats.queue_depth);
    metric(
        &mut out,
        "shed_rate",
        "gauge",
        "Shed connections as a fraction of accepted plus shed.",
    );
    let offered = stats.connections + stats.busy_rejections;
    let shed_rate = if offered == 0 {
        0.0
    } else {
        stats.busy_rejections as f64 / offered as f64
    };
    let _ = writeln!(out, "nimbus_shed_rate {shed_rate}");
    metric(
        &mut out,
        "requests_total",
        "counter",
        "Requests handled, labelled by wire op.",
    );
    for op in &stats.ops {
        let _ = writeln!(
            out,
            "nimbus_requests_total{{op=\"{}\"}} {}",
            op.op, op.requests
        );
    }
    metric(
        &mut out,
        "request_errors_total",
        "counter",
        "Requests answered with a typed error frame, labelled by wire op.",
    );
    for op in &stats.ops {
        let _ = writeln!(
            out,
            "nimbus_request_errors_total{{op=\"{}\"}} {}",
            op.op, op.errors
        );
    }
    metric(
        &mut out,
        "request_latency_upper_micros",
        "gauge",
        "Upper-bound latency estimate in microseconds, labelled by op and quantile.",
    );
    for op in &stats.ops {
        let _ = writeln!(
            out,
            "nimbus_request_latency_upper_micros{{op=\"{}\",quantile=\"0.5\"}} {}",
            op.op, op.p50_micros
        );
        let _ = writeln!(
            out,
            "nimbus_request_latency_upper_micros{{op=\"{}\",quantile=\"0.99\"}} {}",
            op.op, op.p99_micros
        );
    }
    if !stats.listings.is_empty() {
        metric(
            &mut out,
            "listing_sales_total",
            "counter",
            "Completed sales, labelled by listing.",
        );
        for row in &stats.listings {
            let _ = writeln!(
                out,
                "nimbus_listing_sales_total{{listing=\"{}\"}} {}",
                row.listing, row.sales
            );
        }
        metric(
            &mut out,
            "listing_revenue",
            "counter",
            "Revenue collected, labelled by listing.",
        );
        for row in &stats.listings {
            let _ = writeln!(
                out,
                "nimbus_listing_revenue{{listing=\"{}\"}} {}",
                row.listing, row.revenue
            );
        }
        metric(
            &mut out,
            "listing_epoch",
            "gauge",
            "Published snapshot epoch (0 before first publish), labelled by listing.",
        );
        for row in &stats.listings {
            let _ = writeln!(
                out,
                "nimbus_listing_epoch{{listing=\"{}\",state=\"{}\"}} {}",
                row.listing, row.state, row.epoch
            );
        }
        metric(
            &mut out,
            "listing_budget_rejects_total",
            "counter",
            "Commits rejected for buyer noise-budget exhaustion, labelled by listing.",
        );
        for row in &stats.listings {
            let _ = writeln!(
                out,
                "nimbus_listing_budget_rejects_total{{listing=\"{}\"}} {}",
                row.listing, row.budget_rejects
            );
        }
        metric(
            &mut out,
            "listing_exhausted_buyers",
            "gauge",
            "Buyers whose remaining noise budget is zero, labelled by listing.",
        );
        for row in &stats.listings {
            let _ = writeln!(
                out,
                "nimbus_listing_exhausted_buyers{{listing=\"{}\"}} {}",
                row.listing, row.exhausted_buyers
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let h = LatencyHistogram::default();
        // 100 obs at ~3µs (bucket [2,4) → upper bound 4) and one at ~1ms.
        for _ in 0..100 {
            h.record(Duration::from_micros(3));
        }
        h.record(Duration::from_micros(1000));
        assert_eq!(h.count(), 101);
        assert_eq!(h.quantile_upper_micros(0.50), 4);
        // p99 rank = ceil(0.99 * 101) = 100 → still in the 3µs bucket.
        assert_eq!(h.quantile_upper_micros(0.99), 4);
        // p100 reaches the 1ms observation: bucket [512, 1024) → 1024.
        assert_eq!(h.quantile_upper_micros(1.0), 1024);
    }

    #[test]
    fn histogram_handles_extremes() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_upper_micros(0.5), 0);
        h.record(Duration::ZERO); // clamps to 1µs
        h.record(Duration::from_secs(3600)); // clamps to the overflow bucket
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_upper_micros(0.0), 2);
        assert_eq!(h.quantile_upper_micros(1.0), 1u64 << N_LATENCY_BUCKETS);
    }

    #[test]
    fn registry_counts_per_op_and_renders_snapshot() {
        let reg = StatsRegistry::new();
        reg.connection_accepted();
        reg.connection_accepted();
        reg.busy_rejection();
        reg.protocol_error();
        for _ in 0..5 {
            reg.record(Op::Quote, true, Duration::from_micros(10));
        }
        reg.record(Op::Quote, false, Duration::from_micros(10));
        reg.record(Op::Commit, true, Duration::from_micros(100));
        let snap = reg.snapshot();
        assert_eq!(snap.connections, 2);
        assert_eq!(snap.busy_rejections, 1);
        assert_eq!(snap.protocol_errors, 1);
        assert_eq!(snap.ops.len(), N_OPS);
        assert!(snap.listings.is_empty());
        let quote = snap.ops.iter().find(|o| o.op == "quote").unwrap();
        assert_eq!(quote.requests, 6);
        assert_eq!(quote.errors, 1);
        assert!(quote.p50_micros >= 16);
        let menu = snap.ops.iter().find(|o| o.op == "menu").unwrap();
        assert_eq!(menu.requests, 0);
        assert_eq!(menu.p50_micros, 0);
    }

    #[test]
    fn prometheus_render_labels_listings() {
        let mut snap = StatsRegistry::new().snapshot();
        snap.listings.push(crate::wire::ListingStatsMsg {
            listing: "acme-data".into(),
            state: "published".into(),
            epoch: 3,
            sales: 7,
            revenue: 123.5,
            budget_rejects: 4,
            exhausted_buyers: 2,
        });
        snap.listings.push(crate::wire::ListingStatsMsg {
            listing: "old-data".into(),
            state: "retired".into(),
            epoch: 1,
            sales: 2,
            revenue: 9.0,
            budget_rejects: 0,
            exhausted_buyers: 0,
        });
        let text = render_prometheus(&snap);
        assert!(text.contains("nimbus_listing_sales_total{listing=\"acme-data\"} 7"));
        assert!(text.contains("nimbus_listing_revenue{listing=\"old-data\"} 9"));
        assert!(text.contains("nimbus_listing_epoch{listing=\"acme-data\",state=\"published\"} 3"));
        assert!(text.contains("nimbus_listing_budget_rejects_total{listing=\"acme-data\"} 4"));
        assert!(text.contains("nimbus_listing_exhausted_buyers{listing=\"acme-data\"} 2"));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let reg = std::sync::Arc::new(StatsRegistry::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let reg = reg.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        reg.record(Op::Quote, true, Duration::from_micros(5));
                    }
                });
            }
        });
        assert_eq!(reg.requests(Op::Quote), 8000);
        assert_eq!(reg.snapshot().ops[Op::Quote as usize].requests, 8000);
    }
}
