//! Raw readiness-polling syscalls behind a tiny `cfg(unix)` shim.
//!
//! The workspace vendors no async runtime and no `mio`, so the event loop
//! talks to the kernel directly: `epoll(7)` on Linux, portable `poll(2)`
//! on other unixes, both behind the same [`Poller`] facade. The shim is
//! deliberately minimal — register / modify / deregister / wait — because
//! that is all a single-threaded readiness loop needs:
//!
//! * **Level-triggered.** The loop reads and writes until `WouldBlock`
//!   each time an fd is reported ready, so level semantics cannot lose
//!   events; edge-triggered wakeup coalescing is not worth its bug class
//!   here.
//! * **Tokens, not pointers.** Each registration carries an opaque `u64`
//!   token (the loop packs a slab slot + generation into it); the kernel
//!   hands the token back verbatim in [`PollEvent::token`].
//! * **No allocation per wait.** The syscall writes into a reused buffer;
//!   [`Poller::wait`] translates into the caller's reused `Vec`.
//!
//! The `extern "C"` declarations bind the libc wrappers that `std`
//! already links — no new dependency. Every `unsafe` block carries its
//! proof obligation inline per the workspace `unsafe-safety` audit rule.

use std::io;
use std::time::Duration;

/// One fd's readiness, as reported by [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollEvent {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable (or a pending accept on a listener).
    pub readable: bool,
    /// Writable without blocking.
    pub writable: bool,
    /// Peer hung up or the fd is in an error state; the owner should
    /// drain and close.
    pub hangup: bool,
}

/// Converts an optional timeout to the millisecond argument `poll`-family
/// syscalls take: `-1` blocks forever, `0` polls, positive waits. Rounds
/// *up* so a 100µs timer does not busy-spin at 0ms.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) => {
            let ms = t.as_millis();
            let rounded = if t.subsec_nanos() % 1_000_000 != 0 || ms == 0 {
                ms + 1
            } else {
                ms
            };
            rounded.min(i32::MAX as u128) as i32
        }
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{timeout_ms, PollEvent};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0x8_0000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// The kernel ABI struct. x86-64 packs it to 12 bytes (a 32-bit
    /// `events` directly followed by the 64-bit payload); every other
    /// architecture uses natural `repr(C)` alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// Linux backend: one `epoll` instance.
    pub struct Poller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // SAFETY: epoll_create1 takes no pointers; a negative return
            // is the error case and is checked before use.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn mask(readable: bool, writable: bool) -> u32 {
            let mut events = EPOLLRDHUP;
            if readable {
                events |= EPOLLIN;
            }
            if writable {
                events |= EPOLLOUT;
            }
            events
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            // SAFETY: `ev` is a live, properly-initialized EpollEvent for
            // the duration of the call; the kernel only reads it.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(
            &mut self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, Self::mask(readable, writable), token)
        }

        pub fn modify(
            &mut self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, Self::mask(readable, writable), token)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            // Linux < 2.6.9 required a non-null event for DEL; passing one
            // is harmless everywhere.
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub fn wait(
            &mut self,
            timeout: Option<Duration>,
            out: &mut Vec<PollEvent>,
        ) -> io::Result<()> {
            out.clear();
            // SAFETY: `buf` is a live Vec of EpollEvent with capacity
            // `buf.len()`; the kernel writes at most `maxevents` entries
            // and the return value bounds how many we read back.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(()); // EINTR: spurious wakeup, not a failure
                }
                return Err(err);
            }
            for ev in self.buf.iter().take(n as usize) {
                // Copy out of the (potentially packed) ABI struct before
                // taking references.
                let events = ev.events;
                let data = ev.data;
                out.push(PollEvent {
                    token: data,
                    readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                    hangup: events & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            // A full buffer means more events may be pending: grow so the
            // next wait drains them in one call.
            if n as usize == self.buf.len() {
                let grown = self.buf.len() * 2;
                self.buf.resize(grown, EpollEvent { events: 0, data: 0 });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: epfd was returned by epoll_create1 and is closed
            // exactly once, here.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::{timeout_ms, PollEvent};
    use std::collections::BTreeMap;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// Portable backend: the interest set lives in user space and is
    /// handed to `poll(2)` on every wait. O(n) per wait, which is fine
    /// for the non-Linux development targets this path serves.
    pub struct Poller {
        interest: BTreeMap<RawFd, (u64, bool, bool)>,
        fds: Vec<PollFd>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                interest: BTreeMap::new(),
                fds: Vec::new(),
            })
        }

        pub fn register(
            &mut self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.interest.insert(fd, (token, readable, writable));
            Ok(())
        }

        pub fn modify(
            &mut self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.interest.insert(fd, (token, readable, writable));
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.interest.remove(&fd);
            Ok(())
        }

        pub fn wait(
            &mut self,
            timeout: Option<Duration>,
            out: &mut Vec<PollEvent>,
        ) -> io::Result<()> {
            out.clear();
            self.fds.clear();
            for (&fd, &(_, readable, writable)) in &self.interest {
                let mut events = 0i16;
                if readable {
                    events |= POLLIN;
                }
                if writable {
                    events |= POLLOUT;
                }
                self.fds.push(PollFd {
                    fd,
                    events,
                    revents: 0,
                });
            }
            // SAFETY: `fds` is a live Vec of PollFd of length `len()`;
            // poll only writes the `revents` field of those entries.
            let n = unsafe {
                poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as u64,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for pfd in &self.fds {
                if pfd.revents == 0 {
                    continue;
                }
                if let Some(&(token, _, _)) = self.interest.get(&pfd.fd) {
                    out.push(PollEvent {
                        token,
                        readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                        writable: pfd.revents & POLLOUT != 0,
                        hangup: pfd.revents & (POLLERR | POLLHUP) != 0,
                    });
                }
            }
            Ok(())
        }
    }
}

pub use imp::Poller;

#[repr(C)]
#[derive(Clone, Copy)]
struct Rlimit {
    cur: u64,
    max: u64,
}

const RLIMIT_NOFILE: i32 = 7;

extern "C" {
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
}

/// Raises the process's open-file soft limit toward `target` (clamped at
/// the hard limit), returning the soft limit now in force. Needed by the
/// 10k-connection load regimes, where the default soft limit of 1024
/// would make `accept(2)` fail with `EMFILE` long before the event loop
/// itself is stressed. Never *lowers* the limit.
pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
    let mut lim = Rlimit { cur: 0, max: 0 };
    // SAFETY: `lim` is a live, writable Rlimit; getrlimit fills both
    // fields on success, which is checked before the values are read.
    let rc = unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.cur >= target {
        return Ok(lim.cur);
    }
    let wanted = Rlimit {
        cur: target.min(lim.max),
        max: lim.max,
    };
    // SAFETY: `wanted` is a live, initialized Rlimit; setrlimit only
    // reads it.
    let rc = unsafe { setrlimit(RLIMIT_NOFILE, &wanted) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(wanted.cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readable_events_carry_the_token() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller
            .register(b.as_raw_fd(), 0xDEAD_BEEF, true, false)
            .unwrap();

        let mut events = Vec::new();
        // Nothing pending: a zero timeout returns empty.
        poller.wait(Some(Duration::ZERO), &mut events).unwrap();
        assert!(events.is_empty());

        a.write_all(&[1]).unwrap();
        poller
            .wait(Some(Duration::from_secs(5)), &mut events)
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 0xDEAD_BEEF);
        assert!(events[0].readable);
    }

    #[test]
    fn modify_switches_interest_and_deregister_silences() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 7, true, false).unwrap();
        a.write_all(&[1]).unwrap();

        // Read interest off: the pending byte no longer reports.
        poller.modify(b.as_raw_fd(), 7, false, false).unwrap();
        let mut events = Vec::new();
        poller.wait(Some(Duration::ZERO), &mut events).unwrap();
        assert!(events.iter().all(|e| !e.readable));

        // Write interest on: an idle socket is writable immediately.
        poller.modify(b.as_raw_fd(), 7, false, true).unwrap();
        poller
            .wait(Some(Duration::from_secs(5)), &mut events)
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable));

        poller.deregister(b.as_raw_fd()).unwrap();
        poller.wait(Some(Duration::ZERO), &mut events).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn timeout_rounds_up_not_down() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 1);
        assert_eq!(timeout_ms(Some(Duration::from_micros(100))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(10))), 10);
        assert_eq!(
            timeout_ms(Some(Duration::from_millis(10) + Duration::from_nanos(1))),
            11
        );
    }

    #[test]
    fn nofile_limit_is_monotone() {
        let before = raise_nofile_limit(0).unwrap();
        let after = raise_nofile_limit(before).unwrap();
        assert!(after >= before);
    }
}
