//! The Nimbus wire protocol: hand-rolled, length-prefixed, versioned.
//!
//! The build environment vendors no serialization or async crates, so the
//! protocol is a small explicit binary format over std TCP:
//!
//! ```text
//! frame   := u32_be payload_len | payload           (len ≤ MAX_FRAME_LEN)
//! payload := 'N' 'B' version:u8 opcode:u8 [corr:u64 if version ≥ 4] body
//! ```
//!
//! Every integer is big-endian; an `f64` travels as its IEEE-754 bit
//! pattern in a `u64` (bitwise round-trip, NaN-safe); a string is
//! `u16_be len | utf8 bytes` capped at [`MAX_STRING_LEN`]; an `f64` vector
//! is `u32_be len | f64*` capped at [`MAX_VEC_LEN`]. Decoders reject
//! trailing bytes, so a frame means exactly one message.
//!
//! # Operations
//!
//! | opcode | request | response |
//! |---|---|---|
//! | `0x01` / `0x81` | `MENU` (listing-scoped, v3) | posted `(inverse NCP, price)` table + epoch |
//! | `0x02` / `0x82` | `QUOTE` (listing + one of the three §3.2 purchase options) | priced [`QuoteMsg`] pinned to a snapshot epoch |
//! | `0x03` / `0x83` | `COMMIT` (listing, quoted x, epoch, payment, optional idempotency nonce) | [`SaleMsg`] **including the noisy weight vector** |
//! | `0x04` / `0x84` | `INFO` (listing-scoped, v3) | listing metadata + ledger accounting |
//! | `0x05` / `0x85` | `STATS` | per-op request/error counters + latency + per-listing accounting |
//! | `0x06` / `0x86` | `LISTINGS` | the marketplace's listing directory, states included |
//! | `0x07` / `0x87` | `BATCH_COMMIT` (many sales, one frame, v4) | per-item status: [`SaleMsg`] or typed error |
//! | `0x08` / `0x88` | `MENU_STREAM` (chunked menu read, v4) | a run of [`MenuChunkMsg`] frames sharing the request's correlation id; the last sets `done` |
//! | `0x10` / `0x90` | `PUBLISH` (admin) | listing (re-)published: new epoch + expected revenue |
//! | `0x11` / `0x91` | `RETIRE` (admin) | listing retired, name echoed |
//! | `0x12` / `0x92` | `ACCOUNT` (buyer budget query, v5) | [`AccountMsg`]: spent precision + budget + remaining |
//! | — / `0xBB` | — | `BUSY`: shed by admission control, with a `retry_after_ms` hint |
//! | — / `0xEE` | — | typed error: [`ErrorCode`] + message |
//!
//! The quote→commit epoch protocol crosses the wire intact: `QUOTE`
//! returns the snapshot epoch the price was derived from, `COMMIT` sends
//! it back, and a re-opened market answers with
//! [`ErrorCode::QuoteExpired`] exactly like the in-process API. A live
//! `PUBLISH` of an already-published listing rides the same rail: it
//! posts a new snapshot epoch, so every outstanding quote dies with
//! [`ErrorCode::QuoteExpired`] at commit time. Requests against a retired
//! listing answer [`ErrorCode::Retired`].
//!
//! Versioning is explicit and checked on both sides: encoders always
//! stamp [`VERSION`], decoders accept [`MIN_VERSION`]`..=`[`VERSION`] and
//! default the fields a version predates. Version 2 added three fields —
//! the `COMMIT` idempotency nonce (v1 decodes to `None`), the `BUSY`
//! `retry_after_ms` hint (v1 decodes to `0`) and the `STATS` queue-depth
//! gauge (v1 decodes to `0`). Version 3 made the protocol
//! marketplace-routed: `MENU`/`QUOTE`/`COMMIT`/`INFO` carry a listing
//! name (empty = the server's configured default listing, which is also
//! what every v1/v2 request resolves to), `QUOTE` responses echo the
//! listing they priced, `STATS` carries per-listing accounting rows, and
//! the `LISTINGS`/`PUBLISH`/`RETIRE` opcodes were added. Version 4 makes
//! the protocol pipelined: every v4 payload carries a `u64` correlation
//! id right after the opcode, a client may have many requests in flight
//! on one connection, and responses echo the request's correlation id
//! and may return **out of order**. v4 also adds `BATCH_COMMIT` (one
//! frame, many sales, per-item status) and `MENU_STREAM` (a large menu
//! streamed as chunk frames that all share the request's correlation
//! id). Interop is strict in both directions: requests at v1–v3 carry no
//! correlation id and are answered one-at-a-time in order with
//! v3-stamped responses, byte-for-byte what a v3 build would have
//! produced; the v4 opcodes simply do not exist below v4. Version 5 adds
//! buyer identity and budget accounting: `COMMIT` and each
//! `BATCH_COMMIT` item carry an optional `buyer: u64` (v4 and older
//! decode to `None` = anonymous), the `ACCOUNT` opcode queries a buyer's
//! cumulative spend against a listing's noise budget, `STATS` listing
//! rows gain budget-reject and exhausted-buyer counters, and
//! over-budget commits answer [`ErrorCode::BudgetExhausted`] with a
//! machine-readable remaining-budget hint. Responses to v4 peers are
//! stamped [`V4_VERSION`] and omit every v5 field, exactly as a v4
//! build would have encoded them. Anything outside the version window
//! decodes to [`ServerError::UnsupportedVersion`], which the server
//! answers with a typed error frame stamped at the highest version the
//! peer and server share.

use crate::error::ServerError;
use crate::Result;
use nimbus_market::{MarketError, PurchaseRequest};
use std::io::{Read, Write};

/// Leading magic bytes of every payload.
pub const MAGIC: [u8; 2] = *b"NB";
/// Protocol version this build encodes.
pub const VERSION: u8 = 5;
/// Oldest protocol version this build still decodes.
pub const MIN_VERSION: u8 = 1;
/// Highest pre-pipelining version: responses to peers at or below this
/// version are stamped `V3_VERSION` and carry no correlation id.
pub const V3_VERSION: u8 = 3;
/// Highest pre-accounting version: responses to v4 peers are stamped
/// `V4_VERSION` and omit every buyer/budget field.
pub const V4_VERSION: u8 = 4;
/// Cap on the number of items in one `BATCH_COMMIT` frame.
pub const MAX_BATCH_ITEMS: usize = 256;
/// Default (and maximum) points per `MENU_STREAM` chunk.
pub const MENU_STREAM_CHUNK: usize = 64;
/// Hard cap on a frame's payload length (framing limit: a peer cannot make
/// the other side allocate more than this per frame).
pub const MAX_FRAME_LEN: usize = 1 << 20;
/// Cap on an encoded string.
pub const MAX_STRING_LEN: usize = 1 << 10;
/// Cap on an encoded `f64` vector (covers menus and weight vectors).
pub const MAX_VEC_LEN: usize = 1 << 16;

// Request opcodes.
const OP_MENU: u8 = 0x01;
const OP_QUOTE: u8 = 0x02;
const OP_COMMIT: u8 = 0x03;
const OP_INFO: u8 = 0x04;
const OP_STATS: u8 = 0x05;
const OP_LISTINGS: u8 = 0x06;
const OP_BATCH_COMMIT: u8 = 0x07;
const OP_MENU_STREAM: u8 = 0x08;
const OP_PUBLISH: u8 = 0x10;
const OP_RETIRE: u8 = 0x11;
const OP_ACCOUNT: u8 = 0x12;
// Response opcodes.
const OP_R_MENU: u8 = 0x81;
const OP_R_QUOTE: u8 = 0x82;
const OP_R_COMMIT: u8 = 0x83;
const OP_R_INFO: u8 = 0x84;
const OP_R_STATS: u8 = 0x85;
const OP_R_LISTINGS: u8 = 0x86;
const OP_R_BATCH_COMMIT: u8 = 0x87;
const OP_R_MENU_CHUNK: u8 = 0x88;
const OP_R_PUBLISH: u8 = 0x90;
const OP_R_RETIRE: u8 = 0x91;
const OP_R_ACCOUNT: u8 = 0x92;
const OP_R_BUSY: u8 = 0xBB;
const OP_R_ERROR: u8 = 0xEE;

/// Machine-readable error codes carried by error frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Malformed frame (magic, truncation, trailing bytes, caps).
    BadFrame = 1,
    /// Version byte mismatch.
    UnsupportedVersion = 2,
    /// Opcode not in the table above.
    UnknownOpcode = 3,
    /// Broker has no published snapshot.
    MarketNotOpen = 4,
    /// Commit carried a superseded snapshot epoch.
    QuoteExpired = 5,
    /// Payment below the re-derived posted price.
    InsufficientPayment = 6,
    /// Payment not a finite, non-negative amount.
    InvalidPayment = 7,
    /// Error/price budget unsatisfiable on the posted menu.
    Unsatisfiable = 8,
    /// Request parameters invalid (e.g. non-positive inverse NCP).
    InvalidRequest = 9,
    /// Server is draining for shutdown.
    ShuttingDown = 10,
    /// Anything else on the server side.
    Internal = 11,
    /// The write-ahead journal refused or failed the commit; the sale was
    /// not made durable and was not recorded.
    Durability = 12,
    /// The named listing has been retired; it no longer quotes or sells.
    Retired = 13,
    /// The buyer's cumulative noise budget cannot cover the commit; the
    /// message carries a machine-readable remaining-budget hint (v5).
    BudgetExhausted = 14,
}

impl ErrorCode {
    fn from_u16(raw: u16) -> Option<ErrorCode> {
        use ErrorCode::*;
        Some(match raw {
            1 => BadFrame,
            2 => UnsupportedVersion,
            3 => UnknownOpcode,
            4 => MarketNotOpen,
            5 => QuoteExpired,
            6 => InsufficientPayment,
            7 => InvalidPayment,
            8 => Unsatisfiable,
            9 => InvalidRequest,
            10 => ShuttingDown,
            11 => Internal,
            12 => Durability,
            13 => Retired,
            14 => BudgetExhausted,
            _ => return None,
        })
    }

    /// Maps a broker-side failure onto its wire code.
    pub fn for_market_error(e: &MarketError) -> ErrorCode {
        match e {
            MarketError::MarketNotOpen => ErrorCode::MarketNotOpen,
            MarketError::ListingRetired { .. } => ErrorCode::Retired,
            MarketError::UnknownListing { .. }
            | MarketError::DuplicateListing { .. }
            | MarketError::InvalidConfig { .. } => ErrorCode::InvalidRequest,
            MarketError::QuoteExpired { .. } => ErrorCode::QuoteExpired,
            MarketError::BudgetExhausted { .. } => ErrorCode::BudgetExhausted,
            MarketError::InsufficientPayment { .. } => ErrorCode::InsufficientPayment,
            MarketError::InvalidPayment { .. } => ErrorCode::InvalidPayment,
            MarketError::Core(nimbus_core::CoreError::BudgetUnsatisfiable { .. }) => {
                ErrorCode::Unsatisfiable
            }
            MarketError::Core(_) => ErrorCode::InvalidRequest,
            MarketError::Journal(_) => ErrorCode::Durability,
            _ => ErrorCode::Internal,
        }
    }
}

/// A client→server message.
///
/// Every listing-scoped request carries `listing: Option<String>`:
/// `None` (and every v1/v2 request, which predates the field) resolves to
/// the server's configured default listing, `Some(name)` routes to that
/// listing by name.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Fetch the posted menu of a listing.
    Menu {
        /// Listing to read; `None` = the server's default listing.
        listing: Option<String>,
    },
    /// Price one of the three §3.2 purchase options against a listing.
    Quote {
        /// Listing to quote; `None` = the server's default listing.
        listing: Option<String>,
        /// The purchase option to price.
        request: PurchaseRequest,
    },
    /// Redeem a quote by `(x, epoch)` identity with a payment.
    Commit {
        /// Listing to commit at; `None` = the server's default listing.
        listing: Option<String>,
        /// Quoted inverse NCP.
        x: f64,
        /// Snapshot epoch the quote was priced against.
        snapshot_epoch: u64,
        /// Payment offered.
        payment: f64,
        /// Idempotency nonce (v2): with `Some`, the server dedups the key
        /// `(snapshot_epoch, nonce)`, so a retried commit after a lost ACK
        /// replays the original sale instead of charging twice. `None`
        /// (and every v1 commit) is a plain non-idempotent commit.
        nonce: Option<u64>,
        /// Buyer identity (v5): with `Some`, the sale is charged against
        /// the buyer's cumulative noise-budget account and rejected with
        /// [`ErrorCode::BudgetExhausted`] when it cannot cover the
        /// commit. `None` (and every v4-or-older commit) is anonymous
        /// and bypasses budget accounting.
        buyer: Option<u64>,
    },
    /// Redeem many quotes in one frame (v4). Items resolve independently:
    /// one stale epoch does not poison its neighbours, and the response
    /// reports a per-item [`SaleMsg`]-or-error in request order.
    BatchCommit {
        /// Listing to commit at; `None` = the server's default listing.
        listing: Option<String>,
        /// The commits, at most [`MAX_BATCH_ITEMS`].
        items: Vec<BatchItemMsg>,
    },
    /// Fetch a listing's posted menu as a stream of chunk frames (v4).
    /// Every chunk shares the request's correlation id; the last chunk
    /// sets [`MenuChunkMsg::done`].
    MenuStream {
        /// Listing to read; `None` = the server's default listing.
        listing: Option<String>,
        /// Requested points per chunk; `0` (and anything above the cap)
        /// means the server default of [`MENU_STREAM_CHUNK`].
        chunk: u32,
    },
    /// Fetch a listing's metadata and ledger accounting.
    Info {
        /// Listing to describe; `None` = the server's default listing.
        listing: Option<String>,
    },
    /// Query a buyer's noise-budget account against a listing (v5).
    Account {
        /// Listing to query; `None` = the server's default listing.
        listing: Option<String>,
        /// Buyer identity to look up.
        buyer: u64,
    },
    /// Enumerate the marketplace's listing directory (v3).
    Listings,
    /// Fetch the server's per-op serving statistics.
    Stats,
    /// Admin: publish (or re-publish) a listing. Re-publishing posts a
    /// new snapshot epoch, invalidating every outstanding quote (v3).
    Publish {
        /// Listing to publish.
        listing: String,
    },
    /// Admin: retire a listing permanently (v3).
    Retire {
        /// Listing to retire.
        listing: String,
    },
}

impl Request {
    /// Stable lowercase operation name (stats registry key).
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Menu { .. } => "menu",
            Request::Quote { .. } => "quote",
            Request::Commit { .. } => "commit",
            Request::BatchCommit { .. } => "batch_commit",
            Request::MenuStream { .. } => "menu_stream",
            Request::Info { .. } => "info",
            Request::Account { .. } => "account",
            Request::Listings => "listings",
            Request::Stats => "stats",
            Request::Publish { .. } => "publish",
            Request::Retire { .. } => "retire",
        }
    }
}

/// `MENU` response body.
#[derive(Debug, Clone, PartialEq)]
pub struct MenuMsg {
    /// Epoch of the snapshot the menu was read from.
    pub epoch: u64,
    /// Metric the market is denominated in.
    pub metric: String,
    /// The posted `(inverse NCP, price)` table.
    pub points: Vec<(f64, f64)>,
}

/// One commit inside a `BATCH_COMMIT` request (v4) — the same fields a
/// standalone `COMMIT` carries, minus the listing (the batch routes as a
/// whole).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchItemMsg {
    /// Quoted inverse NCP.
    pub x: f64,
    /// Snapshot epoch the quote was priced against.
    pub snapshot_epoch: u64,
    /// Payment offered.
    pub payment: f64,
    /// Idempotency nonce; same dedup semantics as a standalone `COMMIT`.
    pub nonce: Option<u64>,
    /// Buyer identity (v5); same budget semantics as a standalone
    /// `COMMIT`. `None` = anonymous.
    pub buyer: Option<u64>,
}

/// One item's resolution inside a `BATCH_COMMIT` response (v4).
#[derive(Debug, Clone, PartialEq)]
pub enum BatchOutcomeMsg {
    /// The item committed; the completed sale, weights included.
    Sale(SaleMsg),
    /// The item failed; its neighbours are unaffected.
    Error {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable message.
        message: String,
    },
}

/// `BATCH_COMMIT` response body: one outcome per request item, in
/// request order.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchCommitMsg {
    /// Per-item outcomes, index-aligned with the request's items.
    pub items: Vec<BatchOutcomeMsg>,
}

/// One `MENU_STREAM` chunk (v4). All chunks of one stream share the
/// request's correlation id and a single snapshot epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct MenuChunkMsg {
    /// Epoch of the snapshot the menu was read from.
    pub epoch: u64,
    /// Metric the market is denominated in.
    pub metric: String,
    /// Index of this chunk's first point in the full menu.
    pub offset: u64,
    /// Total number of points in the full menu.
    pub total: u64,
    /// This chunk's `(inverse NCP, price)` points.
    pub points: Vec<(f64, f64)>,
    /// True on the final chunk of the stream.
    pub done: bool,
}

/// `QUOTE` response body — the wire image of a broker `Quote`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuoteMsg {
    /// Inverse NCP of the quoted version.
    pub x: f64,
    /// Noise control parameter δ = 1/x.
    pub delta: f64,
    /// Posted price.
    pub price: f64,
    /// Expected error under the market's metric.
    pub expected_error: f64,
    /// Metric name the error is denominated in.
    pub metric: String,
    /// Epoch the quote is pinned to; `COMMIT` must echo it.
    pub snapshot_epoch: u64,
    /// Listing the quote was priced at (v3; empty when decoded from an
    /// older peer). `COMMIT` should route back to the same listing.
    pub listing: String,
}

/// One listing's row in a `LISTINGS` response.
#[derive(Debug, Clone, PartialEq)]
pub struct ListingMsg {
    /// Listing name buyers route by.
    pub name: String,
    /// Trainer identifier (e.g. `"linear_regression"`).
    pub model_kind: String,
    /// Mechanism identifier (e.g. `"gaussian"`).
    pub mechanism: String,
    /// Lifecycle state: `"draft"`, `"published"` or `"retired"`.
    pub state: String,
    /// Whether the listing currently serves buyers.
    pub open: bool,
    /// Expected revenue of the posted prices (0 until published).
    pub expected_revenue: f64,
}

/// `LISTINGS` response body — the marketplace's listing directory.
#[derive(Debug, Clone, PartialEq)]
pub struct ListingsMsg {
    /// The server's configured default listing (what v1/v2 peers and
    /// unscoped requests resolve to).
    pub default_listing: String,
    /// Every listing, in name order, states included.
    pub listings: Vec<ListingMsg>,
}

/// One listing's accounting row in a `STATS` response (v3).
#[derive(Debug, Clone, PartialEq)]
pub struct ListingStatsMsg {
    /// Listing name.
    pub listing: String,
    /// Lifecycle state: `"draft"`, `"published"` or `"retired"`.
    pub state: String,
    /// Epoch of the published snapshot (0 before first publish).
    pub epoch: u64,
    /// Completed sales so far.
    pub sales: u64,
    /// Revenue collected so far.
    pub revenue: f64,
    /// Commits rejected for budget exhaustion (v5; older peers decode
    /// to 0).
    pub budget_rejects: u64,
    /// Buyers whose remaining noise budget is zero (v5; older peers
    /// decode to 0).
    pub exhausted_buyers: u64,
}

/// `ACCOUNT` response body (v5) — one buyer's noise-budget account
/// against one listing.
#[derive(Debug, Clone, PartialEq)]
pub struct AccountMsg {
    /// Listing the account is held against.
    pub listing: String,
    /// Buyer identity queried.
    pub buyer: u64,
    /// Cumulative precision (inverse NCP) charged so far.
    pub spent: f64,
    /// Per-buyer budget; `None` when the listing is unmetered.
    pub budget: Option<f64>,
    /// Budget remaining; `None` when the listing is unmetered.
    pub remaining: Option<f64>,
}

/// `COMMIT` response body — the completed sale, weights included.
#[derive(Debug, Clone, PartialEq)]
pub struct SaleMsg {
    /// Inverse NCP of the version sold.
    pub inverse_ncp: f64,
    /// Price charged (re-derived server-side).
    pub price: f64,
    /// Expected error of the delivered instance.
    pub expected_error: f64,
    /// Metric name.
    pub metric: String,
    /// Ledger transaction id.
    pub transaction: u64,
    /// The noisy model's weight vector.
    pub weights: Vec<f64>,
}

/// `INFO` response body.
#[derive(Debug, Clone, PartialEq)]
pub struct InfoMsg {
    /// Listing (seller/dataset) name.
    pub listing: String,
    /// Metric the market is denominated in.
    pub metric: String,
    /// Published snapshot epoch.
    pub epoch: u64,
    /// Number of posted menu points.
    pub menu_len: u64,
    /// Menu support, low end.
    pub x_lo: f64,
    /// Menu support, high end.
    pub x_hi: f64,
    /// Expected revenue of the posted prices.
    pub expected_revenue: f64,
    /// Completed sales so far.
    pub sales: u64,
    /// Revenue collected so far.
    pub revenue: f64,
}

/// One operation's row in a `STATS` response.
#[derive(Debug, Clone, PartialEq)]
pub struct OpStatsMsg {
    /// Operation name.
    pub op: String,
    /// Requests handled (ok + error).
    pub requests: u64,
    /// Requests answered with a typed error.
    pub errors: u64,
    /// p50 service latency, upper bucket bound in µs (0 when empty).
    pub p50_micros: u64,
    /// p99 service latency, upper bucket bound in µs (0 when empty).
    pub p99_micros: u64,
}

/// `STATS` response body.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsMsg {
    /// Connections accepted.
    pub connections: u64,
    /// Connections shed with `BUSY` at admission.
    pub busy_rejections: u64,
    /// Frames that failed to decode.
    pub protocol_errors: u64,
    /// Connections currently parked in the admission queues, summed over
    /// shards at snapshot time (v2; v1 decodes to 0).
    pub queue_depth: u64,
    /// Per-operation counters, in registry order.
    pub ops: Vec<OpStatsMsg>,
    /// Per-listing accounting rows from one consistent marketplace
    /// snapshot (v3; older peers decode to empty).
    pub listings: Vec<ListingStatsMsg>,
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Posted menu.
    Menu(MenuMsg),
    /// Priced quote.
    Quote(QuoteMsg),
    /// Completed sale.
    Commit(SaleMsg),
    /// Per-item outcomes of a `BATCH_COMMIT` (v4).
    BatchCommit(BatchCommitMsg),
    /// One chunk of a streamed menu (v4).
    MenuChunk(MenuChunkMsg),
    /// Listing metadata.
    Info(InfoMsg),
    /// A buyer's noise-budget account (v5).
    Account(AccountMsg),
    /// The marketplace's listing directory.
    Listings(ListingsMsg),
    /// Serving statistics.
    Stats(StatsMsg),
    /// A listing was (re-)published.
    Publish {
        /// Listing name echoed back.
        listing: String,
        /// Epoch of the freshly posted snapshot.
        epoch: u64,
        /// Expected revenue of the freshly posted prices.
        expected_revenue: f64,
    },
    /// A listing was retired.
    Retire {
        /// Listing name echoed back.
        listing: String,
    },
    /// Shed by admission control (or drained at shutdown).
    Busy {
        /// Server's hint for how long to back off before retrying, in
        /// milliseconds (v2; v1 decodes to 0 = no hint).
        retry_after_ms: u32,
    },
    /// Typed failure.
    Error {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable message.
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Primitive encoding
// ---------------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Starts a payload at an explicit `version`. For v4 and above the
    /// header carries the correlation id; below v4 `corr` is not encoded
    /// (the payload is byte-for-byte what a v3 build produces).
    fn at_version(version: u8, opcode: u8, corr: u64) -> Enc {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MAGIC);
        buf.push(version);
        buf.push(opcode);
        if version >= 4 {
            buf.extend_from_slice(&corr.to_be_bytes());
        }
        Enc { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        debug_assert!(s.len() <= MAX_STRING_LEN);
        // nimbus-audit: allow(no-panic) — upper bound is min(len, cap), always ≤ len
        let bytes = &s.as_bytes()[..s.len().min(MAX_STRING_LEN)];
        self.u16(bytes.len() as u16);
        self.buf.extend_from_slice(bytes);
    }

    fn f64s(&mut self, vs: &[f64]) {
        debug_assert!(vs.len() <= MAX_VEC_LEN);
        self.u32(vs.len() as u32);
        for &v in vs {
            self.f64(v);
        }
    }

    fn finish(self) -> Vec<u8> {
        self.buf
    }
}

struct Dec<'a> {
    buf: &'a [u8],
}

impl<'a> Dec<'a> {
    fn bad(reason: impl Into<String>) -> ServerError {
        ServerError::Protocol {
            reason: reason.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(Dec::bad(format!(
                "truncated body: wanted {n} more bytes, have {}",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        let bytes = self.take(2)?;
        bytes
            .try_into()
            .map(u16::from_be_bytes)
            .map_err(|_| Dec::bad("u16 field"))
    }

    fn u32(&mut self) -> Result<u32> {
        let bytes = self.take(4)?;
        bytes
            .try_into()
            .map(u32::from_be_bytes)
            .map_err(|_| Dec::bad("u32 field"))
    }

    fn u64(&mut self) -> Result<u64> {
        let bytes = self.take(8)?;
        bytes
            .try_into()
            .map(u64::from_be_bytes)
            .map_err(|_| Dec::bad("u64 field"))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u16()? as usize;
        if len > MAX_STRING_LEN {
            return Err(Dec::bad(format!("string of {len} bytes exceeds cap")));
        }
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| Dec::bad("string is not valid UTF-8"))
    }

    fn f64s(&mut self) -> Result<Vec<f64>> {
        let len = self.u32()? as usize;
        if len > MAX_VEC_LEN {
            return Err(Dec::bad(format!("vector of {len} f64s exceeds cap")));
        }
        (0..len).map(|_| self.f64()).collect()
    }

    fn finish(self) -> Result<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(Dec::bad(format!("{} trailing bytes", self.buf.len())))
        }
    }
}

/// Strips and validates the `magic | version | opcode [| corr]` header,
/// returning the negotiated version, the opcode, the correlation id (0
/// below v4) and the body decoder. Versions in
/// [`MIN_VERSION`]`..=`[`VERSION`] are accepted; body decoders branch on
/// the version to default fields the peer's version predates.
fn open_payload(payload: &[u8]) -> Result<(u8, u8, u64, Dec<'_>)> {
    let mut dec = Dec { buf: payload };
    let magic = dec.take(2)?;
    if magic != MAGIC {
        return Err(Dec::bad(format!("bad magic bytes {magic:02x?}")));
    }
    let version = dec.u8()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(ServerError::UnsupportedVersion { got: version });
    }
    let opcode = dec.u8()?;
    let corr = if version >= 4 { dec.u64()? } else { 0 };
    Ok((version, opcode, corr, dec))
}

/// Sniffs a payload's version and correlation id without decoding the
/// body — what the event loop needs to route a frame to a worker before
/// anything is validated. Returns `(version, corr)`; frames too short to
/// carry the fields report `(0, 0)` and are left for the full decoder to
/// reject with a typed error.
pub fn sniff_header(payload: &[u8]) -> (u8, u64) {
    let version = payload.get(2).copied().unwrap_or(0);
    if version >= 4 {
        if let Some(bytes) = payload.get(4..12) {
            if let Ok(raw) = <[u8; 8]>::try_from(bytes) {
                return (version, u64::from_be_bytes(raw));
            }
        }
    }
    (version, 0)
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(ServerError::FrameTooLarge {
            len: payload.len() as u64,
        });
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF before any
/// byte of the length prefix (the peer hung up between frames).
pub fn read_frame_opt(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        // nimbus-audit: allow(no-panic) — loop guard keeps filled < 4 = len_buf.len()
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            return if filled == 0 {
                Ok(None)
            } else {
                Err(ServerError::ConnectionClosed)
            };
        }
        filled += n;
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ServerError::FrameTooLarge { len: len as u64 });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ServerError::ConnectionClosed
        } else {
            ServerError::Io(e)
        }
    })?;
    Ok(Some(payload))
}

/// Reads one frame, treating clean EOF as [`ServerError::ConnectionClosed`]
/// (client side: a response was expected).
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>> {
    read_frame_opt(r)?.ok_or(ServerError::ConnectionClosed)
}

// ---------------------------------------------------------------------------
// Request encode/decode
// ---------------------------------------------------------------------------

const REQ_AT: u8 = 1;
const REQ_ERROR_BUDGET: u8 = 2;
const REQ_PRICE_BUDGET: u8 = 3;

/// Encodes an optional listing name; `None` travels as the empty string
/// (listing names are validated non-empty, so the encoding is unambiguous).
fn enc_listing(e: &mut Enc, listing: &Option<String>) {
    match listing {
        Some(name) => e.str(name),
        None => e.str(""),
    }
}

/// Decodes the trailing v3 listing field; absent (older peer) or empty
/// means "the server's default listing".
fn dec_listing(d: &mut Dec<'_>, version: u8) -> Result<Option<String>> {
    if version < 3 {
        return Ok(None);
    }
    let name = d.str()?;
    Ok(if name.is_empty() { None } else { Some(name) })
}

/// Decodes the v5 optional buyer identity (flag byte + `u64`); peers
/// below v5 predate the field and decode to `None` = anonymous.
fn dec_buyer(d: &mut Dec<'_>, version: u8) -> Result<Option<u64>> {
    if version < 5 {
        return Ok(None);
    }
    match d.u8()? {
        0 => Ok(None),
        1 => Ok(Some(d.u64()?)),
        other => Err(Dec::bad(format!("bad buyer flag {other}"))),
    }
}

impl Request {
    /// Encodes into a complete payload (header + body) at [`VERSION`]
    /// with correlation id 0 — what a non-pipelined client sends.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_with_corr(0)
    }

    /// Encodes at [`VERSION`] carrying an explicit correlation id, for
    /// pipelined connections where responses may return out of order.
    pub fn encode_with_corr(&self, corr: u64) -> Vec<u8> {
        match self {
            Request::Menu { listing } => {
                let mut e = Enc::at_version(VERSION, OP_MENU, corr);
                enc_listing(&mut e, listing);
                e.finish()
            }
            Request::Quote { listing, request } => {
                let mut e = Enc::at_version(VERSION, OP_QUOTE, corr);
                let (kind, v) = match request {
                    PurchaseRequest::AtInverseNcp(x) => (REQ_AT, *x),
                    PurchaseRequest::ErrorBudget(b) => (REQ_ERROR_BUDGET, *b),
                    PurchaseRequest::PriceBudget(b) => (REQ_PRICE_BUDGET, *b),
                };
                e.u8(kind);
                e.f64(v);
                enc_listing(&mut e, listing);
                e.finish()
            }
            Request::Commit {
                listing,
                x,
                snapshot_epoch,
                payment,
                nonce,
                buyer,
            } => {
                let mut e = Enc::at_version(VERSION, OP_COMMIT, corr);
                e.f64(*x);
                e.u64(*snapshot_epoch);
                e.f64(*payment);
                match nonce {
                    Some(n) => {
                        e.u8(1);
                        e.u64(*n);
                    }
                    None => e.u8(0),
                }
                enc_listing(&mut e, listing);
                match buyer {
                    Some(b) => {
                        e.u8(1);
                        e.u64(*b);
                    }
                    None => e.u8(0),
                }
                e.finish()
            }
            Request::BatchCommit { listing, items } => {
                debug_assert!(items.len() <= MAX_BATCH_ITEMS);
                let mut e = Enc::at_version(VERSION, OP_BATCH_COMMIT, corr);
                enc_listing(&mut e, listing);
                let count = items.len().min(MAX_BATCH_ITEMS);
                e.u16(count as u16);
                for item in items.iter().take(count) {
                    e.f64(item.x);
                    e.u64(item.snapshot_epoch);
                    e.f64(item.payment);
                    match item.nonce {
                        Some(n) => {
                            e.u8(1);
                            e.u64(n);
                        }
                        None => e.u8(0),
                    }
                    match item.buyer {
                        Some(b) => {
                            e.u8(1);
                            e.u64(b);
                        }
                        None => e.u8(0),
                    }
                }
                e.finish()
            }
            Request::MenuStream { listing, chunk } => {
                let mut e = Enc::at_version(VERSION, OP_MENU_STREAM, corr);
                enc_listing(&mut e, listing);
                e.u32(*chunk);
                e.finish()
            }
            Request::Info { listing } => {
                let mut e = Enc::at_version(VERSION, OP_INFO, corr);
                enc_listing(&mut e, listing);
                e.finish()
            }
            Request::Account { listing, buyer } => {
                let mut e = Enc::at_version(VERSION, OP_ACCOUNT, corr);
                e.u64(*buyer);
                enc_listing(&mut e, listing);
                e.finish()
            }
            Request::Listings => Enc::at_version(VERSION, OP_LISTINGS, corr).finish(),
            Request::Stats => Enc::at_version(VERSION, OP_STATS, corr).finish(),
            Request::Publish { listing } => {
                let mut e = Enc::at_version(VERSION, OP_PUBLISH, corr);
                e.str(listing);
                e.finish()
            }
            Request::Retire { listing } => {
                let mut e = Enc::at_version(VERSION, OP_RETIRE, corr);
                e.str(listing);
                e.finish()
            }
        }
    }

    /// Decodes a payload into a request, dropping the correlation id.
    pub fn decode(payload: &[u8]) -> Result<Request> {
        Ok(Request::decode_framed(payload)?.1)
    }

    /// Decodes a payload into `(correlation id, request)`; the id is 0
    /// for peers below v4.
    pub fn decode_framed(payload: &[u8]) -> Result<(u64, Request)> {
        let (version, opcode, corr, mut d) = open_payload(payload)?;
        let req = match opcode {
            OP_MENU => Request::Menu {
                listing: dec_listing(&mut d, version)?,
            },
            OP_QUOTE => {
                let kind = d.u8()?;
                let v = d.f64()?;
                let request = match kind {
                    REQ_AT => PurchaseRequest::AtInverseNcp(v),
                    REQ_ERROR_BUDGET => PurchaseRequest::ErrorBudget(v),
                    REQ_PRICE_BUDGET => PurchaseRequest::PriceBudget(v),
                    other => {
                        return Err(Dec::bad(format!("unknown purchase-request kind {other}")))
                    }
                };
                Request::Quote {
                    listing: dec_listing(&mut d, version)?,
                    request,
                }
            }
            OP_COMMIT => {
                let x = d.f64()?;
                let snapshot_epoch = d.u64()?;
                let payment = d.f64()?;
                let nonce = if version >= 2 {
                    match d.u8()? {
                        0 => None,
                        1 => Some(d.u64()?),
                        other => {
                            return Err(Dec::bad(format!("bad commit nonce flag {other}")));
                        }
                    }
                } else {
                    None
                };
                Request::Commit {
                    listing: dec_listing(&mut d, version)?,
                    x,
                    snapshot_epoch,
                    payment,
                    nonce,
                    buyer: dec_buyer(&mut d, version)?,
                }
            }
            OP_BATCH_COMMIT if version >= 4 => {
                let listing = dec_listing(&mut d, version)?;
                let count = d.u16()? as usize;
                if count > MAX_BATCH_ITEMS {
                    return Err(Dec::bad(format!(
                        "batch of {count} commits exceeds cap of {MAX_BATCH_ITEMS}"
                    )));
                }
                let items = (0..count)
                    .map(|_| {
                        let x = d.f64()?;
                        let snapshot_epoch = d.u64()?;
                        let payment = d.f64()?;
                        let nonce = match d.u8()? {
                            0 => None,
                            1 => Some(d.u64()?),
                            other => {
                                return Err(Dec::bad(format!("bad batch nonce flag {other}")));
                            }
                        };
                        Ok(BatchItemMsg {
                            x,
                            snapshot_epoch,
                            payment,
                            nonce,
                            buyer: dec_buyer(&mut d, version)?,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                Request::BatchCommit { listing, items }
            }
            OP_MENU_STREAM if version >= 4 => Request::MenuStream {
                listing: dec_listing(&mut d, version)?,
                chunk: d.u32()?,
            },
            OP_INFO => Request::Info {
                listing: dec_listing(&mut d, version)?,
            },
            OP_ACCOUNT if version >= 5 => {
                let buyer = d.u64()?;
                Request::Account {
                    listing: dec_listing(&mut d, version)?,
                    buyer,
                }
            }
            OP_LISTINGS => Request::Listings,
            OP_STATS => Request::Stats,
            OP_PUBLISH => Request::Publish { listing: d.str()? },
            OP_RETIRE => Request::Retire { listing: d.str()? },
            other => {
                return Err(Dec::bad(format!("unknown request opcode {other:#04x}")));
            }
        };
        d.finish()?;
        Ok((corr, req))
    }
}

// ---------------------------------------------------------------------------
// Response encode/decode
// ---------------------------------------------------------------------------

impl Response {
    /// Encodes into a complete payload (header + body) at [`VERSION`]
    /// with correlation id 0.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_versioned(VERSION, 0)
    }

    /// Encodes for a peer that spoke `peer_version`, echoing `corr`.
    ///
    /// v5+ peers get a [`VERSION`]-stamped payload; v4 peers get a
    /// [`V4_VERSION`]-stamped payload with no v5 fields; everyone older
    /// gets a [`V3_VERSION`]-stamped payload with no correlation id —
    /// in each case byte-for-byte what a build of that version would
    /// have sent, which is the interop contract.
    pub fn encode_versioned(&self, peer_version: u8, corr: u64) -> Vec<u8> {
        let version = if peer_version >= 5 {
            VERSION
        } else if peer_version >= 4 {
            V4_VERSION
        } else {
            V3_VERSION
        };
        let enc = |opcode: u8| Enc::at_version(version, opcode, corr);
        match self {
            Response::Menu(m) => {
                let mut e = enc(OP_R_MENU);
                e.u64(m.epoch);
                e.str(&m.metric);
                e.u32(m.points.len() as u32);
                for &(x, p) in &m.points {
                    e.f64(x);
                    e.f64(p);
                }
                e.finish()
            }
            Response::Quote(q) => {
                let mut e = enc(OP_R_QUOTE);
                e.f64(q.x);
                e.f64(q.delta);
                e.f64(q.price);
                e.f64(q.expected_error);
                e.str(&q.metric);
                e.u64(q.snapshot_epoch);
                e.str(&q.listing);
                e.finish()
            }
            Response::Commit(s) => {
                let mut e = enc(OP_R_COMMIT);
                e.f64(s.inverse_ncp);
                e.f64(s.price);
                e.f64(s.expected_error);
                e.str(&s.metric);
                e.u64(s.transaction);
                e.f64s(&s.weights);
                e.finish()
            }
            Response::BatchCommit(b) => {
                let mut e = enc(OP_R_BATCH_COMMIT);
                e.u16(b.items.len().min(MAX_BATCH_ITEMS) as u16);
                for item in b.items.iter().take(MAX_BATCH_ITEMS) {
                    match item {
                        BatchOutcomeMsg::Sale(s) => {
                            e.u8(1);
                            e.f64(s.inverse_ncp);
                            e.f64(s.price);
                            e.f64(s.expected_error);
                            e.str(&s.metric);
                            e.u64(s.transaction);
                            e.f64s(&s.weights);
                        }
                        BatchOutcomeMsg::Error { code, message } => {
                            e.u8(0);
                            e.u16(*code as u16);
                            e.str(message);
                        }
                    }
                }
                e.finish()
            }
            Response::MenuChunk(c) => {
                let mut e = enc(OP_R_MENU_CHUNK);
                e.u64(c.epoch);
                e.str(&c.metric);
                e.u64(c.offset);
                e.u64(c.total);
                e.u32(c.points.len() as u32);
                for &(x, p) in &c.points {
                    e.f64(x);
                    e.f64(p);
                }
                e.u8(u8::from(c.done));
                e.finish()
            }
            Response::Account(a) => {
                let mut e = enc(OP_R_ACCOUNT);
                e.str(&a.listing);
                e.u64(a.buyer);
                e.f64(a.spent);
                for opt in [a.budget, a.remaining] {
                    match opt {
                        Some(v) => {
                            e.u8(1);
                            e.f64(v);
                        }
                        None => e.u8(0),
                    }
                }
                e.finish()
            }
            Response::Info(i) => {
                let mut e = enc(OP_R_INFO);
                e.str(&i.listing);
                e.str(&i.metric);
                e.u64(i.epoch);
                e.u64(i.menu_len);
                e.f64(i.x_lo);
                e.f64(i.x_hi);
                e.f64(i.expected_revenue);
                e.u64(i.sales);
                e.f64(i.revenue);
                e.finish()
            }
            Response::Listings(l) => {
                let mut e = enc(OP_R_LISTINGS);
                e.str(&l.default_listing);
                e.u16(l.listings.len() as u16);
                for row in &l.listings {
                    e.str(&row.name);
                    e.str(&row.model_kind);
                    e.str(&row.mechanism);
                    e.str(&row.state);
                    e.u8(u8::from(row.open));
                    e.f64(row.expected_revenue);
                }
                e.finish()
            }
            Response::Stats(s) => {
                let mut e = enc(OP_R_STATS);
                e.u64(s.connections);
                e.u64(s.busy_rejections);
                e.u64(s.protocol_errors);
                e.u64(s.queue_depth);
                e.u16(s.ops.len() as u16);
                for op in &s.ops {
                    e.str(&op.op);
                    e.u64(op.requests);
                    e.u64(op.errors);
                    e.u64(op.p50_micros);
                    e.u64(op.p99_micros);
                }
                e.u16(s.listings.len() as u16);
                for row in &s.listings {
                    e.str(&row.listing);
                    e.str(&row.state);
                    e.u64(row.epoch);
                    e.u64(row.sales);
                    e.f64(row.revenue);
                    if version >= 5 {
                        e.u64(row.budget_rejects);
                        e.u64(row.exhausted_buyers);
                    }
                }
                e.finish()
            }
            Response::Publish {
                listing,
                epoch,
                expected_revenue,
            } => {
                let mut e = enc(OP_R_PUBLISH);
                e.str(listing);
                e.u64(*epoch);
                e.f64(*expected_revenue);
                e.finish()
            }
            Response::Retire { listing } => {
                let mut e = enc(OP_R_RETIRE);
                e.str(listing);
                e.finish()
            }
            Response::Busy { retry_after_ms } => {
                let mut e = enc(OP_R_BUSY);
                e.u32(*retry_after_ms);
                e.finish()
            }
            Response::Error { code, message } => {
                let mut e = enc(OP_R_ERROR);
                e.u16(*code as u16);
                e.str(message);
                e.finish()
            }
        }
    }

    /// Decodes a payload into a response, dropping the correlation id.
    pub fn decode(payload: &[u8]) -> Result<Response> {
        Ok(Response::decode_framed(payload)?.1)
    }

    /// Decodes a payload into `(correlation id, response)`; the id is 0
    /// for responses below v4.
    pub fn decode_framed(payload: &[u8]) -> Result<(u64, Response)> {
        let (version, opcode, corr, mut d) = open_payload(payload)?;
        let resp = match opcode {
            OP_R_MENU => {
                let epoch = d.u64()?;
                let metric = d.str()?;
                let len = d.u32()? as usize;
                if len > MAX_VEC_LEN {
                    return Err(Dec::bad(format!("menu of {len} points exceeds cap")));
                }
                let points = (0..len)
                    .map(|_| Ok((d.f64()?, d.f64()?)))
                    .collect::<Result<Vec<_>>>()?;
                Response::Menu(MenuMsg {
                    epoch,
                    metric,
                    points,
                })
            }
            OP_R_QUOTE => Response::Quote(QuoteMsg {
                x: d.f64()?,
                delta: d.f64()?,
                price: d.f64()?,
                expected_error: d.f64()?,
                metric: d.str()?,
                snapshot_epoch: d.u64()?,
                listing: if version >= 3 {
                    d.str()?
                } else {
                    String::new()
                },
            }),
            OP_R_COMMIT => Response::Commit(SaleMsg {
                inverse_ncp: d.f64()?,
                price: d.f64()?,
                expected_error: d.f64()?,
                metric: d.str()?,
                transaction: d.u64()?,
                weights: d.f64s()?,
            }),
            OP_R_BATCH_COMMIT if version >= 4 => {
                let count = d.u16()? as usize;
                if count > MAX_BATCH_ITEMS {
                    return Err(Dec::bad(format!(
                        "batch of {count} outcomes exceeds cap of {MAX_BATCH_ITEMS}"
                    )));
                }
                let items = (0..count)
                    .map(|_| {
                        Ok(match d.u8()? {
                            1 => BatchOutcomeMsg::Sale(SaleMsg {
                                inverse_ncp: d.f64()?,
                                price: d.f64()?,
                                expected_error: d.f64()?,
                                metric: d.str()?,
                                transaction: d.u64()?,
                                weights: d.f64s()?,
                            }),
                            0 => {
                                let raw = d.u16()?;
                                let code = ErrorCode::from_u16(raw).ok_or_else(|| {
                                    Dec::bad(format!("unknown batch error code {raw}"))
                                })?;
                                BatchOutcomeMsg::Error {
                                    code,
                                    message: d.str()?,
                                }
                            }
                            other => {
                                return Err(Dec::bad(format!("bad batch outcome tag {other}")));
                            }
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                Response::BatchCommit(BatchCommitMsg { items })
            }
            OP_R_MENU_CHUNK if version >= 4 => {
                let epoch = d.u64()?;
                let metric = d.str()?;
                let offset = d.u64()?;
                let total = d.u64()?;
                let len = d.u32()? as usize;
                if len > MAX_VEC_LEN {
                    return Err(Dec::bad(format!("menu chunk of {len} points exceeds cap")));
                }
                let points = (0..len)
                    .map(|_| Ok((d.f64()?, d.f64()?)))
                    .collect::<Result<Vec<_>>>()?;
                let done = d.u8()? != 0;
                Response::MenuChunk(MenuChunkMsg {
                    epoch,
                    metric,
                    offset,
                    total,
                    points,
                    done,
                })
            }
            OP_R_ACCOUNT if version >= 5 => {
                let listing = d.str()?;
                let buyer = d.u64()?;
                let spent = d.f64()?;
                let mut opt_f64 = || -> Result<Option<f64>> {
                    match d.u8()? {
                        0 => Ok(None),
                        1 => Ok(Some(d.f64()?)),
                        other => Err(Dec::bad(format!("bad account field flag {other}"))),
                    }
                };
                let budget = opt_f64()?;
                let remaining = opt_f64()?;
                Response::Account(AccountMsg {
                    listing,
                    buyer,
                    spent,
                    budget,
                    remaining,
                })
            }
            OP_R_INFO => Response::Info(InfoMsg {
                listing: d.str()?,
                metric: d.str()?,
                epoch: d.u64()?,
                menu_len: d.u64()?,
                x_lo: d.f64()?,
                x_hi: d.f64()?,
                expected_revenue: d.f64()?,
                sales: d.u64()?,
                revenue: d.f64()?,
            }),
            OP_R_LISTINGS => {
                let default_listing = d.str()?;
                let n = d.u16()? as usize;
                let listings = (0..n)
                    .map(|_| {
                        Ok(ListingMsg {
                            name: d.str()?,
                            model_kind: d.str()?,
                            mechanism: d.str()?,
                            state: d.str()?,
                            open: d.u8()? != 0,
                            expected_revenue: d.f64()?,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                Response::Listings(ListingsMsg {
                    default_listing,
                    listings,
                })
            }
            OP_R_STATS => {
                let connections = d.u64()?;
                let busy_rejections = d.u64()?;
                let protocol_errors = d.u64()?;
                let queue_depth = if version >= 2 { d.u64()? } else { 0 };
                let n = d.u16()? as usize;
                let ops = (0..n)
                    .map(|_| {
                        Ok(OpStatsMsg {
                            op: d.str()?,
                            requests: d.u64()?,
                            errors: d.u64()?,
                            p50_micros: d.u64()?,
                            p99_micros: d.u64()?,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                let listings = if version >= 3 {
                    let n = d.u16()? as usize;
                    (0..n)
                        .map(|_| {
                            Ok(ListingStatsMsg {
                                listing: d.str()?,
                                state: d.str()?,
                                epoch: d.u64()?,
                                sales: d.u64()?,
                                revenue: d.f64()?,
                                budget_rejects: if version >= 5 { d.u64()? } else { 0 },
                                exhausted_buyers: if version >= 5 { d.u64()? } else { 0 },
                            })
                        })
                        .collect::<Result<Vec<_>>>()?
                } else {
                    Vec::new()
                };
                Response::Stats(StatsMsg {
                    connections,
                    busy_rejections,
                    protocol_errors,
                    queue_depth,
                    ops,
                    listings,
                })
            }
            OP_R_PUBLISH => Response::Publish {
                listing: d.str()?,
                epoch: d.u64()?,
                expected_revenue: d.f64()?,
            },
            OP_R_RETIRE => Response::Retire { listing: d.str()? },
            OP_R_BUSY => Response::Busy {
                retry_after_ms: if version >= 2 { d.u32()? } else { 0 },
            },
            OP_R_ERROR => {
                let raw = d.u16()?;
                let code = ErrorCode::from_u16(raw)
                    .ok_or_else(|| Dec::bad(format!("unknown error code {raw}")))?;
                Response::Error {
                    code,
                    message: d.str()?,
                }
            }
            other => {
                return Err(Dec::bad(format!("unknown response opcode {other:#04x}")));
            }
        };
        d.finish()?;
        Ok((corr, resp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let decoded = Request::decode(&req.encode()).unwrap();
        assert_eq!(decoded, req);
    }

    fn roundtrip_response(resp: Response) {
        let decoded = Response::decode(&resp.encode()).unwrap();
        assert_eq!(decoded, resp);
    }

    #[test]
    fn requests_round_trip() {
        roundtrip_request(Request::Menu { listing: None });
        roundtrip_request(Request::Menu {
            listing: Some("acme-data".into()),
        });
        roundtrip_request(Request::Info { listing: None });
        roundtrip_request(Request::Info {
            listing: Some("acme-data".into()),
        });
        roundtrip_request(Request::Listings);
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Publish {
            listing: "acme-data".into(),
        });
        roundtrip_request(Request::Retire {
            listing: "acme-data".into(),
        });
        roundtrip_request(Request::Quote {
            listing: None,
            request: PurchaseRequest::AtInverseNcp(42.5),
        });
        roundtrip_request(Request::Quote {
            listing: Some("acme-data".into()),
            request: PurchaseRequest::ErrorBudget(0.05),
        });
        roundtrip_request(Request::Quote {
            listing: None,
            request: PurchaseRequest::PriceBudget(17.0),
        });
        roundtrip_request(Request::Commit {
            listing: None,
            x: 99.0,
            snapshot_epoch: 3,
            payment: 12.75,
            nonce: None,
            buyer: None,
        });
        roundtrip_request(Request::Commit {
            listing: Some("acme-data".into()),
            x: 99.0,
            snapshot_epoch: 3,
            payment: 12.75,
            nonce: Some(0xDEAD_BEEF_CAFE_F00D),
            buyer: Some(42),
        });
        roundtrip_request(Request::Account {
            listing: None,
            buyer: 7,
        });
        roundtrip_request(Request::Account {
            listing: Some("acme-data".into()),
            buyer: 0xFFFF_FFFF_FFFF_FFFF,
        });
    }

    #[test]
    fn responses_round_trip() {
        roundtrip_response(Response::Busy { retry_after_ms: 25 });
        roundtrip_response(Response::Error {
            code: ErrorCode::QuoteExpired,
            message: "stale epoch".into(),
        });
        roundtrip_response(Response::Menu(MenuMsg {
            epoch: 2,
            metric: "square".into(),
            points: vec![(1.0, 0.5), (50.0, 20.25), (100.0, 30.0)],
        }));
        roundtrip_response(Response::Quote(QuoteMsg {
            x: 20.0,
            delta: 0.05,
            price: 14.5,
            expected_error: 0.05,
            metric: "logistic".into(),
            snapshot_epoch: 7,
            listing: "acme-data".into(),
        }));
        roundtrip_response(Response::Listings(ListingsMsg {
            default_listing: "acme-data".into(),
            listings: vec![
                ListingMsg {
                    name: "acme-data".into(),
                    model_kind: "linear_regression".into(),
                    mechanism: "gaussian".into(),
                    state: "published".into(),
                    open: true,
                    expected_revenue: 31.5,
                },
                ListingMsg {
                    name: "old-data".into(),
                    model_kind: "logistic_regression".into(),
                    mechanism: "gaussian".into(),
                    state: "retired".into(),
                    open: false,
                    expected_revenue: 0.0,
                },
            ],
        }));
        roundtrip_response(Response::Publish {
            listing: "acme-data".into(),
            epoch: 4,
            expected_revenue: 29.75,
        });
        roundtrip_response(Response::Retire {
            listing: "old-data".into(),
        });
        roundtrip_response(Response::Commit(SaleMsg {
            inverse_ncp: 20.0,
            price: 14.5,
            expected_error: 0.05,
            metric: "square".into(),
            transaction: 123,
            weights: vec![0.25, -1.5, 3.125, f64::MIN_POSITIVE],
        }));
        roundtrip_response(Response::Info(InfoMsg {
            listing: "Simulated1".into(),
            metric: "square".into(),
            epoch: 1,
            menu_len: 50,
            x_lo: 1.0,
            x_hi: 100.0,
            expected_revenue: 31.5,
            sales: 12,
            revenue: 340.0,
        }));
        roundtrip_response(Response::Stats(StatsMsg {
            connections: 10,
            busy_rejections: 3,
            protocol_errors: 1,
            queue_depth: 7,
            ops: vec![OpStatsMsg {
                op: "quote".into(),
                requests: 100,
                errors: 2,
                p50_micros: 64,
                p99_micros: 1024,
            }],
            listings: vec![ListingStatsMsg {
                listing: "acme-data".into(),
                state: "published".into(),
                epoch: 2,
                sales: 12,
                revenue: 340.0,
                budget_rejects: 5,
                exhausted_buyers: 2,
            }],
        }));
        roundtrip_response(Response::Account(AccountMsg {
            listing: "acme-data".into(),
            buyer: 42,
            spent: 75.0,
            budget: Some(100.0),
            remaining: Some(25.0),
        }));
        roundtrip_response(Response::Account(AccountMsg {
            listing: "acme-data".into(),
            buyer: 43,
            spent: 320.0,
            budget: None,
            remaining: None,
        }));
    }

    #[test]
    fn nan_payloads_survive_bitwise() {
        let payload = Request::Commit {
            listing: None,
            x: f64::NAN,
            snapshot_epoch: 0,
            payment: f64::NEG_INFINITY,
            nonce: None,
            buyer: None,
        }
        .encode();
        match Request::decode(&payload).unwrap() {
            Request::Commit { x, payment, .. } => {
                assert!(x.is_nan());
                assert_eq!(payment, f64::NEG_INFINITY);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn bad_magic_version_and_opcode_are_typed() {
        let mut payload = Request::Menu { listing: None }.encode();
        payload[0] = b'X';
        assert!(matches!(
            Request::decode(&payload),
            Err(ServerError::Protocol { .. })
        ));

        let mut payload = Request::Menu { listing: None }.encode();
        payload[2] = VERSION + 1;
        assert!(matches!(
            Request::decode(&payload),
            Err(ServerError::UnsupportedVersion { got }) if got == VERSION + 1
        ));

        let mut payload = Request::Menu { listing: None }.encode();
        payload[3] = 0x7F;
        assert!(matches!(
            Request::decode(&payload),
            Err(ServerError::Protocol { .. })
        ));
    }

    #[test]
    fn truncated_and_trailing_bytes_are_rejected() {
        let payload = Request::Commit {
            listing: Some("acme-data".into()),
            x: 1.0,
            snapshot_epoch: 1,
            payment: 1.0,
            nonce: Some(1),
            buyer: Some(9),
        }
        .encode();
        assert!(matches!(
            Request::decode(&payload[..payload.len() - 1]),
            Err(ServerError::Protocol { .. })
        ));
        let mut extended = payload;
        extended.push(0);
        assert!(matches!(
            Request::decode(&extended),
            Err(ServerError::Protocol { .. })
        ));
    }

    #[test]
    fn framing_round_trips_and_enforces_the_cap() {
        let payload = Request::Quote {
            listing: None,
            request: PurchaseRequest::ErrorBudget(0.25),
        }
        .encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        // Two frames back to back parse independently.
        write_frame(&mut buf, &payload).unwrap();
        let mut reader = &buf[..];
        assert_eq!(read_frame(&mut reader).unwrap(), payload);
        assert_eq!(read_frame_opt(&mut reader).unwrap().unwrap(), payload);
        assert!(read_frame_opt(&mut reader).unwrap().is_none());

        // An announced length beyond the cap is rejected without allocating.
        let huge = ((MAX_FRAME_LEN + 1) as u32).to_be_bytes();
        assert!(matches!(
            read_frame(&mut &huge[..]),
            Err(ServerError::FrameTooLarge { .. })
        ));
        // Writing an oversized frame is refused up front.
        assert!(matches!(
            write_frame(&mut Vec::new(), &vec![0u8; MAX_FRAME_LEN + 1]),
            Err(ServerError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn mid_frame_eof_is_connection_closed() {
        let payload = Request::Menu { listing: None }.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        // Cut inside the length prefix and inside the payload.
        assert!(matches!(
            read_frame(&mut &buf[..2]),
            Err(ServerError::ConnectionClosed)
        ));
        assert!(matches!(
            read_frame(&mut &buf[..buf.len() - 1]),
            Err(ServerError::ConnectionClosed)
        ));
    }

    #[test]
    fn market_errors_map_to_codes() {
        use nimbus_market::MarketError;
        assert_eq!(
            ErrorCode::for_market_error(&MarketError::MarketNotOpen),
            ErrorCode::MarketNotOpen
        );
        assert_eq!(
            ErrorCode::for_market_error(&MarketError::QuoteExpired {
                quoted: 1,
                current: 2
            }),
            ErrorCode::QuoteExpired
        );
        assert_eq!(
            ErrorCode::for_market_error(&MarketError::InvalidPayment { offered: -1.0 }),
            ErrorCode::InvalidPayment
        );
        assert_eq!(
            ErrorCode::for_market_error(&MarketError::InsufficientPayment {
                price: 2.0,
                offered: 1.0
            }),
            ErrorCode::InsufficientPayment
        );
        assert_eq!(
            ErrorCode::for_market_error(&MarketError::Core(
                nimbus_core::CoreError::BudgetUnsatisfiable {
                    kind: "error",
                    budget: 0.001
                }
            )),
            ErrorCode::Unsatisfiable
        );
        assert_eq!(
            ErrorCode::for_market_error(&MarketError::ListingRetired { name: "m".into() }),
            ErrorCode::Retired
        );
        assert_eq!(
            ErrorCode::for_market_error(&MarketError::UnknownListing { name: "m".into() }),
            ErrorCode::InvalidRequest
        );
        assert_eq!(
            ErrorCode::for_market_error(&MarketError::DuplicateListing { name: "m".into() }),
            ErrorCode::InvalidRequest
        );
        assert_eq!(
            ErrorCode::for_market_error(&MarketError::BudgetExhausted {
                buyer: 7,
                requested: 10.0,
                remaining: 2.5
            }),
            ErrorCode::BudgetExhausted
        );
    }

    #[test]
    fn v1_peers_still_decode() {
        // A v1 COMMIT has no nonce flag byte: magic, version 1, opcode,
        // then exactly x | epoch | payment.
        let mut payload = vec![b'N', b'B', 1, 0x03];
        payload.extend_from_slice(&42.5f64.to_bits().to_be_bytes());
        payload.extend_from_slice(&9u64.to_be_bytes());
        payload.extend_from_slice(&12.75f64.to_bits().to_be_bytes());
        assert_eq!(
            Request::decode(&payload).unwrap(),
            Request::Commit {
                listing: None,
                x: 42.5,
                snapshot_epoch: 9,
                payment: 12.75,
                nonce: None,
                buyer: None,
            }
        );

        // A v1 BUSY is a bare header; the retry hint defaults to zero.
        let payload = vec![b'N', b'B', 1, 0xBB];
        assert_eq!(
            Response::decode(&payload).unwrap(),
            Response::Busy { retry_after_ms: 0 }
        );

        // A v1 STATS body lacks the queue-depth gauge.
        let mut payload = vec![b'N', b'B', 1, 0x85];
        payload.extend_from_slice(&4u64.to_be_bytes()); // connections
        payload.extend_from_slice(&2u64.to_be_bytes()); // busy_rejections
        payload.extend_from_slice(&1u64.to_be_bytes()); // protocol_errors
        payload.extend_from_slice(&0u16.to_be_bytes()); // no per-op rows
        assert_eq!(
            Response::decode(&payload).unwrap(),
            Response::Stats(StatsMsg {
                connections: 4,
                busy_rejections: 2,
                protocol_errors: 1,
                queue_depth: 0,
                ops: vec![],
                listings: vec![],
            })
        );
    }

    #[test]
    fn v2_peers_still_decode_against_the_default_listing() {
        // A v2 MENU is a bare header: no listing field. It decodes to
        // `listing: None`, which the server resolves to its default.
        let payload = vec![b'N', b'B', 2, 0x01];
        assert_eq!(
            Request::decode(&payload).unwrap(),
            Request::Menu { listing: None }
        );

        // A v2 QUOTE is kind + value, no listing.
        let mut payload = vec![b'N', b'B', 2, 0x02, 1];
        payload.extend_from_slice(&25.0f64.to_bits().to_be_bytes());
        assert_eq!(
            Request::decode(&payload).unwrap(),
            Request::Quote {
                listing: None,
                request: PurchaseRequest::AtInverseNcp(25.0),
            }
        );

        // A v2 COMMIT has the nonce flag but no listing field.
        let mut payload = vec![b'N', b'B', 2, 0x03];
        payload.extend_from_slice(&42.5f64.to_bits().to_be_bytes());
        payload.extend_from_slice(&9u64.to_be_bytes());
        payload.extend_from_slice(&12.75f64.to_bits().to_be_bytes());
        payload.push(1);
        payload.extend_from_slice(&7u64.to_be_bytes());
        assert_eq!(
            Request::decode(&payload).unwrap(),
            Request::Commit {
                listing: None,
                x: 42.5,
                snapshot_epoch: 9,
                payment: 12.75,
                nonce: Some(7),
                buyer: None,
            }
        );

        // A v2 R_QUOTE lacks the echoed listing; it decodes to empty.
        let mut payload = vec![b'N', b'B', 2, 0x82];
        for v in [20.0f64, 0.05, 14.5, 0.05] {
            payload.extend_from_slice(&v.to_bits().to_be_bytes());
        }
        payload.extend_from_slice(&(6u16).to_be_bytes());
        payload.extend_from_slice(b"square");
        payload.extend_from_slice(&3u64.to_be_bytes());
        assert_eq!(
            Response::decode(&payload).unwrap(),
            Response::Quote(QuoteMsg {
                x: 20.0,
                delta: 0.05,
                price: 14.5,
                expected_error: 0.05,
                metric: "square".into(),
                snapshot_epoch: 3,
                listing: String::new(),
            })
        );

        // A v2 STATS body has the queue-depth gauge but no per-listing rows.
        let mut payload = vec![b'N', b'B', 2, 0x85];
        payload.extend_from_slice(&4u64.to_be_bytes()); // connections
        payload.extend_from_slice(&2u64.to_be_bytes()); // busy_rejections
        payload.extend_from_slice(&1u64.to_be_bytes()); // protocol_errors
        payload.extend_from_slice(&6u64.to_be_bytes()); // queue_depth
        payload.extend_from_slice(&0u16.to_be_bytes()); // no per-op rows
        assert_eq!(
            Response::decode(&payload).unwrap(),
            Response::Stats(StatsMsg {
                connections: 4,
                busy_rejections: 2,
                protocol_errors: 1,
                queue_depth: 6,
                ops: vec![],
                listings: vec![],
            })
        );
    }

    #[test]
    fn correlation_ids_round_trip_at_v4() {
        let req = Request::Quote {
            listing: Some("acme-data".into()),
            request: PurchaseRequest::AtInverseNcp(42.5),
        };
        let payload = req.encode_with_corr(0xFEED_F00D_1234_5678);
        assert_eq!(payload[2], VERSION);
        assert_eq!(sniff_header(&payload), (VERSION, 0xFEED_F00D_1234_5678));
        let (corr, decoded) = Request::decode_framed(&payload).unwrap();
        assert_eq!(corr, 0xFEED_F00D_1234_5678);
        assert_eq!(decoded, req);

        let resp = Response::Busy { retry_after_ms: 9 };
        let payload = resp.encode_versioned(VERSION, 77);
        let (corr, decoded) = Response::decode_framed(&payload).unwrap();
        assert_eq!(corr, 77);
        assert_eq!(decoded, resp);
    }

    #[test]
    fn v3_peers_get_byte_identical_v3_responses() {
        // The interop contract: a response encoded for any pre-v4 peer is
        // exactly the v3 encoding — version byte 3, no correlation id.
        let resp = Response::Quote(QuoteMsg {
            x: 20.0,
            delta: 0.05,
            price: 14.5,
            expected_error: 0.05,
            metric: "square".into(),
            snapshot_epoch: 3,
            listing: "acme-data".into(),
        });
        for peer in 1..=3u8 {
            let payload = resp.encode_versioned(peer, 123);
            assert_eq!(payload[2], V3_VERSION);
            // Hand-build the v3 frame a v3 server produced.
            let mut expect = vec![b'N', b'B', 3, 0x82];
            for v in [20.0f64, 0.05, 14.5, 0.05] {
                expect.extend_from_slice(&v.to_bits().to_be_bytes());
            }
            expect.extend_from_slice(&(6u16).to_be_bytes());
            expect.extend_from_slice(b"square");
            expect.extend_from_slice(&3u64.to_be_bytes());
            expect.extend_from_slice(&(9u16).to_be_bytes());
            expect.extend_from_slice(b"acme-data");
            assert_eq!(payload, expect);
            let (corr, decoded) = Response::decode_framed(&payload).unwrap();
            assert_eq!(corr, 0); // pre-v4 frames carry no correlation id
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn batch_commit_round_trips_with_mixed_outcomes() {
        roundtrip_request(Request::BatchCommit {
            listing: Some("acme-data".into()),
            items: vec![
                BatchItemMsg {
                    x: 10.0,
                    snapshot_epoch: 1,
                    payment: 5.5,
                    nonce: None,
                    buyer: None,
                },
                BatchItemMsg {
                    x: 20.0,
                    snapshot_epoch: 1,
                    payment: 9.25,
                    nonce: Some(0xABCD),
                    buyer: Some(77),
                },
            ],
        });
        roundtrip_response(Response::BatchCommit(BatchCommitMsg {
            items: vec![
                BatchOutcomeMsg::Sale(SaleMsg {
                    inverse_ncp: 10.0,
                    price: 5.5,
                    expected_error: 0.1,
                    metric: "square".into(),
                    transaction: 42,
                    weights: vec![1.0, -2.0],
                }),
                BatchOutcomeMsg::Error {
                    code: ErrorCode::QuoteExpired,
                    message: "superseded".into(),
                },
                BatchOutcomeMsg::Error {
                    code: ErrorCode::Retired,
                    message: "gone".into(),
                },
            ],
        }));
    }

    #[test]
    fn batch_commit_rejects_oversized_and_pre_v4_frames() {
        // Announced count over the cap is refused before allocating.
        let mut payload = Request::BatchCommit {
            listing: None,
            items: vec![],
        }
        .encode();
        let base = payload.len();
        payload.truncate(base - 2);
        payload.extend_from_slice(&((MAX_BATCH_ITEMS + 1) as u16).to_be_bytes());
        assert!(matches!(
            Request::decode(&payload),
            Err(ServerError::Protocol { .. })
        ));

        // The opcode does not exist below v4: a v3-stamped BATCH_COMMIT
        // frame is an unknown opcode, exactly as a real v3 peer sees it.
        let mut v3 = vec![b'N', b'B', 3, 0x07];
        v3.extend_from_slice(&0u16.to_be_bytes()); // listing ""
        v3.extend_from_slice(&0u16.to_be_bytes()); // zero items
        assert!(matches!(
            Request::decode(&v3),
            Err(ServerError::Protocol { .. })
        ));
    }

    #[test]
    fn menu_stream_round_trips() {
        roundtrip_request(Request::MenuStream {
            listing: None,
            chunk: 0,
        });
        roundtrip_request(Request::MenuStream {
            listing: Some("acme-data".into()),
            chunk: 16,
        });
        roundtrip_response(Response::MenuChunk(MenuChunkMsg {
            epoch: 5,
            metric: "square".into(),
            offset: 64,
            total: 100,
            points: vec![(65.0, 20.5), (66.0, 20.75)],
            done: true,
        }));
    }

    #[test]
    fn sniff_header_tolerates_short_and_old_frames() {
        assert_eq!(sniff_header(&[]), (0, 0));
        assert_eq!(sniff_header(b"NB"), (0, 0));
        // v3 frames have no correlation id to sniff.
        assert_eq!(sniff_header(&[b'N', b'B', 3, 0x01]), (3, 0));
        // A v4 header too short for the id reports id 0 and leaves the
        // rejection to the full decoder.
        assert_eq!(sniff_header(&[b'N', b'B', 4, 0x01, 1, 2]), (4, 0));
    }

    #[test]
    fn every_error_code_round_trips() {
        for raw in 1..=14u16 {
            let code = ErrorCode::from_u16(raw).unwrap();
            assert_eq!(code as u16, raw);
            roundtrip_response(Response::Error {
                code,
                message: format!("code {raw}"),
            });
        }
        assert!(ErrorCode::from_u16(0).is_none());
        assert!(ErrorCode::from_u16(999).is_none());
    }

    #[test]
    fn v4_peers_get_byte_identical_v4_responses() {
        // The interop contract: a response encoded for a v4 peer is the
        // v4 encoding — version byte 4, correlation id, no v5 fields.
        let resp = Response::Stats(StatsMsg {
            connections: 4,
            busy_rejections: 2,
            protocol_errors: 1,
            queue_depth: 6,
            ops: vec![],
            listings: vec![ListingStatsMsg {
                listing: "acme-data".into(),
                state: "published".into(),
                epoch: 2,
                sales: 12,
                revenue: 340.0,
                budget_rejects: 9,
                exhausted_buyers: 3,
            }],
        });
        let payload = resp.encode_versioned(4, 55);
        assert_eq!(payload[2], V4_VERSION);
        // Hand-build the frame a v4 server produced.
        let mut expect = vec![b'N', b'B', 4, 0x85];
        expect.extend_from_slice(&55u64.to_be_bytes()); // corr
        expect.extend_from_slice(&4u64.to_be_bytes()); // connections
        expect.extend_from_slice(&2u64.to_be_bytes()); // busy_rejections
        expect.extend_from_slice(&1u64.to_be_bytes()); // protocol_errors
        expect.extend_from_slice(&6u64.to_be_bytes()); // queue_depth
        expect.extend_from_slice(&0u16.to_be_bytes()); // no per-op rows
        expect.extend_from_slice(&1u16.to_be_bytes()); // one listing row
        expect.extend_from_slice(&(9u16).to_be_bytes());
        expect.extend_from_slice(b"acme-data");
        expect.extend_from_slice(&(9u16).to_be_bytes());
        expect.extend_from_slice(b"published");
        expect.extend_from_slice(&2u64.to_be_bytes()); // epoch
        expect.extend_from_slice(&12u64.to_be_bytes()); // sales
        expect.extend_from_slice(&340.0f64.to_bits().to_be_bytes());
        assert_eq!(payload, expect);
        // A v5 decoder defaults the budget counters it cannot see.
        match Response::decode(&payload).unwrap() {
            Response::Stats(s) => {
                assert_eq!(s.listings[0].budget_rejects, 0);
                assert_eq!(s.listings[0].exhausted_buyers, 0);
            }
            other => panic!("wrong variant: {other:?}"),
        }

        // A v4 COMMIT has no buyer field and decodes to anonymous.
        let mut v4 = vec![b'N', b'B', 4, 0x03];
        v4.extend_from_slice(&0u64.to_be_bytes()); // corr
        v4.extend_from_slice(&42.5f64.to_bits().to_be_bytes());
        v4.extend_from_slice(&9u64.to_be_bytes());
        v4.extend_from_slice(&12.75f64.to_bits().to_be_bytes());
        v4.push(0); // no nonce
        v4.extend_from_slice(&0u16.to_be_bytes()); // listing ""
        assert_eq!(
            Request::decode(&v4).unwrap(),
            Request::Commit {
                listing: None,
                x: 42.5,
                snapshot_epoch: 9,
                payment: 12.75,
                nonce: None,
                buyer: None,
            }
        );

        // The ACCOUNT opcode does not exist below v5.
        let mut v4 = vec![b'N', b'B', 4, 0x12];
        v4.extend_from_slice(&0u64.to_be_bytes()); // corr
        v4.extend_from_slice(&7u64.to_be_bytes()); // buyer
        v4.extend_from_slice(&0u16.to_be_bytes()); // listing ""
        assert!(matches!(
            Request::decode(&v4),
            Err(ServerError::Protocol { .. })
        ));
    }
}
