// Test code: `unwrap`/`panic!` are assertions here, not serving-path
// hazards — opt out of the workspace panic-hygiene lints.
#![allow(clippy::unwrap_used, clippy::panic)]

//! End-to-end serving tests: a real `NimbusServer` on an ephemeral
//! loopback port, driven by real TCP clients.
//!
//! The core reconciliation: revenue in the broker's striped ledger must
//! equal the sum of prices the *clients* observed over the wire — the
//! serving layer adds no money and loses none. On top of that: admission
//! floods resolve as typed `BUSY` frames (never hangs), stale quotes fail
//! with the epoch error, malformed frames get typed protocol errors, and
//! graceful shutdown never truncates an in-flight response.

use nimbus_core::GaussianMechanism;
use nimbus_data::catalog::{DatasetSpec, PaperDataset};
use nimbus_market::curves::{DemandCurve, MarketCurves, ValueCurve};
use nimbus_market::{Broker, PurchaseRequest, Seller};
use nimbus_ml::LinearRegressionTrainer;
use nimbus_server::loadgen::{run_load, LoadConfig, LoadMode};
use nimbus_server::wire::{self, ErrorCode, Response};
use nimbus_server::{
    ClientConfig, NimbusClient, NimbusServer, RetryPolicy, ServerConfig, ServerError,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn build_broker(seed: u64) -> Arc<Broker> {
    let (dataset, _) = DatasetSpec::scaled(PaperDataset::Simulated1, 600)
        .materialize(seed)
        .unwrap();
    let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
    let broker = Broker::builder(Seller::new("e2e", dataset, curves))
        .trainer(LinearRegressionTrainer::ridge(1e-6))
        .mechanism(GaussianMechanism)
        .n_price_points(24)
        .error_curve_samples(12)
        .seed(seed)
        .build()
        .unwrap();
    broker.open_market().unwrap();
    Arc::new(broker)
}

fn start_server(broker: Arc<Broker>, config: ServerConfig) -> NimbusServer {
    NimbusServer::start(broker, "e2e-listing", "127.0.0.1:0", config).unwrap()
}

fn fast_client() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Duration::from_secs(10),
        write_timeout: Duration::from_secs(5),
        // These tests account for every BUSY themselves.
        retry: RetryPolicy::none(),
    }
}

/// The acceptance gate: concurrent buyers over loopback TCP, then the
/// broker-side ledger must equal the client-observed books exactly.
#[test]
fn concurrent_buyers_reconcile_with_ledger() {
    let broker = build_broker(41);
    let server = start_server(
        broker.clone(),
        ServerConfig {
            shards: 2,
            workers_per_shard: 4,
            queue_capacity: 64,
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();

    let report = run_load(
        addr,
        &LoadConfig {
            threads: 8,
            requests_per_thread: 25,
            mode: LoadMode::Buy,
            client: fast_client(),
            busy_retries: 0,
        },
    );

    // Capacity (2 shards × 64) dwarfs 8 connections: nothing is shed and
    // nothing fails.
    assert_eq!(report.attempted, 200);
    assert_eq!(
        report.ok, 200,
        "busy={} errors={}",
        report.busy, report.errors
    );
    assert_eq!(report.busy, 0);
    assert_eq!(report.errors, 0);
    assert!(report.throughput() > 0.0);

    // Ledger revenue == sum of prices the clients saw over the wire
    // (shard totals accumulate in arrival order → f64 reassociation only).
    assert_eq!(broker.sales_count(), 200);
    assert!(
        (broker.collected_revenue() - report.revenue).abs() < 1e-6,
        "ledger {} vs client-observed {}",
        broker.collected_revenue(),
        report.revenue
    );

    // The server's own stats agree: one commit per buy, zero shed.
    let stats = server.stats().snapshot();
    let commit = stats.ops.iter().find(|o| o.op == "commit").unwrap();
    assert_eq!(commit.requests, 200);
    assert_eq!(commit.errors, 0);
    assert_eq!(stats.busy_rejections, 0);
    server.shutdown();
}

/// One scripted session covering every opcode, checked against the
/// broker's in-process state.
#[test]
fn full_session_menu_quote_commit_info_stats() {
    let broker = build_broker(7);
    let server = start_server(broker.clone(), ServerConfig::default());
    let mut client = NimbusClient::connect(server.local_addr(), &fast_client()).unwrap();

    let snapshot = broker.snapshot().unwrap();
    let menu = client.menu().unwrap();
    assert_eq!(menu.epoch, snapshot.epoch());
    assert_eq!(menu.metric, snapshot.metric_name());
    assert_eq!(menu.points, snapshot.menu());

    // Wire quote matches the in-process quote bit for bit.
    let wire_quote = client.quote(PurchaseRequest::AtInverseNcp(10.0)).unwrap();
    let local_quote = broker
        .quote_request(PurchaseRequest::AtInverseNcp(10.0))
        .unwrap();
    assert_eq!(wire_quote.x, local_quote.x);
    assert_eq!(wire_quote.price, local_quote.price);
    assert_eq!(wire_quote.expected_error, local_quote.expected_error);
    assert_eq!(wire_quote.snapshot_epoch, local_quote.snapshot_epoch);

    // Commit delivers the noisy weights over the wire.
    let sale = client.commit(&wire_quote, wire_quote.price).unwrap();
    assert_eq!(sale.price, wire_quote.price);
    assert!(!sale.weights.is_empty());
    assert!(sale.weights.iter().all(|w| w.is_finite()));
    let ledger = broker.ledger();
    assert_eq!(ledger.count(), 1);
    assert_eq!(sale.transaction, ledger.transactions()[0].sequence);

    // The error-budget and price-budget purchase options also cross the wire.
    let budgeted = client.buy(PurchaseRequest::PriceBudget(1e9)).unwrap();
    assert!(budgeted.price <= 1e9);

    let info = client.info().unwrap();
    assert_eq!(info.listing, "e2e-listing");
    assert_eq!(info.epoch, snapshot.epoch());
    assert_eq!(info.menu_len, snapshot.menu().len() as u64);
    assert_eq!(info.sales, 2);
    assert!((info.revenue - broker.collected_revenue()).abs() < 1e-9);

    let stats = client.stats().unwrap();
    assert_eq!(stats.connections, 1);
    let commits = stats.ops.iter().find(|o| o.op == "commit").unwrap();
    assert_eq!(commits.requests, 2);
    assert!(commits.p99_micros >= commits.p50_micros);
    server.shutdown();
}

/// Flooding past `shards × queue_capacity` must shed with typed `BUSY`
/// frames — no hangs, no resets, and the non-shed traffic still completes.
#[test]
fn flood_beyond_admission_bound_sheds_busy() {
    let broker = build_broker(13);
    let server = start_server(
        broker.clone(),
        ServerConfig {
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: 1,
            handle_delay: Some(Duration::from_millis(25)),
            ..ServerConfig::default()
        },
    );

    let report = run_load(
        server.local_addr(),
        &LoadConfig {
            threads: 16,
            requests_per_thread: 4,
            mode: LoadMode::Quote,
            client: fast_client(),
            busy_retries: 0,
        },
    );

    assert_eq!(report.attempted, 64);
    assert_eq!(report.ok + report.busy + report.errors, report.attempted);
    assert!(
        report.ok > 0,
        "the admitted connections must still be served"
    );
    assert!(
        report.busy > 0,
        "1 worker × queue of 1 against 16 threads must shed"
    );
    assert_eq!(
        report.errors, 0,
        "shedding must be the typed BUSY frame, never a reset or timeout"
    );
    assert!(report.shed_rate() > 0.0);
    assert_eq!(server.stats().busy_rejections(), report.busy);
    server.shutdown();
}

/// The quote→commit epoch protocol over the wire: a quote priced before
/// `open_market()` re-runs must fail with the typed epoch error, and
/// payment validation errors arrive typed too.
#[test]
fn stale_quotes_and_bad_payments_fail_typed() {
    let broker = build_broker(29);
    let server = start_server(broker.clone(), ServerConfig::default());
    let mut client = NimbusClient::connect(server.local_addr(), &fast_client()).unwrap();

    let quote = client.quote(PurchaseRequest::AtInverseNcp(5.0)).unwrap();

    // Underpay: typed InsufficientPayment, no sale recorded.
    match client.commit(&quote, quote.price / 2.0) {
        Err(ServerError::Remote { code, .. }) => assert_eq!(code, ErrorCode::InsufficientPayment),
        other => panic!("expected InsufficientPayment, got {other:?}"),
    }
    // Nonsense payment: typed InvalidPayment.
    match client.commit(&quote, f64::NAN) {
        Err(ServerError::Remote { code, .. }) => assert_eq!(code, ErrorCode::InvalidPayment),
        other => panic!("expected InvalidPayment, got {other:?}"),
    }

    // Re-open the market: the published epoch moves on…
    broker.open_market().unwrap();
    // …and the old quote is dead, even at full payment.
    match client.commit(&quote, quote.price) {
        Err(ServerError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::QuoteExpired);
            assert!(message.contains("epoch"), "{message}");
        }
        other => panic!("expected QuoteExpired, got {other:?}"),
    }
    assert_eq!(broker.sales_count(), 0);

    // A fresh quote against the new epoch works.
    let sale = client.buy(PurchaseRequest::AtInverseNcp(5.0)).unwrap();
    assert!(sale.price > 0.0);
    server.shutdown();
}

/// Protocol violations get typed error frames, bounded by the framing
/// limits — a garbage payload and an oversized length prefix both answer
/// with `BadFrame` and then the server hangs up, without harming other
/// connections.
#[test]
fn malformed_frames_get_typed_errors() {
    let broker = build_broker(3);
    let server = start_server(broker.clone(), ServerConfig::default());
    let addr = server.local_addr();

    // Garbage payload inside a well-formed frame.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        wire::write_frame(&mut stream, b"this is not a nimbus payload").unwrap();
        let payload = wire::read_frame(&mut stream).unwrap();
        match Response::decode(&payload).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame),
            other => panic!("expected BadFrame error frame, got {other:?}"),
        }
        // Framing is poisoned: the server closes after answering.
        let mut rest = Vec::new();
        assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
    }

    // Wrong version byte: typed UnsupportedVersion.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut payload = Vec::from(wire::MAGIC);
        payload.extend_from_slice(&[wire::VERSION + 1, 0x01]);
        wire::write_frame(&mut stream, &payload).unwrap();
        let reply = wire::read_frame(&mut stream).unwrap();
        match Response::decode(&reply).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnsupportedVersion),
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    // Oversized length prefix: answered with BadFrame before any
    // allocation, then the connection is closed.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let huge = (wire::MAX_FRAME_LEN as u32 + 1).to_be_bytes();
        stream.write_all(&huge).unwrap();
        let payload = wire::read_frame(&mut stream).unwrap();
        match Response::decode(&payload).unwrap() {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::BadFrame);
                assert!(message.contains("exceeds"), "{message}");
            }
            other => panic!("expected BadFrame error frame, got {other:?}"),
        }
        let mut rest = Vec::new();
        assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
    }

    // A well-behaved client on the same server is unaffected.
    let mut client = NimbusClient::connect(addr, &fast_client()).unwrap();
    assert!(client.menu().is_ok());
    let stats = server.stats().snapshot();
    assert!(stats.protocol_errors >= 3);
    server.shutdown();
}

/// Graceful shutdown under live purchase traffic: in-flight responses are
/// never truncated, so every sale the ledger recorded was delivered to a
/// client — the books still reconcile after the plug is pulled.
#[test]
fn graceful_shutdown_drains_in_flight_buyers() {
    let broker = build_broker(59);
    let server = start_server(
        broker.clone(),
        ServerConfig {
            shards: 2,
            workers_per_shard: 2,
            queue_capacity: 32,
            handle_delay: Some(Duration::from_millis(2)),
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();

    let (report, ()) = std::thread::scope(|scope| {
        let load = scope.spawn(move || {
            run_load(
                addr,
                &LoadConfig {
                    threads: 4,
                    requests_per_thread: 200,
                    mode: LoadMode::Buy,
                    client: fast_client(),
                    busy_retries: 0,
                },
            )
        });
        // Let some purchases land, then pull the plug mid-run.
        std::thread::sleep(Duration::from_millis(150));
        server.shutdown();
        (load.join().unwrap(), ())
    });

    assert_eq!(report.attempted, 800);
    assert!(report.ok > 0, "some purchases must have completed");
    assert!(
        report.ok < 800,
        "shutdown raced the run and should have cut it short"
    );
    // Every ledger entry was delivered: client-observed revenue covers the
    // ledger exactly (a commit whose response was never written cannot
    // exist, by the drain guarantee).
    assert_eq!(broker.sales_count() as u64, report.ok);
    assert!(
        (broker.collected_revenue() - report.revenue).abs() < 1e-6,
        "ledger {} vs client-observed {}",
        broker.collected_revenue(),
        report.revenue
    );

    // The port is closed: fresh connections are refused or reset, never hung.
    assert!(NimbusClient::connect(addr, &fast_client()).is_err());
}

/// Satellite: shed requests that honor the server's `retry_after_ms` hint
/// eventually get through, and the accounting still reconciles — the
/// server's shed counter equals final sheds plus absorbed (retried) ones.
#[test]
fn busy_retries_honor_the_hint_and_reconcile() {
    let broker = build_broker(17);
    let server = start_server(
        broker.clone(),
        ServerConfig {
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: 1,
            handle_delay: Some(Duration::from_millis(10)),
            retry_after_hint: Duration::from_millis(15),
            ..ServerConfig::default()
        },
    );

    let report = run_load(
        server.local_addr(),
        &LoadConfig {
            threads: 12,
            requests_per_thread: 4,
            mode: LoadMode::Quote,
            client: fast_client(),
            busy_retries: 32,
        },
    );

    assert_eq!(report.attempted, 48);
    assert_eq!(report.ok + report.busy + report.errors, report.attempted);
    assert!(
        report.busy_retried > 0,
        "a 1-worker queue of 1 against 12 threads must shed at least once"
    );
    assert!(
        report.ok > report.attempted / 2,
        "retries should recover most sheds: ok={} busy={} retried={}",
        report.ok,
        report.busy,
        report.busy_retried
    );
    // Every BUSY the server sent is accounted for exactly once, as either
    // a final shed or an absorbed retry.
    assert_eq!(
        server.stats().busy_rejections(),
        report.busy + report.busy_retried
    );
    server.shutdown();
}

/// Satellite: the `STATS` reply carries the live queue-depth gauge and
/// renders to Prometheus text with the expected series.
#[test]
fn stats_text_export_has_gauges() {
    let broker = build_broker(23);
    let server = start_server(broker.clone(), ServerConfig::default());
    let mut client = NimbusClient::connect(server.local_addr(), &fast_client()).unwrap();
    client.buy(PurchaseRequest::AtInverseNcp(5.0)).unwrap();

    let stats = client.stats().unwrap();
    // Idle server: nothing should be waiting in the admission queues.
    assert_eq!(stats.queue_depth, 0);

    let text = nimbus_server::render_prometheus(&stats);
    for series in [
        "# TYPE nimbus_connections_total counter",
        "# TYPE nimbus_queue_depth gauge",
        "# TYPE nimbus_shed_rate gauge",
        "nimbus_connections_total 1",
        "nimbus_queue_depth 0",
        "nimbus_shed_rate 0",
        "nimbus_requests_total{op=\"quote\"} 1",
        "nimbus_requests_total{op=\"commit\"} 1",
        "nimbus_request_latency_upper_micros{op=\"commit\",quantile=\"0.99\"}",
    ] {
        assert!(text.contains(series), "missing `{series}` in:\n{text}");
    }
    server.shutdown();
}
