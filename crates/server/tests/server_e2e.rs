// Test code: `unwrap`/`panic!` are assertions here, not serving-path
// hazards — opt out of the workspace panic-hygiene lints.
#![allow(clippy::unwrap_used, clippy::panic)]

//! End-to-end serving tests: a real `NimbusServer` on an ephemeral
//! loopback port, driven by real TCP clients.
//!
//! The core reconciliation: revenue in each listing's striped ledger must
//! equal the sum of prices the *clients* observed over the wire — the
//! serving layer adds no money and loses none. On top of that: admission
//! floods resolve as typed `BUSY` frames (never hangs), stale quotes fail
//! with the epoch error, listing routing fails typed (unknown, retired),
//! malformed frames get typed protocol errors, v2 peers interoperate on
//! the default listing, and graceful shutdown never truncates an
//! in-flight response.

use nimbus_core::GaussianMechanism;
use nimbus_data::catalog::{DatasetSpec, PaperDataset};
use nimbus_market::curves::{DemandCurve, MarketCurves, ValueCurve};
use nimbus_market::{Broker, ListingBuilder, Marketplace, PurchaseRequest, Seller};
use nimbus_ml::LinearRegressionTrainer;
use nimbus_server::loadgen::{run_load, LoadConfig, LoadMode};
use nimbus_server::wire::{self, ErrorCode, Response};
use nimbus_server::{
    ClientConfig, NimbusClient, NimbusServer, RetryPolicy, ServerConfig, ServerError,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn listing(name: &str, seed: u64) -> ListingBuilder {
    let (dataset, _) = DatasetSpec::scaled(PaperDataset::Simulated1, 600)
        .materialize(seed)
        .unwrap();
    let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
    ListingBuilder::new(name, Seller::new(name, dataset, curves))
        .trainer(LinearRegressionTrainer::ridge(1e-6))
        .mechanism(GaussianMechanism)
        .n_price_points(24)
        .error_curve_samples(12)
        .seed(seed)
}

/// A marketplace hosting the single published listing `e2e-listing`.
fn build_marketplace(seed: u64) -> (Arc<Marketplace>, Arc<Broker>) {
    let marketplace = Marketplace::new();
    marketplace.list(listing("e2e-listing", seed)).unwrap();
    let broker = marketplace.route("e2e-listing").unwrap();
    (Arc::new(marketplace), broker)
}

fn start_server(marketplace: Arc<Marketplace>, config: ServerConfig) -> NimbusServer {
    NimbusServer::start(marketplace, "e2e-listing", "127.0.0.1:0", config).unwrap()
}

fn fast_client() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Duration::from_secs(10),
        write_timeout: Duration::from_secs(5),
        // These tests account for every BUSY themselves.
        retry: RetryPolicy::none(),
    }
}

/// The acceptance gate: concurrent buyers over loopback TCP, then the
/// broker-side ledger must equal the client-observed books exactly.
#[test]
fn concurrent_buyers_reconcile_with_ledger() {
    let (marketplace, broker) = build_marketplace(41);
    let server = start_server(
        marketplace,
        ServerConfig {
            shards: 2,
            workers_per_shard: 4,
            queue_capacity: 64,
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();

    let report = run_load(
        addr,
        &LoadConfig {
            threads: 8,
            requests_per_thread: 25,
            mode: LoadMode::Buy,
            client: fast_client(),
            busy_retries: 0,
            mix: Vec::new(),
            ..LoadConfig::default()
        },
    );

    // Capacity (2 shards × 64) dwarfs 8 connections: nothing is shed and
    // nothing fails.
    assert_eq!(report.attempted, 200);
    assert_eq!(
        report.ok, 200,
        "busy={} errors={}",
        report.busy, report.errors
    );
    assert_eq!(report.busy, 0);
    assert_eq!(report.errors, 0);
    assert!(report.throughput() > 0.0);

    // Ledger revenue == sum of prices the clients saw over the wire
    // (shard totals accumulate in arrival order → f64 reassociation only).
    assert_eq!(broker.sales_count(), 200);
    assert!(
        (broker.collected_revenue() - report.revenue).abs() < 1e-6,
        "ledger {} vs client-observed {}",
        broker.collected_revenue(),
        report.revenue
    );

    // The server's own stats agree: one commit per buy, zero shed.
    let stats = server.stats().snapshot();
    let commit = stats.ops.iter().find(|o| o.op == "commit").unwrap();
    assert_eq!(commit.requests, 200);
    assert_eq!(commit.errors, 0);
    assert_eq!(stats.busy_rejections, 0);
    server.shutdown();
}

/// One scripted session covering every opcode, checked against the
/// broker's in-process state.
#[test]
fn full_session_menu_quote_commit_info_stats() {
    let (marketplace, broker) = build_marketplace(7);
    let server = start_server(marketplace, ServerConfig::default());
    let mut client = NimbusClient::connect(server.local_addr(), &fast_client()).unwrap();

    let snapshot = broker.snapshot().unwrap();
    let menu = client.menu().unwrap();
    assert_eq!(menu.epoch, snapshot.epoch());
    assert_eq!(menu.metric, snapshot.metric_name());
    assert_eq!(menu.points, snapshot.menu());

    // Wire quote matches the in-process quote bit for bit.
    let wire_quote = client.quote(PurchaseRequest::AtInverseNcp(10.0)).unwrap();
    let local_quote = broker
        .quote_request(PurchaseRequest::AtInverseNcp(10.0))
        .unwrap();
    assert_eq!(wire_quote.x, local_quote.x);
    assert_eq!(wire_quote.price, local_quote.price);
    assert_eq!(wire_quote.expected_error, local_quote.expected_error);
    assert_eq!(wire_quote.snapshot_epoch, local_quote.snapshot_epoch);

    // Commit delivers the noisy weights over the wire.
    let sale = client.commit(&wire_quote, wire_quote.price).unwrap();
    assert_eq!(sale.price, wire_quote.price);
    assert!(!sale.weights.is_empty());
    assert!(sale.weights.iter().all(|w| w.is_finite()));
    let ledger = broker.ledger();
    assert_eq!(ledger.count(), 1);
    assert_eq!(sale.transaction, ledger.transactions()[0].sequence);

    // The error-budget and price-budget purchase options also cross the wire.
    let budgeted = client.buy(PurchaseRequest::PriceBudget(1e9)).unwrap();
    assert!(budgeted.price <= 1e9);

    let info = client.info().unwrap();
    assert_eq!(info.listing, "e2e-listing");
    assert_eq!(info.epoch, snapshot.epoch());
    assert_eq!(info.menu_len, snapshot.menu().len() as u64);
    assert_eq!(info.sales, 2);
    assert!((info.revenue - broker.collected_revenue()).abs() < 1e-9);

    let stats = client.stats().unwrap();
    assert_eq!(stats.connections, 1);
    let commits = stats.ops.iter().find(|o| o.op == "commit").unwrap();
    assert_eq!(commits.requests, 2);
    assert!(commits.p99_micros >= commits.p50_micros);
    server.shutdown();
}

/// Flooding past `shards × queue_capacity` must shed with typed `BUSY`
/// frames — no hangs, no resets, and the non-shed traffic still completes.
#[test]
fn flood_beyond_admission_bound_sheds_busy() {
    let (marketplace, _broker) = build_marketplace(13);
    let server = start_server(
        marketplace,
        ServerConfig {
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: 1,
            handle_delay: Some(Duration::from_millis(25)),
            ..ServerConfig::default()
        },
    );

    let report = run_load(
        server.local_addr(),
        &LoadConfig {
            threads: 16,
            requests_per_thread: 4,
            mode: LoadMode::Quote,
            client: fast_client(),
            busy_retries: 0,
            mix: Vec::new(),
            ..LoadConfig::default()
        },
    );

    assert_eq!(report.attempted, 64);
    assert_eq!(report.ok + report.busy + report.errors, report.attempted);
    assert!(
        report.ok > 0,
        "the admitted connections must still be served"
    );
    assert!(
        report.busy > 0,
        "1 worker × queue of 1 against 16 threads must shed"
    );
    assert_eq!(
        report.errors, 0,
        "shedding must be the typed BUSY frame, never a reset or timeout"
    );
    assert!(report.shed_rate() > 0.0);
    assert_eq!(server.stats().busy_rejections(), report.busy);
    server.shutdown();
}

/// The quote→commit epoch protocol over the wire: a quote priced before
/// `open_market()` re-runs must fail with the typed epoch error, and
/// payment validation errors arrive typed too.
#[test]
fn stale_quotes_and_bad_payments_fail_typed() {
    let (marketplace, broker) = build_marketplace(29);
    let server = start_server(marketplace.clone(), ServerConfig::default());
    let mut client = NimbusClient::connect(server.local_addr(), &fast_client()).unwrap();

    let quote = client.quote(PurchaseRequest::AtInverseNcp(5.0)).unwrap();

    // Underpay: typed InsufficientPayment, no sale recorded.
    match client.commit(&quote, quote.price / 2.0) {
        Err(ServerError::Remote { code, .. }) => assert_eq!(code, ErrorCode::InsufficientPayment),
        other => panic!("expected InsufficientPayment, got {other:?}"),
    }
    // Nonsense payment: typed InvalidPayment.
    match client.commit(&quote, f64::NAN) {
        Err(ServerError::Remote { code, .. }) => assert_eq!(code, ErrorCode::InvalidPayment),
        other => panic!("expected InvalidPayment, got {other:?}"),
    }

    // Live re-publish over the admin path: the published epoch moves on…
    marketplace.publish("e2e-listing").unwrap();
    // …and the old quote is dead, even at full payment.
    match client.commit(&quote, quote.price) {
        Err(ServerError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::QuoteExpired);
            assert!(message.contains("epoch"), "{message}");
        }
        other => panic!("expected QuoteExpired, got {other:?}"),
    }
    assert_eq!(broker.sales_count(), 0);

    // A fresh quote against the new epoch works.
    let sale = client.buy(PurchaseRequest::AtInverseNcp(5.0)).unwrap();
    assert!(sale.price > 0.0);
    server.shutdown();
}

/// Protocol violations get typed error frames, bounded by the framing
/// limits — a garbage payload and an oversized length prefix both answer
/// with `BadFrame` and then the server hangs up, without harming other
/// connections.
#[test]
fn malformed_frames_get_typed_errors() {
    let (marketplace, _broker) = build_marketplace(3);
    let server = start_server(marketplace, ServerConfig::default());
    let addr = server.local_addr();

    // Garbage payload inside a well-formed frame.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        wire::write_frame(&mut stream, b"this is not a nimbus payload").unwrap();
        let payload = wire::read_frame(&mut stream).unwrap();
        match Response::decode(&payload).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame),
            other => panic!("expected BadFrame error frame, got {other:?}"),
        }
        // Framing is poisoned: the server closes after answering.
        let mut rest = Vec::new();
        assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
    }

    // Wrong version byte: typed UnsupportedVersion.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut payload = Vec::from(wire::MAGIC);
        payload.extend_from_slice(&[wire::VERSION + 1, 0x01]);
        wire::write_frame(&mut stream, &payload).unwrap();
        let reply = wire::read_frame(&mut stream).unwrap();
        match Response::decode(&reply).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnsupportedVersion),
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    // Oversized length prefix: answered with BadFrame before any
    // allocation, then the connection is closed.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let huge = (wire::MAX_FRAME_LEN as u32 + 1).to_be_bytes();
        stream.write_all(&huge).unwrap();
        let payload = wire::read_frame(&mut stream).unwrap();
        match Response::decode(&payload).unwrap() {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::BadFrame);
                assert!(message.contains("exceeds"), "{message}");
            }
            other => panic!("expected BadFrame error frame, got {other:?}"),
        }
        let mut rest = Vec::new();
        assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
    }

    // A well-behaved client on the same server is unaffected.
    let mut client = NimbusClient::connect(addr, &fast_client()).unwrap();
    assert!(client.menu().is_ok());
    let stats = server.stats().snapshot();
    assert!(stats.protocol_errors >= 3);
    server.shutdown();
}

/// Graceful shutdown under live purchase traffic: in-flight responses are
/// never truncated, so every sale the ledger recorded was delivered to a
/// client — the books still reconcile after the plug is pulled.
#[test]
fn graceful_shutdown_drains_in_flight_buyers() {
    let (marketplace, broker) = build_marketplace(59);
    let server = start_server(
        marketplace,
        ServerConfig {
            shards: 2,
            workers_per_shard: 2,
            queue_capacity: 32,
            handle_delay: Some(Duration::from_millis(2)),
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();

    let (report, ()) = std::thread::scope(|scope| {
        let load = scope.spawn(move || {
            run_load(
                addr,
                &LoadConfig {
                    threads: 4,
                    requests_per_thread: 200,
                    mode: LoadMode::Buy,
                    client: fast_client(),
                    busy_retries: 0,
                    mix: Vec::new(),
                    ..LoadConfig::default()
                },
            )
        });
        // Let some purchases land, then pull the plug mid-run.
        std::thread::sleep(Duration::from_millis(150));
        server.shutdown();
        (load.join().unwrap(), ())
    });

    assert_eq!(report.attempted, 800);
    assert!(report.ok > 0, "some purchases must have completed");
    assert!(
        report.ok < 800,
        "shutdown raced the run and should have cut it short"
    );
    // Every ledger entry was delivered: client-observed revenue covers the
    // ledger exactly (a commit whose response was never written cannot
    // exist, by the drain guarantee).
    assert_eq!(broker.sales_count() as u64, report.ok);
    assert!(
        (broker.collected_revenue() - report.revenue).abs() < 1e-6,
        "ledger {} vs client-observed {}",
        broker.collected_revenue(),
        report.revenue
    );

    // The port is closed: fresh connections are refused or reset, never hung.
    assert!(NimbusClient::connect(addr, &fast_client()).is_err());
}

/// Satellite: shed requests that honor the server's `retry_after_ms` hint
/// eventually get through, and the accounting still reconciles — the
/// server's shed counter equals final sheds plus absorbed (retried) ones.
#[test]
fn busy_retries_honor_the_hint_and_reconcile() {
    let (marketplace, _broker) = build_marketplace(17);
    let server = start_server(
        marketplace,
        ServerConfig {
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: 1,
            handle_delay: Some(Duration::from_millis(10)),
            retry_after_hint: Duration::from_millis(15),
            ..ServerConfig::default()
        },
    );

    let report = run_load(
        server.local_addr(),
        &LoadConfig {
            threads: 12,
            requests_per_thread: 4,
            mode: LoadMode::Quote,
            client: fast_client(),
            busy_retries: 32,
            mix: Vec::new(),
            ..LoadConfig::default()
        },
    );

    assert_eq!(report.attempted, 48);
    assert_eq!(report.ok + report.busy + report.errors, report.attempted);
    assert!(
        report.busy_retried > 0,
        "a 1-worker queue of 1 against 12 threads must shed at least once"
    );
    assert!(
        report.ok > report.attempted / 2,
        "retries should recover most sheds: ok={} busy={} retried={}",
        report.ok,
        report.busy,
        report.busy_retried
    );
    // Every BUSY the server sent is accounted for exactly once, as either
    // a final shed or an absorbed retry.
    assert_eq!(
        server.stats().busy_rejections(),
        report.busy + report.busy_retried
    );
    server.shutdown();
}

/// Satellite: the `STATS` reply carries the live queue-depth gauge and
/// renders to Prometheus text with the expected series.
#[test]
fn stats_text_export_has_gauges() {
    let (marketplace, _broker) = build_marketplace(23);
    let server = start_server(marketplace, ServerConfig::default());
    let mut client = NimbusClient::connect(server.local_addr(), &fast_client()).unwrap();
    client.buy(PurchaseRequest::AtInverseNcp(5.0)).unwrap();

    let stats = client.stats().unwrap();
    // Idle server: nothing should be waiting in the admission queues.
    assert_eq!(stats.queue_depth, 0);

    let text = nimbus_server::render_prometheus(&stats);
    for series in [
        "# TYPE nimbus_connections_total counter",
        "# TYPE nimbus_queue_depth gauge",
        "# TYPE nimbus_shed_rate gauge",
        "nimbus_connections_total 1",
        "nimbus_queue_depth 0",
        "nimbus_shed_rate 0",
        "nimbus_requests_total{op=\"quote\"} 1",
        "nimbus_requests_total{op=\"commit\"} 1",
        "nimbus_request_latency_upper_micros{op=\"commit\",quantile=\"0.99\"}",
    ] {
        assert!(text.contains(series), "missing `{series}` in:\n{text}");
    }
    server.shutdown();
}

/// Tentpole: listing routing fails typed at every step of the lifecycle.
/// Unknown listings answer `InvalidRequest`, a second `list` under a taken
/// name is rejected without disturbing the live listing, a hot re-publish
/// voids outstanding quotes via the epoch protocol, retirement sheds with
/// the dedicated `Retired` code and is terminal, and the server refuses to
/// retire its own default listing out from under v1/v2 peers.
#[test]
fn listing_routing_and_lifecycle_error_paths() {
    let (marketplace, _broker) = build_marketplace(67);
    marketplace.list(listing("second", 68)).unwrap();
    let server = start_server(marketplace.clone(), ServerConfig::default());
    let mut client = NimbusClient::connect(server.local_addr(), &fast_client()).unwrap();

    // Unknown listing: typed InvalidRequest naming the listing.
    match client.quote_on("nope", PurchaseRequest::AtInverseNcp(5.0)) {
        Err(ServerError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::InvalidRequest);
            assert!(message.contains("nope"), "{message}");
        }
        other => panic!("expected InvalidRequest, got {other:?}"),
    }

    // Duplicate publish: rejected, the existing listing keeps serving.
    let err = marketplace.list(listing("second", 69)).unwrap_err();
    assert!(err.to_string().contains("second"), "{err}");
    assert!(client.menu_on("second").is_ok());

    // Hot re-publish over the wire bumps the epoch; the quote taken
    // before it dies with the epoch error, a fresh quote commits fine.
    let stale = client
        .quote_on("second", PurchaseRequest::AtInverseNcp(5.0))
        .unwrap();
    assert_eq!(stale.listing, "second");
    let (epoch, expected_revenue) = client.publish("second").unwrap();
    assert!(epoch > stale.snapshot_epoch);
    assert!(expected_revenue.is_finite());
    match client.commit(&stale, stale.price) {
        Err(ServerError::Remote { code, .. }) => assert_eq!(code, ErrorCode::QuoteExpired),
        other => panic!("expected QuoteExpired, got {other:?}"),
    }
    let fresh = client
        .quote_on("second", PurchaseRequest::AtInverseNcp(5.0))
        .unwrap();
    assert_eq!(fresh.snapshot_epoch, epoch);
    client.commit(&fresh, fresh.price).unwrap();

    // Retirement: quotes issued before it die with the typed code, and
    // every subsequent touch of the listing answers `Retired`.
    let doomed = client
        .quote_on("second", PurchaseRequest::AtInverseNcp(5.0))
        .unwrap();
    client.retire("second").unwrap();
    match client.commit(&doomed, doomed.price) {
        Err(ServerError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::Retired);
            assert!(message.contains("second"), "{message}");
        }
        other => panic!("expected Retired, got {other:?}"),
    }
    match client.menu_on("second") {
        Err(ServerError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Retired),
        other => panic!("expected Retired, got {other:?}"),
    }
    // Terminal: a retired listing cannot be re-published.
    match client.publish("second") {
        Err(ServerError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Retired),
        other => panic!("expected Retired, got {other:?}"),
    }

    // The default listing is load-bearing for unscoped peers: refuse.
    match client.retire("e2e-listing") {
        Err(ServerError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::InvalidRequest);
            assert!(message.contains("default"), "{message}");
        }
        other => panic!("expected InvalidRequest, got {other:?}"),
    }
    assert!(client.menu().is_ok());
    server.shutdown();
}

/// Tentpole: three listings served concurrently from one socket, routed
/// by name under a weighted mix. Each listing's striped ledger reconciles
/// exactly against the load generator's per-listing slice, and the
/// marketplace-wide stats snapshot sums them consistently.
#[test]
fn multi_listing_buyers_route_and_reconcile_independently() {
    let marketplace = Marketplace::new();
    for (i, name) in ["alpha", "beta", "gamma"].iter().enumerate() {
        marketplace.list(listing(name, 71 + i as u64)).unwrap();
    }
    let marketplace = Arc::new(marketplace);
    let server = NimbusServer::start(
        marketplace.clone(),
        "alpha",
        "127.0.0.1:0",
        ServerConfig {
            shards: 2,
            workers_per_shard: 4,
            queue_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // The directory enumerates over the wire, default flagged.
    let mut client = NimbusClient::connect(addr, &fast_client()).unwrap();
    let listings = client.listings().unwrap();
    assert_eq!(listings.default_listing, "alpha");
    let names: Vec<&str> = listings.listings.iter().map(|l| l.name.as_str()).collect();
    assert_eq!(names, ["alpha", "beta", "gamma"]);
    assert!(listings
        .listings
        .iter()
        .all(|l| l.state == "published" && l.open));

    // 6 threads x 30 buys over a 3:2:1 mix (ring of 6 divides 30 evenly):
    // alpha gets 90, beta 60, gamma 30.
    let report = run_load(
        addr,
        &LoadConfig {
            threads: 6,
            requests_per_thread: 30,
            mode: LoadMode::Buy,
            client: fast_client(),
            busy_retries: 0,
            mix: vec![
                ("alpha".to_string(), 3),
                ("beta".to_string(), 2),
                ("gamma".to_string(), 1),
            ],
            ..LoadConfig::default()
        },
    );
    assert_eq!(report.ok, 180, "{report:?}");
    assert_eq!(report.per_listing.len(), 3);
    let expected = [("alpha", 90u64), ("beta", 60), ("gamma", 30)];
    for ((name, want_ok), slice) in expected.iter().zip(&report.per_listing) {
        assert_eq!(slice.listing, *name);
        assert_eq!(slice.ok, *want_ok, "{name}");
        // Each listing's own ledger holds exactly the money its buyers
        // paid — routing never crosses revenue between listings.
        let broker = marketplace.route(name).unwrap();
        assert_eq!(broker.sales_count() as u64, slice.ok);
        assert!(
            (broker.collected_revenue() - slice.revenue).abs() < 1e-6,
            "{name}: ledger {} vs clients {}",
            broker.collected_revenue(),
            slice.revenue,
        );
    }

    // The marketplace snapshot sums the same rows it reports.
    let stats = marketplace.stats();
    assert_eq!(stats.total_sales, 180);
    assert!((stats.total_revenue - report.revenue).abs() < 1e-6);

    // Wire STATS carries the per-listing rows; Prometheus text labels them.
    let wire_stats = client.stats().unwrap();
    assert_eq!(wire_stats.listings.len(), 3);
    let text = nimbus_server::render_prometheus(&wire_stats);
    for name in ["alpha", "beta", "gamma"] {
        assert!(
            text.contains(&format!("nimbus_listing_sales_total{{listing=\"{name}\"}}")),
            "missing listing series for {name} in:\n{text}"
        );
    }
    server.shutdown();
}

/// Tentpole: a version-2 peer (no listing fields anywhere) still completes
/// a full menu -> quote -> commit session; the server resolves every
/// unscoped request to its default listing.
#[test]
fn v2_peers_interoperate_on_the_default_listing() {
    let (marketplace, broker) = build_marketplace(83);
    let server = start_server(marketplace, ServerConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut rpc = |payload: &[u8]| -> Response {
        wire::write_frame(&mut stream, payload).unwrap();
        Response::decode(&wire::read_frame(&mut stream).unwrap()).unwrap()
    };

    // v2 MENU is a bare header; it reads the default listing's menu.
    let menu = match rpc(&[b'N', b'B', 2, 0x01]) {
        Response::Menu(m) => m,
        other => panic!("expected menu, got {other:?}"),
    };
    assert!(!menu.points.is_empty());

    // v2 QUOTE: request kind + value, no listing field.
    let mut payload = vec![b'N', b'B', 2, 0x02, 1];
    payload.extend_from_slice(&10.0f64.to_bits().to_be_bytes());
    let quote = match rpc(&payload) {
        Response::Quote(q) => q,
        other => panic!("expected quote, got {other:?}"),
    };
    assert_eq!(quote.snapshot_epoch, menu.epoch);
    // The v3 response names the listing the unscoped quote landed on.
    assert_eq!(quote.listing, "e2e-listing");

    // v2 COMMIT: x, epoch, payment, nonce flag — still no listing.
    let mut payload = vec![b'N', b'B', 2, 0x03];
    payload.extend_from_slice(&quote.x.to_bits().to_be_bytes());
    payload.extend_from_slice(&quote.snapshot_epoch.to_be_bytes());
    payload.extend_from_slice(&quote.price.to_bits().to_be_bytes());
    payload.push(0);
    let sale = match rpc(&payload) {
        Response::Commit(s) => s,
        other => panic!("expected sale, got {other:?}"),
    };
    assert!((sale.price - quote.price).abs() < 1e-9);

    // The money landed in the default listing's ledger.
    assert_eq!(broker.sales_count(), 1);
    assert!((broker.collected_revenue() - quote.price).abs() < 1e-9);
    server.shutdown();
}

/// Satellite: slow-loris defense. Half-open connections — some trickling
/// a partial frame header, some fully silent — are shed by the event
/// loop's header-read and idle deadlines with a typed `BUSY`, while quote
/// throughput on well-behaved connections stays flat (every request
/// served, nothing shed).
#[test]
fn slow_loris_half_open_connections_are_shed_while_service_continues() {
    let (marketplace, _broker) = build_marketplace(91);
    let server = start_server(
        marketplace,
        ServerConfig {
            header_read_timeout: Duration::from_millis(300),
            idle_timeout: Duration::from_millis(450),
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();

    // Three connections trickle 2 bytes of a length prefix and stall;
    // three more connect and never send a byte.
    let mut loris: Vec<TcpStream> = Vec::new();
    for i in 0..6 {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        if i < 3 {
            stream.write_all(&[0u8, 0u8]).unwrap();
        }
        loris.push(stream);
    }

    // Real traffic is served at full rate while the half-open sockets sit
    // on the server: nothing is shed, nothing errors.
    let report = run_load(
        addr,
        &LoadConfig {
            threads: 4,
            requests_per_thread: 25,
            mode: LoadMode::Quote,
            client: fast_client(),
            ..LoadConfig::default()
        },
    );
    assert_eq!(report.ok, 100, "{report:?}");
    assert_eq!(report.busy, 0);
    assert_eq!(report.errors, 0);

    // Each half-open connection is shed: one typed BUSY frame, then the
    // server hangs up. (The deadline fires while or shortly after the
    // load runs; the blocking reads below absorb the wait.)
    for mut stream in loris {
        let payload = wire::read_frame(&mut stream).unwrap();
        match Response::decode(&payload).unwrap() {
            Response::Busy { .. } => {}
            other => panic!("expected BUSY shed, got {other:?}"),
        }
        let mut rest = Vec::new();
        assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
    }

    // Deadline sheds are accounted separately from admission sheds: the
    // queue never saw these connections.
    assert_eq!(server.stats().timeout_sheds(), 6);
    assert_eq!(server.stats().busy_rejections(), 0);
    server.shutdown();
}

/// Tentpole: wire v4 pipelining. Many correlated quotes in flight on one
/// connection; responses are matched by correlation id, not arrival
/// order, and each answer is exactly the quote its request asked for.
/// A `MENU` interleaved mid-stream answers under its own id.
#[test]
fn pipelined_corr_ids_route_out_of_order_responses() {
    let (marketplace, broker) = build_marketplace(97);
    let server = start_server(
        marketplace,
        ServerConfig {
            shards: 2,
            workers_per_shard: 4,
            queue_capacity: 64,
            ..ServerConfig::default()
        },
    );
    let mut conn =
        nimbus_server::PipelinedClient::connect(server.local_addr(), &fast_client()).unwrap();

    // 12 quotes at distinct support points, all in flight at once, plus
    // one MENU interleaved in the middle.
    let mut expected_x: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    let mut menu_corr = 0u64;
    for i in 0..12u32 {
        let x = 1.0 + 8.0 * f64::from(i);
        let corr = conn
            .send(&wire::Request::Quote {
                listing: None,
                request: PurchaseRequest::AtInverseNcp(x),
            })
            .unwrap();
        expected_x.insert(corr, x);
        if i == 6 {
            menu_corr = conn.send(&wire::Request::Menu { listing: None }).unwrap();
        }
    }
    assert_eq!(conn.in_flight(), 13);

    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..13 {
        let (corr, response) = conn.recv().unwrap();
        assert!(seen.insert(corr), "corr {corr} answered twice");
        if corr == menu_corr {
            match response {
                Response::Menu(menu) => assert!(!menu.points.is_empty()),
                other => panic!("expected menu on corr {corr}, got {other:?}"),
            }
            continue;
        }
        let x = expected_x.remove(&corr).expect("unknown corr id");
        let local = broker
            .quote_request(PurchaseRequest::AtInverseNcp(x))
            .unwrap();
        match response {
            Response::Quote(quote) => {
                // The answer under this id is bit-for-bit the quote the
                // request with this id asked for.
                assert_eq!(quote.x, local.x, "corr {corr} answered the wrong request");
                assert_eq!(quote.price, local.price);
            }
            other => panic!("expected quote on corr {corr}, got {other:?}"),
        }
    }
    assert_eq!(conn.in_flight(), 0);
    assert!(expected_x.is_empty());
    server.shutdown();
}

/// Tentpole: `BATCH_COMMIT` resolves per item. One frame carrying a good
/// item, a stale-epoch item and a NaN payment answers Sale / QuoteExpired
/// / InvalidPayment in request order; only the good item lands in the
/// ledger. A batch against a retired listing fails whole with the typed
/// `Retired` code, and `MENU_STREAM` reassembles to exactly the classic
/// `MENU`.
#[test]
fn batch_commit_mixed_outcomes_and_menu_stream() {
    use nimbus_server::{BatchItemMsg, BatchOutcomeMsg};
    let (marketplace, broker) = build_marketplace(101);
    marketplace.list(listing("doomed", 102)).unwrap();
    let server = start_server(marketplace.clone(), ServerConfig::default());
    let mut client = NimbusClient::connect(server.local_addr(), &fast_client()).unwrap();

    // A quote from the first epoch goes stale on re-publish.
    let stale = client.quote(PurchaseRequest::AtInverseNcp(5.0)).unwrap();
    marketplace.publish("e2e-listing").unwrap();
    let good = client.quote(PurchaseRequest::AtInverseNcp(9.0)).unwrap();

    let outcomes = client
        .commit_batch(
            None,
            vec![
                BatchItemMsg {
                    x: good.x,
                    snapshot_epoch: good.snapshot_epoch,
                    payment: good.price,
                    nonce: Some(1),
                    buyer: None,
                },
                BatchItemMsg {
                    x: stale.x,
                    snapshot_epoch: stale.snapshot_epoch,
                    payment: stale.price,
                    nonce: Some(2),
                    buyer: None,
                },
                BatchItemMsg {
                    x: good.x,
                    snapshot_epoch: good.snapshot_epoch,
                    payment: f64::NAN,
                    nonce: Some(3),
                    buyer: None,
                },
            ],
        )
        .unwrap();
    assert_eq!(outcomes.len(), 3);
    match &outcomes[0] {
        BatchOutcomeMsg::Sale(sale) => assert_eq!(sale.price, good.price),
        other => panic!("item 0 should sell, got {other:?}"),
    }
    match &outcomes[1] {
        BatchOutcomeMsg::Error { code, message } => {
            assert_eq!(*code, ErrorCode::QuoteExpired);
            assert!(message.contains("epoch"), "{message}");
        }
        other => panic!("item 1 should be stale, got {other:?}"),
    }
    match &outcomes[2] {
        BatchOutcomeMsg::Error { code, .. } => assert_eq!(*code, ErrorCode::InvalidPayment),
        other => panic!("item 2 should be rejected, got {other:?}"),
    }
    // Exactly the good item landed.
    assert_eq!(broker.sales_count(), 1);
    assert!((broker.collected_revenue() - good.price).abs() < 1e-9);

    // buy_batch sugar: quotes then one idempotent batch; all items sell.
    let sales = client
        .buy_batch(&[
            PurchaseRequest::AtInverseNcp(3.0),
            PurchaseRequest::AtInverseNcp(7.0),
        ])
        .unwrap();
    assert!(sales.iter().all(|o| matches!(o, BatchOutcomeMsg::Sale(_))));
    assert_eq!(broker.sales_count(), 3);

    // Listing-level failures fail the whole frame, typed.
    client.retire("doomed").unwrap();
    match client.commit_batch(
        Some("doomed"),
        vec![BatchItemMsg {
            x: good.x,
            snapshot_epoch: good.snapshot_epoch,
            payment: good.price,
            nonce: None,
            buyer: None,
        }],
    ) {
        Err(ServerError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Retired),
        other => panic!("expected Retired, got {other:?}"),
    }

    // The chunked menu reassembles to exactly the classic MENU reply.
    let whole = client.menu().unwrap();
    let streamed = client.menu_stream(10).unwrap();
    assert_eq!(streamed.epoch, whole.epoch);
    assert_eq!(streamed.metric, whole.metric);
    assert_eq!(streamed.points, whole.points);
    server.shutdown();
}

/// Tentpole: frames split across arbitrary TCP segment boundaries. Three
/// pipelined v4 quotes arrive interleaved — a complete frame plus half of
/// the next per write, with pauses so each lands in a separate readiness
/// event — and every request is still answered under its own id.
#[test]
fn interleaved_partial_frames_parse_across_readiness_events() {
    let (marketplace, broker) = build_marketplace(103);
    let server = start_server(marketplace, ServerConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.set_nodelay(true).unwrap();

    let frames: Vec<(u64, f64, Vec<u8>)> = [(11u64, 5.0f64), (22, 20.0), (33, 60.0)]
        .iter()
        .map(|&(corr, x)| {
            let payload = wire::Request::Quote {
                listing: None,
                request: PurchaseRequest::AtInverseNcp(x),
            }
            .encode_with_corr(corr);
            let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
            frame.extend_from_slice(&payload);
            (corr, x, frame)
        })
        .collect();

    // Write boundaries deliberately misaligned with frame boundaries:
    // [frame1 + half of frame2] … [rest of frame2 + 2 bytes of frame3's
    // length prefix] … [rest of frame3].
    let split2 = frames[1].2.len() / 2;
    let mut chunk = frames[0].2.clone();
    chunk.extend_from_slice(&frames[1].2[..split2]);
    stream.write_all(&chunk).unwrap();
    std::thread::sleep(Duration::from_millis(60));
    let mut chunk = frames[1].2[split2..].to_vec();
    chunk.extend_from_slice(&frames[2].2[..2]);
    stream.write_all(&chunk).unwrap();
    std::thread::sleep(Duration::from_millis(60));
    stream.write_all(&frames[2].2[2..]).unwrap();

    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..3 {
        let payload = wire::read_frame(&mut stream).unwrap();
        let (corr, response) = Response::decode_framed(&payload).unwrap();
        let &(_, x, _) = frames
            .iter()
            .find(|(c, _, _)| *c == corr)
            .expect("unknown corr id");
        let local = broker
            .quote_request(PurchaseRequest::AtInverseNcp(x))
            .unwrap();
        match response {
            Response::Quote(quote) => assert_eq!(quote.x, local.x),
            other => panic!("expected quote on corr {corr}, got {other:?}"),
        }
        assert!(seen.insert(corr));
    }
    assert_eq!(seen.len(), 3);
    server.shutdown();
}

/// Regression: a version-3 peer (listing-routed, no correlation ids)
/// still runs a full menu → quote → commit session byte-for-byte — the
/// reply header stays v3 and carries no id field.
#[test]
fn v3_raw_frames_stay_byte_compatible() {
    let (marketplace, broker) = build_marketplace(107);
    let server = start_server(marketplace, ServerConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut rpc = |payload: &[u8]| -> Vec<u8> {
        wire::write_frame(&mut stream, payload).unwrap();
        wire::read_frame(&mut stream).unwrap()
    };
    let enc_str = |payload: &mut Vec<u8>, s: &str| {
        payload.extend_from_slice(&(s.len() as u16).to_be_bytes());
        payload.extend_from_slice(s.as_bytes());
    };

    // v3 MENU routed by name. The reply is a v3 header: version byte 3,
    // no correlation id (sniff reports id 0).
    let mut payload = vec![b'N', b'B', 3, 0x01];
    enc_str(&mut payload, "e2e-listing");
    let reply = rpc(&payload);
    assert_eq!(reply[2], 3, "reply must keep the peer's version");
    assert_eq!(wire::sniff_header(&reply), (3, 0));
    let menu = match Response::decode(&reply).unwrap() {
        Response::Menu(m) => m,
        other => panic!("expected menu, got {other:?}"),
    };

    // v3 QUOTE: kind + value, then the trailing listing field.
    let mut payload = vec![b'N', b'B', 3, 0x02, 1];
    payload.extend_from_slice(&10.0f64.to_bits().to_be_bytes());
    enc_str(&mut payload, "e2e-listing");
    let reply = rpc(&payload);
    assert_eq!(reply[2], 3);
    let quote = match Response::decode(&reply).unwrap() {
        Response::Quote(q) => q,
        other => panic!("expected quote, got {other:?}"),
    };
    assert_eq!(quote.snapshot_epoch, menu.epoch);

    // v3 COMMIT: x, epoch, payment, nonce flag, listing.
    let mut payload = vec![b'N', b'B', 3, 0x03];
    payload.extend_from_slice(&quote.x.to_bits().to_be_bytes());
    payload.extend_from_slice(&quote.snapshot_epoch.to_be_bytes());
    payload.extend_from_slice(&quote.price.to_bits().to_be_bytes());
    payload.push(0);
    enc_str(&mut payload, "e2e-listing");
    let reply = rpc(&payload);
    assert_eq!(reply[2], 3);
    match Response::decode(&reply).unwrap() {
        Response::Commit(sale) => assert!((sale.price - quote.price).abs() < 1e-9),
        other => panic!("expected sale, got {other:?}"),
    }
    assert_eq!(broker.sales_count(), 1);

    // v4 opcodes are refused for v3 peers with a typed error, not served.
    let mut payload = vec![b'N', b'B', 3, 0x07];
    enc_str(&mut payload, "");
    payload.extend_from_slice(&0u16.to_be_bytes());
    match Response::decode(&rpc(&payload)).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame),
        other => panic!("expected BadFrame for v3 BATCH_COMMIT, got {other:?}"),
    }
    server.shutdown();
}

/// Tentpole: the pipelined + batched load-generator path end to end —
/// depth-8 pipelines, 5-item `BATCH_COMMIT` windows, idle connections
/// held throughout — reconciles exactly against the ledger and reports
/// latency quantiles and the open-socket count.
#[test]
fn pipelined_batched_load_reconciles_with_ledger() {
    let (marketplace, broker) = build_marketplace(109);
    let server = start_server(
        marketplace,
        ServerConfig {
            shards: 2,
            workers_per_shard: 4,
            queue_capacity: 64,
            ..ServerConfig::default()
        },
    );

    let report = run_load(
        server.local_addr(),
        &LoadConfig {
            threads: 4,
            requests_per_thread: 40,
            mode: LoadMode::Buy,
            client: fast_client(),
            busy_retries: 2,
            pipeline_depth: 8,
            batch_size: 5,
            idle_connections: 8,
            ..LoadConfig::default()
        },
    );

    assert_eq!(report.attempted, 160);
    assert_eq!(report.ok, 160, "{report:?}");
    assert_eq!(report.errors, 0);
    assert_eq!(report.busy, 0);
    assert!((report.ok_rate() - 1.0).abs() < 1e-12);
    // 4 worker connections + 8 idle sockets were held open concurrently.
    assert_eq!(report.open_connections, 12);
    assert!(report.p99_micros >= report.p50_micros);
    assert!(report.p50_micros > 0, "latencies must have been recorded");

    // Every batched commit landed exactly once (nonces are distinct), and
    // the money reconciles to the client-observed books.
    assert_eq!(broker.sales_count(), 160);
    assert!(
        (broker.collected_revenue() - report.revenue).abs() < 1e-6,
        "ledger {} vs client-observed {}",
        broker.collected_revenue(),
        report.revenue
    );

    // Server-side: 160 quotes and 32 batch frames of 5.
    let stats = server.stats().snapshot();
    let batch = stats.ops.iter().find(|o| o.op == "batch_commit").unwrap();
    assert_eq!(batch.requests, 32);
    assert_eq!(batch.errors, 0);
    server.shutdown();
}
