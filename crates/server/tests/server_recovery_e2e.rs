// Test code: `unwrap`/`panic!` are assertions here, not serving-path
// hazards — opt out of the workspace panic-hygiene lints.
#![allow(clippy::unwrap_used, clippy::panic)]

//! Crash-safety end to end: a journalled server is cut down mid-load,
//! restarted on the same journal, and the replayed ledger must reconcile
//! *exactly* — same transaction count, same ids, same total revenue —
//! with what clients were acknowledged over the wire. The multi-listing
//! variant journals three listings under one `--journal-dir`-style root
//! and replays each ledger independently. Plus the lost-ACK story: a
//! commit retried with the same idempotency key after a restart replays
//! the journalled sale instead of charging twice.

use nimbus_core::GaussianMechanism;
use nimbus_data::catalog::{DatasetSpec, PaperDataset};
use nimbus_market::curves::{DemandCurve, MarketCurves, ValueCurve};
use nimbus_market::{Broker, ListingBuilder, Marketplace, PurchaseRequest, Seller};
use nimbus_ml::LinearRegressionTrainer;
use nimbus_server::loadgen::{run_load, LoadConfig, LoadMode};
use nimbus_server::{ClientConfig, NimbusClient, NimbusServer, RetryPolicy, ServerConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn temp_journal(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "nimbus-server-recovery-{name}-{}.journal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn journaled_broker(seed: u64, journal: &Path) -> Arc<Broker> {
    let (dataset, _) = DatasetSpec::scaled(PaperDataset::Simulated1, 600)
        .materialize(seed)
        .unwrap();
    let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
    let broker = Broker::builder(Seller::new("recovery-e2e", dataset, curves))
        .trainer(LinearRegressionTrainer::ridge(1e-6))
        .mechanism(GaussianMechanism)
        .n_price_points(24)
        .error_curve_samples(12)
        .seed(seed)
        .journal(journal)
        .build()
        .unwrap();
    broker.open_market().unwrap();
    Arc::new(broker)
}

/// Hosts an already-recovered broker as the sole listing of a fresh
/// marketplace. Adoption neither rebuilds nor re-opens the broker, so the
/// replayed ledger and epoch carry over untouched.
fn host(broker: Arc<Broker>) -> Arc<Marketplace> {
    let marketplace = Marketplace::new();
    marketplace
        .list(ListingBuilder::from_broker("recovery-e2e", broker))
        .unwrap();
    Arc::new(marketplace)
}

fn client_config(seed: u64) -> ClientConfig {
    ClientConfig {
        retry: RetryPolicy {
            seed,
            ..RetryPolicy::default()
        },
        ..ClientConfig::default()
    }
}

/// The acceptance gate: a journalled server cut down under live purchase
/// traffic, restarted on the same log, must replay a ledger whose
/// transaction count, ids and total revenue exactly match the commits
/// clients were ACKed — and keep selling from where it left off.
#[test]
fn killed_server_recovers_every_acked_commit() {
    let journal = temp_journal("kill-restart");

    // Boot 1: serve purchases and pull the plug mid-load.
    let broker = journaled_broker(61, &journal);
    let server = NimbusServer::start(
        host(broker.clone()),
        "recovery-e2e",
        "127.0.0.1:0",
        ServerConfig {
            shards: 2,
            workers_per_shard: 2,
            queue_capacity: 32,
            handle_delay: Some(Duration::from_millis(1)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let report = std::thread::scope(|scope| {
        let load = scope.spawn(move || {
            run_load(
                addr,
                &LoadConfig {
                    threads: 4,
                    requests_per_thread: 100,
                    mode: LoadMode::Buy,
                    client: client_config(0),
                    busy_retries: 0,
                    mix: Vec::new(),
                    ..LoadConfig::default()
                },
            )
        });
        std::thread::sleep(Duration::from_millis(120));
        server.shutdown();
        load.join().unwrap()
    });
    assert!(
        report.ok > 0,
        "some purchases must have landed before the cut"
    );
    let acked: Vec<_> = broker.ledger().transactions().to_vec();
    assert_eq!(acked.len() as u64, report.ok);
    drop(broker);

    // Boot 2: a fresh broker process on the same journal.
    let broker = journaled_broker(61, &journal);
    let recovery = broker
        .recovery()
        .expect("journalled broker reports recovery");
    assert!(
        recovery.truncated.is_none(),
        "clean shutdown leaves no torn tail"
    );

    // Exact reconciliation: count, ids and revenue of the replayed ledger
    // match the client-ACKed books bit for bit.
    let replayed = broker.ledger();
    assert_eq!(replayed.count() as u64, report.ok);
    let replayed_ids: Vec<u64> = replayed.transactions().iter().map(|t| t.sequence).collect();
    let acked_ids: Vec<u64> = acked.iter().map(|t| t.sequence).collect();
    assert_eq!(replayed_ids, acked_ids);
    for (r, a) in replayed.transactions().iter().zip(&acked) {
        assert_eq!(r.price.to_bits(), a.price.to_bits());
    }
    // Summed in the same (id) order, revenue matches bit for bit; the
    // broker's stripe-order total only reassociates f64 addition.
    let acked_revenue: f64 = acked.iter().map(|t| t.price).sum();
    assert_eq!(replayed.total_revenue().to_bits(), acked_revenue.to_bits());
    assert!((replayed.total_revenue() - report.revenue).abs() < 1e-6);
    assert!((broker.collected_revenue() - report.revenue).abs() < 1e-6);

    // The restarted server keeps selling: new epoch, fresh ids continue
    // the recovered sequence.
    let server = NimbusServer::start(
        host(broker.clone()),
        "recovery-e2e",
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = NimbusClient::connect(server.local_addr(), &client_config(0)).unwrap();
    let sale = client.buy(PurchaseRequest::AtInverseNcp(10.0)).unwrap();
    assert_eq!(sale.transaction, report.ok);
    assert_eq!(broker.sales_count() as u64, report.ok + 1);
    server.shutdown();
    let _ = std::fs::remove_file(&journal);
}

/// The lost-ACK scenario: a commit whose response never arrived is
/// retried with the same idempotency key — across a server restart — and
/// yields the same sale exactly once in the journal.
#[test]
fn same_nonce_retry_across_restart_charges_once() {
    let journal = temp_journal("lost-ack");

    // Boot 1: one idempotent purchase lands; pretend its ACK was lost.
    let broker = journaled_broker(67, &journal);
    let server = NimbusServer::start(
        host(broker.clone()),
        "recovery-e2e",
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();
    // A fixed retry seed pins the client's nonce stream, so a second
    // client with the same seed re-sends the *same* idempotency key —
    // exactly what a crashed-and-restarted buyer replaying its intent log
    // would do.
    let mut client = NimbusClient::connect(addr, &client_config(99)).unwrap();
    let quote = client.quote(PurchaseRequest::AtInverseNcp(10.0)).unwrap();
    let first = client.commit_idempotent(&quote, quote.price).unwrap();
    assert_eq!(broker.sales_count(), 1);
    server.shutdown();
    drop(client);
    drop(broker);

    // Boot 2: same journal, later epoch. The retried commit presents the
    // old epoch and the same nonce.
    let broker = journaled_broker(67, &journal);
    assert_eq!(broker.sales_count(), 1);
    let server = NimbusServer::start(
        host(broker.clone()),
        "recovery-e2e",
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let mut retry_client = NimbusClient::connect(server.local_addr(), &client_config(99)).unwrap();
    let replayed = retry_client.commit_idempotent(&quote, quote.price).unwrap();

    // Same sale, not a second one: id, price and weights all match, and
    // the books did not grow.
    assert_eq!(replayed.transaction, first.transaction);
    assert_eq!(replayed.price.to_bits(), first.price.to_bits());
    assert_eq!(replayed.weights.len(), first.weights.len());
    for (r, f) in replayed.weights.iter().zip(&first.weights) {
        assert_eq!(r.to_bits(), f.to_bits());
    }
    assert_eq!(broker.sales_count(), 1);
    assert_eq!(broker.collected_revenue().to_bits(), first.price.to_bits());

    // A *different* nonce at the dead epoch is not deduplicated: it gets
    // the honest epoch rejection.
    let err = retry_client
        .commit_idempotent(&quote, quote.price)
        .unwrap_err();
    match err {
        nimbus_server::ServerError::Remote { code, .. } => {
            assert_eq!(code, nimbus_server::ErrorCode::QuoteExpired);
        }
        other => panic!("expected a remote QuoteExpired, got {other:?}"),
    }
    server.shutdown();
    let _ = std::fs::remove_file(&journal);
}

/// Builds a metered journalled broker: every commit naming a buyer id
/// charges that buyer's per-listing noise budget (`Σx ≤ budget`).
fn metered_broker(seed: u64, journal: &Path, budget: f64) -> Arc<Broker> {
    let (dataset, _) = DatasetSpec::scaled(PaperDataset::Simulated1, 600)
        .materialize(seed)
        .unwrap();
    let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
    let broker = Broker::builder(Seller::new("recovery-e2e", dataset, curves))
        .trainer(LinearRegressionTrainer::ridge(1e-6))
        .mechanism(GaussianMechanism)
        .n_price_points(24)
        .error_curve_samples(12)
        .seed(seed)
        .journal(journal)
        .buyer_budget(budget)
        .build()
        .unwrap();
    broker.open_market().unwrap();
    Arc::new(broker)
}

/// Tentpole acceptance: kill-9 the server between a metered commit and
/// its ACK, restart on the same journal, and the same-nonce retry must
/// charge money AND budget exactly once — the replayed account already
/// carries the spend, the dedup replays the sale without a second
/// charge, and exhaustion survives the crash as a typed pre-journal
/// reject.
#[test]
fn budget_survives_kill9_and_same_nonce_retry_charges_once() {
    let journal = temp_journal("budget-kill9");
    // Budget fits exactly one x=10 purchase: a second metered buy of the
    // same size must exhaust.
    let budget = 15.0;

    // Boot 1: buyer 7 lands one metered idempotent purchase; the "ACK"
    // is considered lost (we keep the quote to replay the intent).
    let broker = metered_broker(83, &journal, budget);
    let server = NimbusServer::start(
        host(broker.clone()),
        "recovery-e2e",
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = NimbusClient::connect(server.local_addr(), &client_config(99)).unwrap();
    client.set_buyer(Some(7));
    let quote = client.quote(PurchaseRequest::AtInverseNcp(10.0)).unwrap();
    let first = client.commit_idempotent(&quote, quote.price).unwrap();
    assert_eq!(broker.sales_count(), 1);
    let spent_before = broker.accounts().spent(7);
    assert_eq!(spent_before.to_bits(), quote.x.to_bits());
    // kill -9: no graceful broker teardown beyond dropping the process
    // state; the journal is all that survives.
    server.shutdown();
    drop(client);
    drop(broker);

    // Boot 2: same journal. Recovery must replay the *account* alongside
    // the ledger — buyer 7's spend is already on the books.
    let broker = metered_broker(83, &journal, budget);
    assert_eq!(broker.sales_count(), 1);
    assert_eq!(broker.accounts().budget(), Some(budget));
    assert_eq!(broker.accounts().spent(7).to_bits(), spent_before.to_bits());

    let server = NimbusServer::start(
        host(broker.clone()),
        "recovery-e2e",
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let mut retry_client = NimbusClient::connect(server.local_addr(), &client_config(99)).unwrap();
    retry_client.set_buyer(Some(7));

    // The crashed buyer replays its intent: same nonce, same buyer, same
    // dead-epoch quote. It must get the journalled sale back — charged
    // once in money AND once in budget.
    let replayed = retry_client.commit_idempotent(&quote, quote.price).unwrap();
    assert_eq!(replayed.transaction, first.transaction);
    assert_eq!(replayed.price.to_bits(), first.price.to_bits());
    assert_eq!(broker.sales_count(), 1);
    assert_eq!(broker.collected_revenue().to_bits(), first.price.to_bits());
    assert_eq!(
        broker.accounts().spent(7).to_bits(),
        spent_before.to_bits(),
        "same-nonce retry across restart double-charged the budget"
    );

    // Exhaustion survives the crash: a fresh x=10 quote would overdraw
    // the replayed account, so the commit is rejected with the typed
    // error before any journal write.
    let journal_len = std::fs::metadata(&journal).unwrap().len();
    let fresh = retry_client
        .quote(PurchaseRequest::AtInverseNcp(10.0))
        .unwrap();
    let err = retry_client
        .commit_idempotent(&fresh, fresh.price)
        .unwrap_err();
    match err {
        nimbus_server::ServerError::Remote {
            code, ref message, ..
        } => {
            assert_eq!(code, nimbus_server::ErrorCode::BudgetExhausted);
            assert!(
                message.contains("budget_exhausted buyer=7"),
                "message should carry the hint: {message}"
            );
        }
        other => panic!("expected a remote BudgetExhausted, got {other:?}"),
    }
    assert_eq!(broker.sales_count(), 1, "rejected commit must not sell");
    assert_eq!(
        std::fs::metadata(&journal).unwrap().len(),
        journal_len,
        "budget rejection must precede any journal write"
    );
    assert_eq!(broker.accounts().budget_rejects(), 1);
    // Graceful, not terminal: buyer 7 keeps 5 units of headroom — the
    // gauge counts fully-spent buyers only, and the typed reject's
    // `remaining` hint lets the client re-quote a smaller x.
    assert_eq!(broker.accounts().exhausted_buyers(), 0);
    assert_eq!(broker.accounts().remaining(7), Some(budget - spent_before));

    // Anonymous buyers are unmetered — the listing still sells.
    retry_client.set_buyer(None);
    let sale = retry_client
        .buy(PurchaseRequest::AtInverseNcp(10.0))
        .unwrap();
    assert_eq!(sale.transaction, first.transaction + 1);
    assert_eq!(broker.sales_count(), 2);
    assert_eq!(
        broker.accounts().spent(7).to_bits(),
        spent_before.to_bits(),
        "anonymous sales must not touch buyer accounts"
    );

    // And the wire-level ACCOUNT view agrees with the replayed ledger.
    let view = retry_client.account(7).unwrap();
    assert_eq!(view.spent.to_bits(), spent_before.to_bits());
    assert_eq!(view.budget.map(f64::to_bits), Some(budget.to_bits()));
    assert_eq!(
        view.remaining.map(f64::to_bits),
        Some((budget - spent_before).to_bits())
    );
    server.shutdown();
    let _ = std::fs::remove_file(&journal);
}

/// A listing builder journalling under `<root>/<name>/journal.log` — the
/// layout `nimbus serve --journal-dir` uses.
fn rooted_listing(name: &str, seed: u64, root: &Path) -> ListingBuilder {
    let (dataset, _) = DatasetSpec::scaled(PaperDataset::Simulated1, 600)
        .materialize(seed)
        .unwrap();
    let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
    ListingBuilder::new(name, Seller::new(name, dataset, curves))
        .trainer(LinearRegressionTrainer::ridge(1e-6))
        .mechanism(GaussianMechanism)
        .n_price_points(24)
        .error_curve_samples(12)
        .seed(seed)
        .journal_root(root)
}

/// Tentpole acceptance: a marketplace journalling three listings under one
/// root is cut down under a routed mixed load, rebooted on the same root,
/// and every listing's replayed ledger must reconcile independently —
/// per-listing counts, ids and revenue each matching that listing's
/// client-ACKed slice, never bleeding into a sibling's books.
#[test]
fn killed_marketplace_recovers_every_listing_independently() {
    let root = std::env::temp_dir().join(format!(
        "nimbus-marketplace-recovery-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    let names = ["alpha-journal", "beta-journal", "gamma-journal"];
    let builders = |root: &Path| {
        names
            .iter()
            .enumerate()
            .map(|(i, n)| rooted_listing(n, 71 + i as u64, root))
            .collect::<Vec<_>>()
    };

    // Boot 1: three journalled listings under a routed buy mix; pull the
    // plug mid-load.
    let marketplace = Arc::new(Marketplace::open_listings(builders(&root)).unwrap());
    let server = NimbusServer::start(
        marketplace.clone(),
        names[0],
        "127.0.0.1:0",
        ServerConfig {
            shards: 2,
            workers_per_shard: 2,
            queue_capacity: 32,
            handle_delay: Some(Duration::from_millis(1)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let report = std::thread::scope(|scope| {
        let load = scope.spawn(move || {
            run_load(
                addr,
                &LoadConfig {
                    threads: 6,
                    requests_per_thread: 100,
                    mode: LoadMode::Buy,
                    client: client_config(0),
                    busy_retries: 0,
                    mix: names.iter().map(|n| (n.to_string(), 1)).collect(),
                    ..LoadConfig::default()
                },
            )
        });
        std::thread::sleep(Duration::from_millis(150));
        server.shutdown();
        load.join().unwrap()
    });
    assert!(
        report.ok > 0,
        "some purchases must have landed before the cut"
    );
    // Each listing's ACKed books, straight off the wire reports.
    let mut acked_ids = Vec::new();
    for name in names {
        let broker = marketplace.route(name).unwrap();
        let ids: Vec<u64> = broker
            .ledger()
            .transactions()
            .iter()
            .map(|t| t.sequence)
            .collect();
        acked_ids.push(ids);
    }
    let acked = report.per_listing.clone();
    drop(marketplace);

    // The journals landed in the documented per-listing layout.
    for name in names {
        assert!(
            Marketplace::journal_path_for(&root, name).is_file(),
            "missing journal for {name}"
        );
    }

    // Boot 2: same root, fresh marketplace. Recovery runs per listing (in
    // parallel), and each ledger replays only its own log.
    let marketplace = Marketplace::open_listings(builders(&root)).unwrap();
    for (i, name) in names.iter().enumerate() {
        let broker = marketplace.route(name).unwrap();
        let recovery = broker
            .recovery()
            .expect("journalled listing reports recovery");
        assert!(recovery.truncated.is_none(), "{name}: torn tail");
        let (acked_ok, acked_revenue) = acked
            .iter()
            .find(|s| s.listing == *name)
            .map(|s| (s.ok, s.revenue))
            .unwrap_or((0, 0.0));
        assert_eq!(broker.sales_count() as u64, acked_ok, "{name}");
        assert!(
            (broker.collected_revenue() - acked_revenue).abs() < 1e-6,
            "{name}: ledger {} vs clients {acked_revenue}",
            broker.collected_revenue(),
        );
        let replayed_ids: Vec<u64> = broker
            .ledger()
            .transactions()
            .iter()
            .map(|t| t.sequence)
            .collect();
        assert_eq!(replayed_ids, acked_ids[i], "{name}");
    }
    // The marketplace-wide snapshot sums exactly what clients were ACKed.
    let stats = marketplace.stats();
    assert_eq!(stats.total_sales, report.ok);
    assert!((stats.total_revenue - report.revenue).abs() < 1e-6);
    let _ = std::fs::remove_dir_all(&root);
}
