//! Staging a real arbitrage attack — and showing it fail against MBP.
//!
//! A naive broker prices model versions at the (convex) buyer valuations.
//! A savvy buyer then purchases several cheap, noisy instances and combines
//! them with the inverse-variance weights from Theorem 5's proof, obtaining
//! a *better* model than the expensive version for less money. We run the
//! attack end-to-end with real Gaussian-mechanism purchases and measure the
//! combined instance's actual square loss. Against the DP-optimized MBP
//! prices, the same search finds nothing.
//!
//! Run with: `cargo run -p nimbus --example arbitrage_attack`

use nimbus::core::arbitrage;
use nimbus::core::square_loss::square_loss;
use nimbus::prelude::*;

fn main() {
    // Convex valuations over 10 versions.
    let curves = MarketCurves::new(ValueCurve::standard_convex(), DemandCurve::Uniform);
    let problem = curves.build_problem(10).expect("problem");
    let params = problem.parameters();

    // --- The naive market: prices = valuations -------------------------
    let naive =
        PiecewiseLinearPricing::new(params.iter().copied().zip(problem.valuations()).collect())
            .expect("pricing");
    let target = *params.last().unwrap();
    let attack = arbitrage::find_attack(&naive, target, &params, 1_000)
        .expect("search")
        .expect("naive convex pricing must be attackable");
    println!("naive pricing attack against the x = {target} version:");
    println!("  posted price      : {:.2}", attack.target_price);
    println!("  buy instead       : {:?}", attack.purchases);
    println!(
        "  total cost        : {:.2} (saves {:.2})",
        attack.total_cost,
        attack.savings()
    );

    // --- Execute it with real noisy models ------------------------------
    let optimal = LinearModel::new(nimbus::linalg::Vector::from_vec(
        (0..8).map(|i| (i as f64 * 0.7).sin() * 3.0).collect(),
    ));
    let mut rng = seeded_rng(5);
    let mut instances = Vec::new();
    for &(x, count) in &attack.purchases {
        for _ in 0..count {
            let ncp = InverseNcp::new(x).unwrap().ncp();
            let noisy = GaussianMechanism
                .perturb(&optimal, ncp, &mut rng)
                .expect("perturb");
            instances.push((noisy, ncp));
        }
    }
    let (combined, delta0) = arbitrage::combine_instances(&instances).expect("combine");
    println!(
        "\ncombined instance: effective NCP δ₀ = {:.5} (i.e. accuracy x = {:.1})",
        delta0.delta(),
        1.0 / delta0.delta()
    );
    println!(
        "  single-run square loss vs optimum: {:.5} (E = δ₀ by Theorem 5)",
        square_loss(&combined, &optimal).unwrap()
    );
    // Average over many runs to show the expectation matches δ₀.
    let runs = 3_000;
    let mut total = 0.0;
    for _ in 0..runs {
        let mut inst = Vec::new();
        for &(x, count) in &attack.purchases {
            for _ in 0..count {
                let ncp = InverseNcp::new(x).unwrap().ncp();
                inst.push((
                    GaussianMechanism.perturb(&optimal, ncp, &mut rng).unwrap(),
                    ncp,
                ));
            }
        }
        let (c, _) = arbitrage::combine_instances(&inst).unwrap();
        total += square_loss(&c, &optimal).unwrap();
    }
    println!(
        "  mean square loss over {runs} runs: {:.5} (δ₀ = {:.5})",
        total / runs as f64,
        delta0.delta()
    );

    // --- The MBP market is immune ---------------------------------------
    let dp = solve_revenue_dp(&problem).expect("dp");
    let mbp = PiecewiseLinearPricing::new(params.iter().copied().zip(dp.prices).collect())
        .expect("pricing");
    match arbitrage::find_attack(&mbp, target, &params, 1_000).expect("search") {
        Some(a) => println!("\nUNEXPECTED: attack against MBP prices found: {a:?}"),
        None => println!(
            "\nMBP (DP-optimized) prices admit NO attack — monotone + subadditive, Theorem 5 holds."
        ),
    }
}
