//! The paper's Example 1: selling a simple SQL-style aggregate.
//!
//! The buyer wants to "learn" the average of a column. The hypothesis space
//! is just `R`, the optimal instance is the column mean, and the paper's
//! two candidate mechanisms are additive uniform noise `K₁(h*, w) = h* + w`
//! with `w ~ U[-γ, γ]`, and multiplicative noise `K₂(h*, w) = h*·w` with
//! `w ~ U[1-γ, 1+γ]`. Both are unbiased and error-monotone, so the whole
//! MBP pricing stack applies to a one-number "model".
//!
//! Nimbus needs no special casing: encode the average as least squares on a
//! constant feature (the OLS solution of `y ≈ w·1` is the mean), and reuse
//! the general mechanisms at `d = 1`.
//!
//! Run with: `cargo run -p nimbus --example column_average`

use nimbus::core::mechanism::MultiplicativeUniformMechanism;
use nimbus::core::square_loss::square_loss;
use nimbus::prelude::*;

fn main() {
    // A "column" of commercially valuable values.
    let column: Vec<f64> = (0..10_000)
        .map(|i| 50.0 + 30.0 * ((i as f64) * 0.7).sin() + (i % 7) as f64)
        .collect();
    let true_mean = column.iter().sum::<f64>() / column.len() as f64;

    // Encode as least squares over a constant feature: argmin_w Σ(w − y)²
    // is exactly the mean.
    let x = nimbus::linalg::Matrix::from_row_major(column.len(), 1, vec![1.0; column.len()])
        .expect("shape");
    let y = nimbus::linalg::Vector::from_vec(column.clone());
    let data = Dataset::new(x, y, Task::Regression).expect("dataset");
    let optimal = LinearRegressionTrainer::ols().train(&data).expect("train");
    println!(
        "column mean = {true_mean:.4}; trained 1-d model = {:.4}",
        optimal.weights()[0]
    );

    // Mechanism K₁ (additive uniform) and K₂ (multiplicative uniform) at a
    // few NCPs; verify unbiasedness and the E[ε_s] = δ identity empirically.
    let mut rng = seeded_rng(7);
    for delta in [0.01, 0.1, 1.0] {
        let ncp = Ncp::new(delta).unwrap();
        for (name, mech) in [
            (
                "K1 additive-uniform",
                &UniformMechanism as &dyn RandomizedMechanism,
            ),
            ("K2 multiplicative", &MultiplicativeUniformMechanism),
        ] {
            let reps = 30_000;
            let mut mean_est = 0.0;
            let mut mean_sq = 0.0;
            for _ in 0..reps {
                let noisy = mech.perturb(&optimal, ncp, &mut rng).expect("perturb");
                mean_est += noisy.weights()[0];
                mean_sq += square_loss(&noisy, &optimal).unwrap();
            }
            mean_est /= reps as f64;
            mean_sq /= reps as f64;
            println!(
                "δ = {delta:<5}: {name:<22} E[instance] = {mean_est:.4} (truth {:.4}), E[ε_s] = {mean_sq:.5} (δ = {delta})",
                optimal.weights()[0]
            );
        }
    }

    // Price the versions: a buyer value curve over the error of the average
    // (worth $50 if exact, decaying with expected squared error), turned
    // into a revenue problem through the analytic square-loss error curve.
    let deltas: Vec<Ncp> = (1..=20)
        .map(|i| Ncp::new(i as f64 * 0.05).unwrap())
        .collect();
    let error_curve = ErrorCurve::analytic_square_loss(&deltas).expect("curve");
    let problem =
        nimbus::market::transform_research(&error_curve, |err| 50.0 / (1.0 + 10.0 * err), |_| 1.0)
            .expect("transform");
    let dp = solve_revenue_dp(&problem).expect("dp");
    println!("\nposted versions (excerpt):");
    for (p, z) in problem.points().iter().zip(&dp.prices).step_by(5) {
        println!(
            "  E[ε_s] = {:.3}  price = {:.2}  (1/NCP = {:.1})",
            1.0 / p.a,
            z,
            p.a
        );
    }
    println!(
        "expected revenue {:.2}, affordability {:.2}",
        dp.revenue,
        affordability_ratio(&dp.prices, &problem).unwrap()
    );
}
