//! A full marketplace session: a classification dataset (the CovType
//! stand-in), a logistic-regression listing, a sampled buyer population,
//! and the realized revenue/affordability ledger — the scenario the
//! paper's introduction motivates, where buyers with very different
//! budgets all get *some* version of the model.
//!
//! The session runs through the marketplace layer: sellers describe their
//! listings with [`ListingBuilder`], the marketplace builds and publishes
//! them, and every buyer interaction routes by listing name — the same
//! path `nimbus serve` exposes over TCP.
//!
//! Run with: `cargo run -p nimbus --example marketplace_session`

use nimbus::prelude::*;

fn main() {
    // CovType stand-in: forest-cover classification, d = 54.
    let spec = DatasetSpec::scaled(PaperDataset::CovType, 6_000);
    let (dataset, _) = spec.materialize(7).expect("dataset");
    let test_set = dataset.test.clone();

    // Market research found mid-market-heavy demand on a sigmoid value curve.
    let curves = MarketCurves::new(
        ValueCurve::standard_sigmoid(),
        DemandCurve::MidPeaked { width: 0.18 },
    );
    let seller = Seller::new("forest-bureau", dataset, curves);

    // A second seller lists a regression dataset in the same marketplace.
    let (housing, _) = DatasetSpec::scaled(PaperDataset::Simulated1, 2_000)
        .materialize(11)
        .expect("dataset");
    let housing_seller = Seller::new(
        "metro-housing",
        housing,
        MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform),
    );

    let marketplace = Marketplace::open_listings(vec![
        ListingBuilder::new("forest-cover", seller)
            .model_kind("logistic_regression")
            .trainer(LogisticRegressionTrainer::new(1e-4))
            .mechanism(GaussianMechanism)
            .n_price_points(60)
            .error_curve_samples(100)
            .seed(99),
        ListingBuilder::new("metro-housing", housing_seller)
            .trainer(LinearRegressionTrainer::ridge(1e-6))
            .n_price_points(40)
            .seed(5),
    ])
    .expect("valid listing configurations");

    println!("marketplace menu:");
    for entry in marketplace.menu() {
        println!(
            "  {:<14} {:<20} {:<10} E[revenue] {:>7.2}",
            entry.name,
            entry.model_kind,
            entry.state.name(),
            entry.expected_revenue
        );
    }

    // Everything below routes by listing name, exactly like wire peers do.
    let (broker, meta) = marketplace.broker("forest-cover").expect("listing");
    println!(
        "\nrouted to {:?} ({} via {}, {})",
        meta.name,
        meta.model_kind,
        meta.mechanism,
        meta.state.name()
    );

    // Buyer-facing curve in the buyer's own error metric (0/1 test error),
    // not the broker-internal square loss — the ε/λ distinction of §3.1.
    let ts = test_set.clone();
    let curve = broker
        .price_error_curve(move |m| metrics::zero_one_error(m, &ts).map_err(Into::into))
        .expect("price-error curve");
    println!("\nbuyer-facing curve (0/1 test error vs price), excerpt:");
    for p in curve.points().iter().step_by(curve.len() / 6) {
        println!(
            "  E[0/1 error] {:>6.4}  price {:>7.2}  (1/NCP {:>5.1})",
            p.expected_error, p.price, p.inverse
        );
    }

    // A population of buyers sampled from the demand curve walks in.
    let problem = broker.seller().curves().build_problem(60).expect("problem");
    let mut rng = seeded_rng(2024);
    let population = BuyerPopulation::sample(&problem, 500, &mut rng).expect("population");

    let mut served = 0usize;
    for buyer in population.buyers() {
        let quote = marketplace
            .quote_request(
                "forest-cover",
                PurchaseRequest::AtInverseNcp(buyer.desired_x),
            )
            .expect("quote");
        if buyer.will_buy(quote.price) {
            marketplace
                .commit("forest-cover", quote, quote.price)
                .expect("purchase");
            served += 1;
        }
    }
    println!(
        "\nsession: {}/{} buyers served ({}% affordability), realized revenue {:.2}",
        served,
        population.len(),
        100 * served / population.len(),
        broker.collected_revenue()
    );

    // Every served buyer got a usable model: spot-check the last sale.
    let quote = marketplace
        .quote_request("forest-cover", PurchaseRequest::AtInverseNcp(60.0))
        .expect("final quote");
    let sale = marketplace
        .commit("forest-cover", quote, quote.price)
        .expect("final purchase");
    let acc = metrics::accuracy(&sale.model, &test_set).expect("evaluate");
    println!("spot check: purchased model test accuracy {:.3}", acc);

    // The whole marketplace reconciles in one consistent snapshot.
    let stats = marketplace.stats();
    println!(
        "\nmarketplace ledger: {} sale(s), revenue {:.2} across {} listing(s)",
        stats.total_sales,
        stats.total_revenue,
        stats.listings.len()
    );
}
