//! Quickstart: the complete model-based-pricing loop in ~70 lines.
//!
//! A seller lists a dataset, the broker trains the optimal model once and
//! publishes an immutable snapshot of arbitrage-free prices, and three
//! buyers quote and commit purchases under the three interaction options of
//! the paper's §3.2.
//!
//! Run with: `cargo run -p nimbus --example quickstart`

use nimbus::prelude::*;

fn main() {
    // --- Seller: a dataset plus market-research curves -----------------
    let spec = DatasetSpec::scaled(PaperDataset::Simulated1, 4_000);
    let (dataset, _planted) = spec.materialize(42).expect("generate dataset");
    println!(
        "seller dataset: {} train rows, {} test rows, {} features",
        dataset.train.len(),
        dataset.test.len(),
        dataset.train.num_features()
    );
    let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
    let seller = Seller::new("acme-data", dataset, curves);

    // --- Broker: validated build, train once, publish the snapshot -----
    let broker = Broker::builder(seller)
        .trainer(LinearRegressionTrainer::ridge(1e-6))
        .mechanism(GaussianMechanism)
        .seed(42)
        .build()
        .expect("valid broker configuration");
    let expected_revenue = broker.open_market().expect("open market");
    println!("market open; expected revenue per unit demand: {expected_revenue:.2}");

    let menu = broker.posted_menu().expect("menu");
    println!("posted menu (excerpt):");
    for (x, price) in menu.iter().step_by(menu.len() / 5) {
        println!(
            "  1/NCP = {x:>5.1}  (expected square loss {:>6.4})  price {price:>6.2}",
            1.0 / x
        );
    }

    // --- Buyer option 1: pick a point on the curve ---------------------
    let quote = broker
        .quote_request(PurchaseRequest::AtInverseNcp(50.0))
        .expect("quote at point");
    let sale = broker.commit(quote, quote.price).expect("buy at point");
    println!(
        "\nbuyer#1 bought version x=50: price {:.2}, E[square loss] {:.4}",
        sale.price, sale.expected_error
    );

    // --- Buyer option 2: an error budget --------------------------------
    let quote = broker
        .quote_request(PurchaseRequest::ErrorBudget(0.05))
        .expect("quote with error budget");
    let sale = broker
        .commit(quote, quote.price)
        .expect("buy with error budget");
    println!(
        "buyer#2 (error budget 0.05) got x={:.1} for {:.2}",
        sale.inverse_ncp, sale.price
    );

    // --- Buyer option 3: a price budget ---------------------------------
    let budget = sale.price / 2.0;
    let quote = broker
        .quote_request(PurchaseRequest::PriceBudget(budget))
        .expect("quote with price budget");
    let sale = broker.commit(quote, budget).expect("buy with price budget");
    println!(
        "buyer#3 (price budget {budget:.2}) got x={:.1}, E[square loss] {:.4}",
        sale.inverse_ncp, sale.expected_error
    );

    println!(
        "\nbroker ledger: {} sales, revenue {:.2}",
        broker.sales_count(),
        broker.collected_revenue()
    );
}
