//! Revenue optimization walkthrough on the paper's Figure 5 instance:
//! the naive, baseline, approximate (Algorithm 1) and exact (Algorithm 2)
//! price assignments, plus price interpolation under the relaxed
//! subadditivity constraints.
//!
//! Run with: `cargo run -p nimbus --example revenue_optimization`

use nimbus::optim::feasibility::subadditive_interpolation_feasible;
use nimbus::optim::interpolation::{interpolate_l1, interpolate_l2};
use nimbus::prelude::*;

fn main() {
    let problem = RevenueProblem::figure5_example();
    println!("instance: a = (1,2,3,4), b = 0.25 each, v = (100, 150, 280, 350)\n");

    // Naive: price at the valuations — maximal revenue IF buyers were
    // honest, but superadditive (p(3) = 280 > p(1) + p(2) = 250).
    let naive = problem.valuations();
    let naive_rev = revenue(&naive, &problem).unwrap();
    println!("naive (at valuations): {naive:?} → revenue {naive_rev:.2} — but ARBITRAGE!");

    // The four baselines.
    for baseline in Baseline::fit_all(&problem).unwrap() {
        let r = revenue(&baseline.prices, &problem).unwrap();
        let a = affordability_ratio(&baseline.prices, &problem).unwrap();
        println!(
            "{:>4}: prices {:?} → revenue {r:.2}, affordability {a:.2}",
            baseline.kind.name(),
            baseline
                .prices
                .iter()
                .map(|p| (p * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }

    // Algorithm 1 (the O(n²) DP) vs Algorithm 2 (the exponential optimum).
    let dp = solve_revenue_dp(&problem).unwrap();
    let bf = solve_revenue_brute_force(&problem).unwrap();
    println!(
        "\nAlgorithm 1 DP    : prices {:?} → revenue {:.2}",
        dp.prices, dp.revenue
    );
    println!(
        "Algorithm 2 exact : prices {:?} → revenue {:.2}",
        bf.prices, bf.revenue
    );
    println!(
        "approximation quality: {:.1}% (Proposition 3 guarantees ≥ 50%)",
        100.0 * dp.revenue / bf.revenue
    );

    // Price interpolation: the seller *wants* specific prices; project them
    // onto the arbitrage-free cone.
    let wanted =
        InterpolationProblem::new(vec![(1.0, 100.0), (2.0, 150.0), (3.0, 280.0), (4.0, 350.0)])
            .unwrap();
    let feasible = subadditive_interpolation_feasible(&wanted).unwrap();
    println!(
        "\nSUBADDITIVE INTERPOLATION: desired prices are {}",
        if feasible {
            "feasible"
        } else {
            "INFEASIBLE (as expected)"
        }
    );
    let l2 = interpolate_l2(&wanted).unwrap();
    let l1 = interpolate_l1(&wanted, 300).unwrap();
    println!("closest arbitrage-free prices (L2): {:?}", rounded(&l2));
    println!("closest arbitrage-free prices (L1): {:?}", rounded(&l1));

    // And the resulting posted curve is provably attack-free.
    let pricing = PiecewiseLinearPricing::new(
        problem
            .parameters()
            .into_iter()
            .zip(dp.prices.clone())
            .collect(),
    )
    .unwrap();
    let grid: Vec<f64> = (1..=40).map(|i| i as f64 * 0.1).collect();
    let report = check_arbitrage_free(&pricing, &grid, 1e-9).unwrap();
    println!(
        "\nDP pricing verified arbitrage-free on a 40-point grid: {}",
        report.is_arbitrage_free()
    );
}

fn rounded(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| (x * 100.0).round() / 100.0).collect()
}
