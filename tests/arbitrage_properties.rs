//! Property-based tests for Theorem 5: DP-produced pricing functions are
//! always arbitrage-free, and the attack construction always breaks prices
//! that violate the characterization.

use nimbus::prelude::*;
use proptest::prelude::*;

/// Strategy: a random valid revenue problem with n points, monotone
/// valuations, grid parameters `a_j = j`.
fn revenue_problem(max_n: usize) -> impl Strategy<Value = RevenueProblem> {
    (2..=max_n)
        .prop_flat_map(|n| {
            (
                prop::collection::vec(0.1..50.0f64, n), // valuation increments
                prop::collection::vec(0.0..2.0f64, n),  // demand masses
            )
        })
        .prop_map(|(increments, demands)| {
            let mut v = Vec::with_capacity(increments.len());
            let mut acc = 0.0;
            for inc in &increments {
                acc += inc;
                v.push(acc);
            }
            let a: Vec<f64> = (1..=increments.len()).map(|i| i as f64).collect();
            // Guarantee strictly positive total demand.
            let mut b = demands;
            b[0] += 0.1;
            RevenueProblem::from_slices(&a, &b, &v).expect("constructed valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dp_prices_are_always_arbitrage_free(problem in revenue_problem(9)) {
        let dp = solve_revenue_dp(&problem).unwrap();
        let pricing = PiecewiseLinearPricing::new(
            problem.parameters().into_iter().zip(dp.prices).collect(),
        ).unwrap();
        let grid: Vec<f64> = (1..=4 * problem.len())
            .map(|i| i as f64 * 0.25)
            .collect();
        let report = check_arbitrage_free(&pricing, &grid, 1e-7).unwrap();
        prop_assert!(
            report.is_arbitrage_free(),
            "violations: {:?} / {:?}",
            report.monotonicity_violations,
            report.subadditivity_violations
        );
    }

    #[test]
    fn dp_prices_resist_the_attack_search(problem in revenue_problem(8)) {
        let dp = solve_revenue_dp(&problem).unwrap();
        let pricing = PiecewiseLinearPricing::new(
            problem.parameters().into_iter().zip(dp.prices).collect(),
        ).unwrap();
        let params = problem.parameters();
        let target = *params.last().unwrap();
        let attack = find_attack(&pricing, target, &params, 500).unwrap();
        prop_assert!(attack.is_none(), "attack found: {attack:?}");
    }

    #[test]
    fn brute_force_prices_resist_the_attack_search(problem in revenue_problem(6)) {
        let bf = solve_revenue_brute_force(&problem).unwrap();
        let pricing = PiecewiseLinearPricing::new(
            problem.parameters().into_iter().zip(bf.prices).collect(),
        ).unwrap();
        let params = problem.parameters();
        for &target in &params {
            let attack = find_attack(&pricing, target, &params, 400).unwrap();
            prop_assert!(attack.is_none(), "attack at {target}: {attack:?}");
        }
    }

    #[test]
    fn attack_always_found_when_subadditivity_clearly_fails(
        base in 1.0..20.0f64,
        factor in 2.5..6.0f64,
    ) {
        // p(1) = base, p(2) = factor·base with factor > 2: two copies of
        // the 1-version undercut the 2-version.
        let pricing = PiecewiseLinearPricing::new(vec![
            (1.0, base),
            (2.0, factor * base),
        ]).unwrap();
        let attack = find_attack(&pricing, 2.0, &[1.0], 200).unwrap();
        prop_assert!(attack.is_some());
        let attack = attack.unwrap();
        prop_assert!((attack.total_cost - 2.0 * base).abs() < 1e-9);
    }

    #[test]
    fn combining_instances_preserves_unbiasedness_weights(
        deltas in prop::collection::vec(0.1..10.0f64, 1..6),
    ) {
        // Weights δ₀/δ_i always sum to 1, so combining copies of the SAME
        // vector returns that vector regardless of the δ mix.
        let h = LinearModel::new(nimbus::linalg::Vector::from_vec(vec![2.0, -3.0, 0.5]));
        let instances: Vec<(LinearModel, Ncp)> = deltas
            .iter()
            .map(|&d| (h.clone(), Ncp::new(d).unwrap()))
            .collect();
        let (combined, delta0) = nimbus::core::arbitrage::combine_instances(&instances).unwrap();
        let expected_delta0 = 1.0 / deltas.iter().map(|d| 1.0 / d).sum::<f64>();
        prop_assert!((delta0.delta() - expected_delta0).abs() < 1e-9);
        for j in 0..3 {
            prop_assert!((combined.weights()[j] - h.weights()[j]).abs() < 1e-9);
        }
    }

    #[test]
    fn linear_and_constant_pricing_never_flagged(
        slope in 0.0..10.0f64,
        intercept in 0.0..10.0f64,
    ) {
        let grid: Vec<f64> = (1..=20).map(|i| i as f64 * 0.5).collect();
        let lin = LinearPricing::new(slope, intercept).unwrap();
        prop_assert!(check_arbitrage_free(&lin, &grid, 1e-9).unwrap().is_arbitrage_free());
        let c = ConstantPricing::new(intercept).unwrap();
        prop_assert!(check_arbitrage_free(&c, &grid, 1e-9).unwrap().is_arbitrage_free());
    }
}
