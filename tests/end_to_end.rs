//! End-to-end integration: every layer of the reproduction in one flow —
//! dataset generation → training → market optimization → noisy sales →
//! buyer-side evaluation → arbitrage immunity.

use nimbus::prelude::*;

fn build_broker(seed: u64) -> Broker {
    let spec = DatasetSpec::scaled(PaperDataset::Simulated1, 2_000);
    let (dataset, _) = spec.materialize(seed).unwrap();
    let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
    let seller = Seller::new("e2e", dataset, curves);
    Broker::builder(seller)
        .trainer(LinearRegressionTrainer::ridge(1e-6))
        .mechanism(GaussianMechanism)
        .n_price_points(40)
        .error_curve_samples(60)
        .seed(seed)
        .build()
        .unwrap()
}

fn buy(broker: &Broker, request: PurchaseRequest) -> Sale {
    let quote = broker.quote_request(request).unwrap();
    broker.commit(quote, quote.price).unwrap()
}

#[test]
fn full_market_flow() {
    let broker = build_broker(11);
    let expected = broker.open_market().unwrap();
    assert!(expected > 0.0);

    // The posted menu satisfies Theorem 5's conditions numerically.
    let menu = broker.posted_menu().unwrap();
    let pricing = PiecewiseLinearPricing::new(menu.clone()).unwrap();
    let grid: Vec<f64> = menu.iter().map(|(x, _)| *x).collect();
    assert!(check_arbitrage_free(&pricing, &grid, 1e-9)
        .unwrap()
        .is_arbitrage_free());

    // Sales through all three options, via quote -> commit.
    let s1 = buy(&broker, PurchaseRequest::AtInverseNcp(10.0));
    let s2 = buy(&broker, PurchaseRequest::ErrorBudget(0.1));
    let budget = s1.price;
    let q3 = broker
        .quote_request(PurchaseRequest::PriceBudget(budget))
        .unwrap();
    let s3 = broker.commit(q3, budget).unwrap();
    assert_eq!(broker.sales_count(), 3);
    assert!((broker.collected_revenue() - (s1.price + s2.price + s3.price)).abs() < 1e-9);

    // Error budgets are honored in expectation semantics.
    assert!(s2.expected_error <= 0.1 + 1e-12);
    // Price budgets are honored exactly.
    assert!(s3.price <= budget + 1e-9);
}

#[test]
fn noisier_versions_cost_less_and_err_more() {
    let broker = build_broker(13);
    broker.open_market().unwrap();
    let cheap = buy(&broker, PurchaseRequest::AtInverseNcp(2.0));
    let sharp = buy(&broker, PurchaseRequest::AtInverseNcp(90.0));
    assert!(cheap.price < sharp.price);
    assert!(cheap.expected_error > sharp.expected_error);

    // And the actual delivered models reflect it on the test set, in
    // expectation over repeated purchases.
    let test = broker.seller().dataset().test.clone();
    let reps = 60;
    let mut cheap_mse = 0.0;
    let mut sharp_mse = 0.0;
    for _ in 0..reps {
        let c = buy(&broker, PurchaseRequest::AtInverseNcp(2.0));
        let s = buy(&broker, PurchaseRequest::AtInverseNcp(90.0));
        cheap_mse += metrics::mse(&c.model, &test).unwrap();
        sharp_mse += metrics::mse(&s.model, &test).unwrap();
    }
    assert!(
        cheap_mse > sharp_mse,
        "cheap versions must be less accurate on average: {cheap_mse} vs {sharp_mse}"
    );
}

#[test]
fn buyer_facing_curve_uses_buyer_error_function() {
    let broker = build_broker(17);
    broker.open_market().unwrap();
    let test = broker.seller().dataset().test.clone();
    let curve = broker
        .price_error_curve(move |m| metrics::mse(m, &test).map_err(Into::into))
        .unwrap();
    // Price decreases as expected error increases along the curve.
    let pts = curve.points();
    for w in pts.windows(2) {
        assert!(w[1].expected_error >= w[0].expected_error - 1e-9);
        assert!(w[1].price <= w[0].price + 1e-9);
    }
    // The three buyer options work against the estimated curve too.
    let sharpest_err = pts[0].expected_error;
    let pick = curve.choose_with_error_budget(sharpest_err * 2.0).unwrap();
    assert!(pick.point.expected_error <= sharpest_err * 2.0);
    let cheapest = pts.last().unwrap().price;
    let pick = curve.choose_with_price_budget(cheapest * 1.5).unwrap();
    assert!(pick.point.price <= cheapest * 1.5);
}

#[test]
fn classification_market_end_to_end() {
    let spec = DatasetSpec::scaled(PaperDataset::Simulated2, 3_000);
    let (dataset, _) = spec.materialize(23).unwrap();
    let test = dataset.test.clone();
    let curves = MarketCurves::new(
        ValueCurve::standard_sigmoid(),
        DemandCurve::MidPeaked { width: 0.2 },
    );
    let broker = Broker::builder(Seller::new("cls", dataset, curves))
        .trainer(LogisticRegressionTrainer::new(1e-4))
        .mechanism(GaussianMechanism)
        .n_price_points(30)
        .error_curve_samples(40)
        .seed(5)
        .build()
        .unwrap();
    broker.open_market().unwrap();
    let sale = buy(&broker, PurchaseRequest::AtInverseNcp(80.0));
    // A lightly noised logistic model still classifies far above chance.
    let acc = metrics::accuracy(&sale.model, &test).unwrap();
    assert!(acc > 0.8, "accuracy {acc}");
}

#[test]
fn metric_market_error_budget_end_to_end() {
    // A broker configured with the 0/1 metric prices the menu through the
    // Monte-Carlo curve and φ; an error-budget purchase resolves against
    // the same curve, and the posted prices stay arbitrage-free.
    let spec = DatasetSpec::scaled(PaperDataset::Simulated2, 2_000);
    let (dataset, _) = spec.materialize(41).unwrap();
    let test = dataset.test.clone();
    let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
    let broker = Broker::builder(Seller::new("cls-metric", dataset, curves))
        .trainer(LogisticRegressionTrainer::new(1e-4))
        .mechanism(GaussianMechanism)
        .n_price_points(24)
        .error_curve_samples(40)
        .seed(9)
        .error_metric(nimbus::ml::LossMetric::zero_one(test))
        .build()
        .unwrap();
    broker.open_market().unwrap();

    let quote = broker
        .quote_request(PurchaseRequest::ErrorBudget(0.45))
        .unwrap();
    assert_eq!(quote.metric, "zero_one");
    assert!(quote.expected_error <= 0.45 + 1e-9);
    let sale = broker.commit(quote, quote.price).unwrap();
    assert_eq!(sale.metric, "zero_one");
    assert!((sale.expected_error - quote.expected_error).abs() < 1e-12);

    let menu = broker.posted_menu().unwrap();
    let pricing = PiecewiseLinearPricing::new(menu.clone()).unwrap();
    let xs: Vec<f64> = menu.iter().map(|(x, _)| *x).collect();
    assert!(check_arbitrage_free(&pricing, &xs, 1e-6)
        .unwrap()
        .is_arbitrage_free());
}

#[test]
fn dp_prices_are_immune_to_the_attack_search() {
    let broker = build_broker(29);
    broker.open_market().unwrap();
    let menu = broker.posted_menu().unwrap();
    let pricing = PiecewiseLinearPricing::new(menu.clone()).unwrap();
    let xs: Vec<f64> = menu.iter().map(|(x, _)| *x).collect();
    for target in [10.0, 40.0, 100.0] {
        let attack = find_attack(&pricing, target, &xs, 2_000).unwrap();
        assert!(attack.is_none(), "attack found at target {target}");
    }
}
