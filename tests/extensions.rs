//! Integration tests for the extension features built beyond the paper's
//! core: streaming training, cross-validated model selection, the Figure 2
//! error-domain transformation, and the fairness frontier — all wired
//! through the public facade.

use nimbus::ml::model_selection::select_ridge_mu;
use nimbus::ml::streaming::train_least_squares_stream;
use nimbus::optim::fairness::{fairness_frontier, maximize_revenue_with_affordability_floor};
use nimbus::prelude::*;

#[test]
fn streaming_broker_training_at_scale() {
    // Train on a 300k-row synthetic stream (constant memory), then verify
    // against a materialized subsample of the same distribution.
    let spec = RegressionSpec::simulated1(300_000, 12);
    let mut stream = nimbus::data::stream::SyntheticRegressionStream::new(spec, 77);
    let truth = stream.planted_hyperplane();
    let model = train_least_squares_stream(&mut stream, 0.0).unwrap();
    for (j, t) in truth.iter().enumerate() {
        assert!(
            (model.weights()[j] - t).abs() < 1e-5,
            "weight {j}: {} vs {}",
            model.weights()[j],
            t
        );
    }
}

#[test]
fn cross_validation_guides_the_broker() {
    // The broker uses CV to pick μ, then sells with the selected model.
    let (ds, _) = generate_regression(
        &RegressionSpec {
            n: 120,
            d: 10,
            target_noise: 2.0,
            target_scale: 1.0,
            feature_scale: 1.0,
        },
        31,
    )
    .unwrap();
    let mut rng = seeded_rng(4);
    let report = select_ridge_mu(&ds, &[1e-8, 1e-2, 1.0], 4, &mut rng).unwrap();
    assert_eq!(report.scores.len(), 3);
    assert!(report.best_score.is_finite());
    // The selected model is usable downstream: perturb and price it.
    let ncp = Ncp::new(0.5).unwrap();
    let noisy = GaussianMechanism
        .perturb(&report.model, ncp, &mut rng)
        .unwrap();
    assert_eq!(noisy.dim(), 10);
}

#[test]
fn error_domain_research_to_market_end_to_end() {
    // Figure 2 pipeline with a REAL (Monte-Carlo) error curve: train on
    // Simulated2, estimate 0/1-error transformation, express research over
    // the 0/1 error, transform, optimize, and check arbitrage-freeness.
    let spec = DatasetSpec::scaled(PaperDataset::Simulated2, 2_000);
    let (tt, _) = spec.materialize(3).unwrap();
    let model = LogisticRegressionTrainer::new(1e-4)
        .train(&tt.train)
        .unwrap();
    let test = tt.test.clone();
    let deltas: Vec<Ncp> = (1..=12)
        .map(|i| Ncp::new(0.01 * 1.6f64.powi(i)).unwrap())
        .collect();
    let curve = ErrorCurve::estimate(
        &GaussianMechanism,
        &model,
        |h| nimbus::ml::metrics::zero_one_error(h, &test).map_err(Into::into),
        &deltas,
        150,
        11,
    )
    .unwrap();

    // Research over the 0/1 error: a model at Bayes error is worth $200,
    // decaying steeply; demand uniform.
    let problem =
        nimbus::market::transform_research(&curve, |err| 200.0 * (-6.0 * err).exp(), |_| 1.0)
            .unwrap();
    assert_eq!(problem.len(), curve.len());
    let dp = solve_revenue_dp(&problem).unwrap();
    assert!(dp.revenue > 0.0);
    let pricing =
        PiecewiseLinearPricing::new(problem.parameters().into_iter().zip(dp.prices).collect())
            .unwrap();
    let grid = problem.parameters();
    assert!(check_arbitrage_free(&pricing, &grid, 1e-7)
        .unwrap()
        .is_arbitrage_free());
}

#[test]
fn fairness_floor_composes_with_market_curves() {
    let problem = MarketCurves::new(ValueCurve::standard_convex(), DemandCurve::Uniform)
        .build_problem(60)
        .unwrap();
    let unconstrained = solve_revenue_dp(&problem).unwrap();
    let base_aff = affordability_ratio(&unconstrained.prices, &problem).unwrap();
    assert!(base_aff < 0.9, "convex market should price some buyers out");

    let fair = maximize_revenue_with_affordability_floor(&problem, 0.95).unwrap();
    assert!(fair.affordability >= 0.95);
    assert!(fair.revenue > 0.0);
    assert!(fair.revenue <= unconstrained.revenue + 1e-9);

    // Frontier endpoints bracket both solutions.
    let frontier = fairness_frontier(&problem, &[0.0, 1e3]).unwrap();
    assert_eq!(frontier[0].revenue, unconstrained.revenue);
    assert!(frontier[1].affordability >= fair.affordability - 1e-9);
}

#[test]
fn example1_average_market_is_well_behaved() {
    // Example 1 end-to-end: a 1-dimensional "average" model priced through
    // the analytic square-loss curve; the DP output is arbitrage-free and
    // the multiplicative mechanism keeps the Lemma 3 identity.
    let deltas: Vec<Ncp> = (1..=10)
        .map(|i| Ncp::new(i as f64 * 0.1).unwrap())
        .collect();
    let curve = ErrorCurve::analytic_square_loss(&deltas).unwrap();
    let problem =
        nimbus::market::transform_research(&curve, |e| 20.0 / (1.0 + 5.0 * e), |_| 1.0).unwrap();
    let dp = solve_revenue_dp(&problem).unwrap();
    let pricing =
        PiecewiseLinearPricing::new(problem.parameters().into_iter().zip(dp.prices).collect())
            .unwrap();
    assert!(check_arbitrage_free(&pricing, &problem.parameters(), 1e-9)
        .unwrap()
        .is_arbitrage_free());

    let optimal = LinearModel::new(nimbus::linalg::Vector::from_vec(vec![42.0]));
    let mech = nimbus::core::mechanism::MultiplicativeUniformMechanism;
    let mut rng = seeded_rng(5);
    let reps = 30_000;
    let delta = 0.25;
    let ncp = Ncp::new(delta).unwrap();
    let mut total = 0.0;
    for _ in 0..reps {
        let noisy = mech.perturb(&optimal, ncp, &mut rng).unwrap();
        total += noisy.distance_squared(&optimal).unwrap();
    }
    let mean = total / reps as f64;
    assert!(
        (mean - delta).abs() < 0.05 * delta,
        "multiplicative mechanism E[eps_s] = {mean}, expected {delta}"
    );
}
