//! The paper's Figure 5 worked example, pinned as an executable spec.
//!
//! Instance: `a = (1,2,3,4)`, `b = 0.25` each, `v = (100, 150, 280, 350)`.

use nimbus::prelude::*;

#[test]
fn naive_valuation_pricing_has_arbitrage() {
    let problem = RevenueProblem::figure5_example();
    let pricing = PiecewiseLinearPricing::new(
        problem
            .parameters()
            .into_iter()
            .zip(problem.valuations())
            .collect(),
    )
    .unwrap();
    // p(3) = 280 > p(1) + p(2) = 250: a 2-arbitrage (Figure 5(a)).
    let report = check_arbitrage_free(&pricing, &[1.0, 2.0, 3.0, 4.0], 1e-9).unwrap();
    assert!(!report.is_arbitrage_free());
    let attack = find_attack(&pricing, 3.0, &[1.0, 2.0], 300)
        .unwrap()
        .expect("the worked example's arbitrage");
    assert_eq!(attack.target_price, 280.0);
    assert!((attack.total_cost - 250.0).abs() < 1e-9);
}

#[test]
fn algorithm1_dp_matches_figure5e() {
    let problem = RevenueProblem::figure5_example();
    let dp = solve_revenue_dp(&problem).unwrap();
    // Hand-derived optimum of the relaxed program: the figure's panel (e)
    // annotations 225 and 300 appear as the two top prices.
    assert_eq!(dp.prices, vec![100.0, 150.0, 225.0, 300.0]);
    assert!((dp.revenue - 193.75).abs() < 1e-9);
    assert_eq!(affordability_ratio(&dp.prices, &problem).unwrap(), 1.0);
}

#[test]
fn algorithm2_brute_force_matches_figure5d() {
    let problem = RevenueProblem::figure5_example();
    let bf = solve_revenue_brute_force(&problem).unwrap();
    // The exact subadditive optimum: p(3) capped by p(1)+p(2) = 250 and
    // p(4) by 2·p(2) = 300 (the figure's panel (d) annotations 250, 300).
    assert_eq!(bf.prices, vec![100.0, 150.0, 250.0, 300.0]);
    assert!((bf.revenue - 200.0).abs() < 1e-9);
}

#[test]
fn baseline_revenues_on_figure5() {
    let problem = RevenueProblem::figure5_example();
    let report = nimbus::optim::baselines::baseline_report(&problem).unwrap();
    let by_name: std::collections::HashMap<&str, f64> =
        report.iter().map(|(n, _, r)| (*n, *r)).collect();
    // Constant at the max valuation sells to one group of mass 0.25.
    assert!((by_name["MaxC"] - 87.5).abs() < 1e-9);
    // Optimal constant is 280 (sells to two groups).
    assert!((by_name["OptC"] - 140.0).abs() < 1e-9);
    // MedC also lands on 280 for equal masses.
    assert!((by_name["MedC"] - 140.0).abs() < 1e-9);
    // Everything is below the DP and the brute force.
    let dp = solve_revenue_dp(&problem).unwrap();
    for (name, _, r) in &report {
        assert!(dp.revenue >= *r - 1e-9, "{name} beats DP");
    }
}

#[test]
fn dp_and_bf_prices_are_both_well_behaved() {
    let problem = RevenueProblem::figure5_example();
    let grid: Vec<f64> = (1..=80).map(|i| i as f64 * 0.05).collect();
    for prices in [
        solve_revenue_dp(&problem).unwrap().prices,
        solve_revenue_brute_force(&problem).unwrap().prices,
    ] {
        let pricing =
            PiecewiseLinearPricing::new(problem.parameters().into_iter().zip(prices).collect())
                .unwrap();
        assert!(check_arbitrage_free(&pricing, &grid, 1e-9)
            .unwrap()
            .is_arbitrage_free());
    }
}
