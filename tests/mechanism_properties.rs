//! Property-based tests for the §3.2 mechanism restrictions and the §4
//! Gaussian-mechanism analysis, across every shipped mechanism.

use nimbus::core::properties::{check_error_monotonicity, check_unbiased};
use nimbus::core::square_loss::square_loss;
use nimbus::prelude::*;
use proptest::prelude::*;

fn model_strategy() -> impl Strategy<Value = LinearModel> {
    prop::collection::vec(-5.0..5.0f64, 2..12)
        .prop_map(|w| LinearModel::new(nimbus::linalg::Vector::from_vec(w)))
}

fn mechanisms() -> Vec<Box<dyn RandomizedMechanism>> {
    vec![
        Box::new(GaussianMechanism),
        Box::new(LaplaceMechanism),
        Box::new(UniformMechanism),
    ]
}

proptest! {
    // Monte-Carlo heavy: keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_mechanisms_are_unbiased(model in model_strategy(), delta in 0.1..5.0f64, seed in 0u64..1000) {
        let ncp = Ncp::new(delta).unwrap();
        for mech in mechanisms() {
            let mut rng = seeded_rng(seed);
            let report = check_unbiased(mech.as_ref(), &model, ncp, 6_000, &mut rng).unwrap();
            prop_assert!(
                report.is_unbiased_within(5.0),
                "{}: bias {} vs stderr {}",
                mech.name(),
                report.bias_inf_norm,
                report.max_std_error
            );
        }
    }

    #[test]
    fn lemma3_for_all_additive_mechanisms(model in model_strategy(), delta in 0.1..4.0f64, seed in 0u64..1000) {
        // E[ε_s(h^δ)] = δ holds for ANY unbiased additive mechanism with
        // per-coordinate variance δ/d, not just the Gaussian.
        let ncp = Ncp::new(delta).unwrap();
        for mech in mechanisms() {
            let mut rng = seeded_rng(seed ^ 0xabc);
            let reps = 8_000;
            let mut total = 0.0;
            for _ in 0..reps {
                let noisy = mech.perturb(&model, ncp, &mut rng).unwrap();
                total += square_loss(&noisy, &model).unwrap();
            }
            let mean = total / reps as f64;
            prop_assert!(
                (mean - delta).abs() < 0.12 * delta.max(0.5),
                "{}: E[eps_s] = {mean}, delta = {delta}",
                mech.name()
            );
        }
    }

    #[test]
    fn expected_error_is_monotone_in_delta(model in model_strategy(), seed in 0u64..1000) {
        let grid: Vec<Ncp> = [0.2, 0.5, 1.0, 2.0, 4.0]
            .iter()
            .map(|&d| Ncp::new(d).unwrap())
            .collect();
        for mech in mechanisms() {
            let mut rng = seeded_rng(seed ^ 0x5150);
            let m = model.clone();
            let report = check_error_monotonicity(
                mech.as_ref(),
                &model,
                |h| square_loss(h, &m),
                &grid,
                4_000,
                &mut rng,
            ).unwrap();
            prop_assert!(
                report.is_monotone_within(0.1),
                "{}: worst violation {}",
                mech.name(),
                report.worst_violation
            );
        }
    }

    #[test]
    fn error_curve_inverse_roundtrips(delta_lo in 0.05..0.5f64, steps in 3usize..8) {
        // φ(E[ε_s](δ)) = δ on the analytic square-loss curve.
        let deltas: Vec<Ncp> = (0..steps)
            .map(|i| Ncp::new(delta_lo * 2f64.powi(i as i32)).unwrap())
            .collect();
        let curve = ErrorCurve::analytic_square_loss(&deltas).unwrap();
        for ncp in &deltas {
            let err = curve.expected_error_at(*ncp);
            let back = curve.error_inverse(err).unwrap();
            prop_assert!((back.delta() - ncp.delta()).abs() < 1e-9);
        }
    }

    #[test]
    fn convex_test_loss_is_monotone_in_delta_on_real_data(seed in 0u64..200) {
        // Theorem 4 on an actual trained model and test set: convex ε
        // (test MSE) increases with δ.
        let (ds, _) = generate_regression(&RegressionSpec::simulated1(400, 4), seed).unwrap();
        let mut rng = seeded_rng(seed);
        let tt = train_test_split(&ds, 0.75, &mut rng).unwrap();
        let model = LinearRegressionTrainer::ols().train(&tt.train).unwrap();
        let grid: Vec<Ncp> = [0.05, 0.2, 1.0, 5.0]
            .iter()
            .map(|&d| Ncp::new(d).unwrap())
            .collect();
        let test = tt.test.clone();
        let report = check_error_monotonicity(
            &GaussianMechanism,
            &model,
            |h| metrics::mse(h, &test).map_err(Into::into),
            &grid,
            3_000,
            &mut rng,
        ).unwrap();
        prop_assert!(
            report.is_monotone_within(0.05),
            "worst violation {}",
            report.worst_violation
        );
    }
}

#[test]
fn gaussian_noise_is_isotropic_per_figure4() {
    // Figure 4: per-coordinate variance is δ/d for every coordinate.
    let d = 8;
    let delta = 2.0;
    let model = LinearModel::zeros(d);
    let ncp = Ncp::new(delta).unwrap();
    let mut rng = seeded_rng(77);
    let reps = 60_000;
    let mut per_coord = vec![0.0f64; d];
    for _ in 0..reps {
        let noisy = GaussianMechanism.perturb(&model, ncp, &mut rng).unwrap();
        for (acc, w) in per_coord.iter_mut().zip(noisy.weights().as_slice()) {
            *acc += w * w;
        }
    }
    let expected = delta / d as f64;
    for (j, acc) in per_coord.iter().enumerate() {
        let var = acc / reps as f64;
        assert!(
            (var - expected).abs() < 0.08 * expected,
            "coordinate {j}: variance {var}, expected {expected}"
        );
    }
}
