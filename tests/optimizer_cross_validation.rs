//! Cross-validation of the revenue optimizers against each other and
//! against the paper's guarantees (Propositions 2 and 3, Theorem 13).

use nimbus::optim::interpolation::interpolate_l2;
use nimbus::optim::objective::satisfies_relaxed_constraints;
use nimbus::prelude::*;
use proptest::prelude::*;

/// Random small grid-rational problems (integer `a`, quarter-unit `v`).
fn small_problem() -> impl Strategy<Value = RevenueProblem> {
    (2usize..=7)
        .prop_flat_map(|n| {
            (
                prop::collection::vec(1u32..120, n),
                prop::collection::vec(1u32..8, n),
            )
        })
        .prop_map(|(v_increments, masses)| {
            let n = v_increments.len();
            let a: Vec<f64> = (1..=n).map(|i| i as f64).collect();
            let mut v = Vec::with_capacity(n);
            let mut acc = 0.0;
            for inc in &v_increments {
                acc += *inc as f64 * 0.25;
                v.push(acc);
            }
            let b: Vec<f64> = masses.iter().map(|m| *m as f64 * 0.25).collect();
            RevenueProblem::from_slices(&a, &b, &v).expect("valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn proposition3_sandwich(problem in small_problem()) {
        // C_SA / 2 ≤ C_MBP ≤ C_SA for the revenue objective.
        let dp = solve_revenue_dp(&problem).unwrap();
        let bf = solve_revenue_brute_force(&problem).unwrap();
        prop_assert!(
            dp.revenue <= bf.revenue + 1e-9,
            "DP {} exceeds exact optimum {}",
            dp.revenue, bf.revenue
        );
        prop_assert!(
            dp.revenue >= bf.revenue / 2.0 - 1e-9,
            "DP {} below half of optimum {}",
            dp.revenue, bf.revenue
        );
    }

    #[test]
    fn dp_solutions_satisfy_program5(problem in small_problem()) {
        let dp = solve_revenue_dp(&problem).unwrap();
        prop_assert!(satisfies_relaxed_constraints(
            &dp.prices,
            &problem.parameters(),
            1e-9
        ));
        // Every charged price respects the valuation cap or yields zero
        // revenue for that point.
        let rev = revenue(&dp.prices, &problem).unwrap();
        prop_assert!((rev - dp.revenue).abs() < 1e-9);
    }

    #[test]
    fn dp_beats_every_baseline(problem in small_problem()) {
        let dp = solve_revenue_dp(&problem).unwrap();
        for baseline in Baseline::fit_all(&problem).unwrap() {
            let r = revenue(&baseline.prices, &problem).unwrap();
            prop_assert!(
                dp.revenue >= r - 1e-9,
                "{} ({r}) beats DP ({})",
                baseline.kind.name(),
                dp.revenue
            );
        }
    }

    #[test]
    fn dp_dominates_relaxed_feasible_grid_candidates(problem in small_problem()) {
        // Any relaxed-feasible price vector sampled from a coarse grid must
        // not beat the DP (exactness of Algorithm 1 under the relaxation).
        let dp = solve_revenue_dp(&problem).unwrap();
        let a = problem.parameters();
        let vmax = *problem.valuations().last().unwrap();
        // Coarse deterministic candidate sweep: constant-unit-price rays
        // clipped at the valuations, a rich feasible family.
        for k in 1..=20 {
            let unit = vmax * k as f64 / (20.0 * a.last().unwrap());
            let candidate: Vec<f64> = a.iter().map(|&ai| unit * ai).collect();
            if satisfies_relaxed_constraints(&candidate, &a, 1e-9) {
                let r = revenue(&candidate, &problem).unwrap();
                prop_assert!(dp.revenue >= r - 1e-9);
            }
        }
    }

    #[test]
    fn l2_interpolation_is_projection_feasible(problem in small_problem()) {
        // Reuse the valuations as interpolation targets.
        let ip = InterpolationProblem::new(
            problem
                .parameters()
                .into_iter()
                .zip(problem.valuations())
                .collect(),
        ).unwrap();
        let z = interpolate_l2(&ip).unwrap();
        prop_assert!(satisfies_relaxed_constraints(&z, &ip.parameters(), 1e-7));
        // The projection never increases any target that is already
        // feasible as a whole.
        let targets = ip.targets();
        if satisfies_relaxed_constraints(&targets, &ip.parameters(), 1e-9) {
            for (zi, ti) in z.iter().zip(&targets) {
                prop_assert!((zi - ti).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn brute_force_monotone_in_valuations(problem in small_problem()) {
        // Raising every valuation by a constant cannot decrease the exact
        // optimum revenue.
        let bf = solve_revenue_brute_force(&problem).unwrap();
        let raised = RevenueProblem::from_slices(
            &problem.parameters(),
            &problem.demands(),
            &problem.valuations().iter().map(|v| v + 5.0).collect::<Vec<_>>(),
        ).unwrap();
        let bf_raised = solve_revenue_brute_force(&raised).unwrap();
        prop_assert!(bf_raised.revenue >= bf.revenue - 1e-9);
    }
}

#[test]
fn dp_runtime_is_quadratic_not_exponential() {
    // 2000 points complete in well under a second — the §6.3 runtime claim
    // in miniature (the MILP would need 2^2000 subsets).
    let n = 2_000;
    let a: Vec<f64> = (1..=n).map(|i| i as f64).collect();
    let v: Vec<f64> = a.iter().map(|x| x.sqrt() * 5.0).collect();
    let b = vec![1.0; n];
    let problem = RevenueProblem::from_slices(&a, &b, &v).unwrap();
    let start = std::time::Instant::now();
    let dp = solve_revenue_dp(&problem).unwrap();
    let elapsed = start.elapsed();
    assert!(dp.revenue > 0.0);
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "DP took {elapsed:?}"
    );
}
