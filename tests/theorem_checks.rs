//! Consolidated numeric checks for the paper's remaining lemmas — the ones
//! not already pinned by a dedicated suite. Each test names the result it
//! verifies.

use nimbus::core::arbitrage::check_arbitrage_free;
use nimbus::prelude::*;

/// Lemma 1: an arbitrage-free pricing function is also error-monotone.
/// Contrapositive, numerically: whenever the checker reports NO
/// monotonicity violations and NO subadditivity violations, the prices are
/// non-decreasing in x (hence non-increasing in the expected error); and a
/// deliberately non-monotone function is always caught through the
/// monotonicity half of the report.
#[test]
fn lemma1_arbitrage_free_implies_error_monotone() {
    // Price curve that dips: monotonicity violation must be reported.
    let dip = PiecewiseLinearPricing::new(vec![(1.0, 10.0), (2.0, 6.0), (3.0, 12.0)]).unwrap();
    let report = check_arbitrage_free(&dip, &[1.0, 2.0, 3.0], 1e-9).unwrap();
    assert!(!report.monotonicity_violations.is_empty());
    assert!(!report.is_arbitrage_free());

    // Any DP output passes the full check, and its prices are monotone in
    // x — i.e. error-monotone, since E[ε_s] = 1/x is decreasing in x.
    let problem = RevenueProblem::figure5_example();
    let dp = solve_revenue_dp(&problem).unwrap();
    assert!(dp.prices.windows(2).all(|w| w[1] >= w[0] - 1e-12));
}

/// Lemma 2: `K_G` is unbiased — verified on a fresh model/δ pair beyond the
/// mechanism suite's fixtures, with tight statistical bounds.
#[test]
fn lemma2_gaussian_mechanism_is_unbiased() {
    let optimal = LinearModel::new(nimbus::linalg::Vector::from_vec(vec![
        -4.2, 0.0, 13.7, 0.5, -0.01,
    ]));
    let ncp = Ncp::new(0.7).unwrap();
    let mut rng = seeded_rng(20190707);
    let reps = 50_000;
    let mut mean = [0.0f64; 5];
    for _ in 0..reps {
        let noisy = GaussianMechanism.perturb(&optimal, ncp, &mut rng).unwrap();
        for (m, w) in mean.iter_mut().zip(noisy.weights().as_slice()) {
            *m += w;
        }
    }
    // Per-coordinate stderr = sqrt(δ/d / reps) ≈ 0.0017; allow 5σ.
    let tol = 5.0 * (0.7f64 / 5.0 / reps as f64).sqrt();
    for (j, acc) in mean.iter().enumerate() {
        let m = acc / reps as f64;
        assert!(
            (m - optimal.weights()[j]).abs() < tol,
            "coordinate {j}: mean {m} vs {} (tol {tol})",
            optimal.weights()[j]
        );
    }
}

/// Lemma 8: any price vector satisfying the relaxed constraints of program
/// (5) is subadditive (and so is its piecewise-linear extension) — checked
/// on a family of feasible vectors, including boundary cases where the
/// unit price is exactly constant.
#[test]
fn lemma8_relaxed_constraints_imply_subadditivity() {
    let grids: Vec<Vec<(f64, f64)>> = vec![
        // Constant unit price (boundary of the constraint).
        (1..=8).map(|i| (i as f64, 3.0 * i as f64)).collect(),
        // Strictly decreasing unit price.
        (1..=8)
            .map(|i| (i as f64, 10.0 * (i as f64).sqrt()))
            .collect(),
        // Flat prices (monotone boundary).
        (1..=8).map(|i| (i as f64, 7.0)).collect(),
    ];
    let xs: Vec<f64> = (1..=16).map(|i| i as f64 * 0.5).collect();
    for points in grids {
        let pricing = PiecewiseLinearPricing::new(points.clone()).unwrap();
        assert!(pricing.satisfies_relaxed_constraints(1e-12), "{points:?}");
        let report = check_arbitrage_free(&pricing, &xs, 1e-9).unwrap();
        assert!(
            report.is_arbitrage_free(),
            "{points:?}: {:?}",
            report.subadditivity_violations
        );
    }
}

/// Lemma 9: for any feasible `p` of the exact program, the function
/// `q(x) = x · min_{0<y≤x} p(y)/y` is relaxed-feasible and sandwiched in
/// `[p(x)/2, p(x)]`. Verified numerically for a genuinely subadditive but
/// NOT unit-price-monotone pricing function.
#[test]
fn lemma9_half_approximation_construction() {
    // p(x) = min(x, 3 + x/4): concave piecewise → subadditive & monotone,
    // but p(y)/y jumps around the breakpoint.
    let p = |x: f64| x.min(3.0 + x / 4.0);
    let xs: Vec<f64> = (1..=80).map(|i| i as f64 * 0.25).collect();

    // Construct q on the grid.
    let q: Vec<f64> = xs
        .iter()
        .map(|&x| {
            let min_unit = xs
                .iter()
                .filter(|&&y| y <= x)
                .map(|&y| p(y) / y)
                .fold(f64::INFINITY, f64::min);
            x * min_unit
        })
        .collect();

    // Sandwich: p/2 ≤ q ≤ p.
    for (&x, &qx) in xs.iter().zip(&q) {
        let px = p(x);
        assert!(qx <= px + 1e-9, "q({x}) = {qx} > p = {px}");
        assert!(qx >= px / 2.0 - 1e-9, "q({x}) = {qx} < p/2 = {}", px / 2.0);
    }
    // Relaxed feasibility: q/x non-increasing and q non-decreasing.
    let units: Vec<f64> = q.iter().zip(&xs).map(|(q, x)| q / x).collect();
    assert!(units.windows(2).all(|w| w[1] <= w[0] + 1e-9));
    assert!(q.windows(2).all(|w| w[1] >= w[0] - 1e-9));
}

/// Theorem 4 (non-strict direction) on a convex-but-not-strictly-convex
/// error: the hinge evaluation loss is convex in the model, so its expected
/// value is non-decreasing in δ.
#[test]
fn theorem4_convex_hinge_error_is_monotone_in_delta() {
    let (ds, _) = generate_classification(&ClassificationSpec::simulated2(600, 4), 3).unwrap();
    let mut rng = seeded_rng(5);
    let tt = train_test_split(&ds, 0.75, &mut rng).unwrap();
    let model = LogisticRegressionTrainer::new(1e-3)
        .train(&tt.train)
        .unwrap();
    let hinge = nimbus::ml::HingeLoss::new(1e-9).unwrap();
    use nimbus::ml::Loss;

    let mut last = f64::NEG_INFINITY;
    for delta in [0.05, 0.2, 0.8, 3.2] {
        let ncp = Ncp::new(delta).unwrap();
        let reps = 3_000;
        let mut total = 0.0;
        for _ in 0..reps {
            let noisy = GaussianMechanism.perturb(&model, ncp, &mut rng).unwrap();
            total += hinge.value(&noisy, &tt.test).unwrap();
        }
        let mean = total / reps as f64;
        assert!(
            mean >= last - 0.03,
            "hinge expected error decreased: {mean} after {last} at δ = {delta}"
        );
        last = mean;
    }
}

/// The §3.2 restriction pair, end to end, for the Laplace mechanism — the
/// alternative Example 2 closes with: unbiased AND error-monotone, so the
/// entire pricing stack is valid for it too.
#[test]
fn laplace_mechanism_satisfies_both_market_restrictions() {
    use nimbus::core::properties::{check_error_monotonicity, check_unbiased};
    use nimbus::core::square_loss::square_loss;
    let model = LinearModel::new(nimbus::linalg::Vector::from_vec(vec![1.0, -2.0, 3.0]));
    let mut rng = seeded_rng(99);
    let report = check_unbiased(
        &LaplaceMechanism,
        &model,
        Ncp::new(1.5).unwrap(),
        20_000,
        &mut rng,
    )
    .unwrap();
    assert!(report.is_unbiased_within(5.0));

    let grid: Vec<Ncp> = [0.1, 0.4, 1.6]
        .iter()
        .map(|&d| Ncp::new(d).unwrap())
        .collect();
    let m = model.clone();
    let mono = check_error_monotonicity(
        &LaplaceMechanism,
        &model,
        |h| square_loss(h, &m),
        &grid,
        5_000,
        &mut rng,
    )
    .unwrap();
    assert!(mono.is_monotone_within(0.05), "{:?}", mono.curve);
}
