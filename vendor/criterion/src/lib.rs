//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` with `sample_size` / `bench_with_input` / `finish`,
//! `BenchmarkId`, `black_box`) on a simple median-of-samples timer.
//!
//! Behavior matches criterion where it matters to the harness:
//!
//! * `cargo bench` runs each bench with warmup and prints
//!   `name  time: [median ns/iter]` lines;
//! * `cargo test` (which invokes bench executables with `--test`) runs each
//!   bench body exactly once, so benches stay compile- and run-checked
//!   without burning CI time.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one bench within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter, `name/param`.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// Anything usable as a bench name: a `BenchmarkId` or a plain string.
pub trait IntoBenchmarkId {
    /// The rendered bench name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Per-iteration timer handed to bench closures.
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    /// Median per-iteration time measured by the last `iter` call.
    measured: Option<Duration>,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration duration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.measured = Some(Duration::ZERO);
            return;
        }
        // Warmup and calibration: find how many iterations fill ~5ms.
        let mut iters_per_sample: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample = (iters_per_sample * 2).min(1 << 20);
        }
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            per_iter.push(start.elapsed() / iters_per_sample as u32);
        }
        per_iter.sort();
        self.measured = Some(per_iter[per_iter.len() / 2]);
    }
}

fn run_bench(name: &str, test_mode: bool, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        test_mode,
        samples,
        measured: None,
    };
    f(&mut bencher);
    if test_mode {
        println!("test-mode ok: {name}");
    } else {
        match bencher.measured {
            Some(t) => println!("{name:<55} time: [{t:?}/iter]"),
            None => println!("{name:<55} (no measurement: bench never called iter)"),
        }
    }
}

/// The bench harness entry point.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench executables with `--test` under `cargo test`
        // and with `--bench` under `cargo bench`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Runs a standalone bench.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&id.into_id(), self.test_mode, 10, &mut f);
        self
    }

    /// Opens a named group of related benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: 10,
        }
    }
}

/// A group of related benches sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Runs a bench parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_bench(&name, self.criterion.test_mode, self.samples, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Runs an unparameterized bench inside the group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_bench(&name, self.criterion.test_mode, self.samples, &mut f);
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Declares a bench group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_in_bench_mode() {
        let mut b = Bencher {
            test_mode: false,
            samples: 3,
            measured: None,
        };
        let mut counter = 0u64;
        b.iter(|| {
            counter = counter.wrapping_add(1);
            counter
        });
        assert!(b.measured.is_some());
        assert!(counter > 0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut b = Bencher {
            test_mode: true,
            samples: 10,
            measured: None,
        };
        let mut calls = 0;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("dp", 100).into_id(), "dp/100");
        assert_eq!(BenchmarkId::from_parameter(8).into_id(), "8");
    }
}
