//! Offline stand-in for `crossbeam`.
//!
//! Provides the scoped-thread API the workspace uses (`crossbeam::scope`
//! with `Scope::spawn`) on top of `std::thread::scope`, which has subsumed
//! crossbeam's scoped threads since Rust 1.63. One behavioral difference:
//! if a spawned thread panics, `std::thread::scope` propagates the panic at
//! the end of the scope instead of returning `Err`, so the `Err` arm of the
//! returned `Result` is never taken here. Every call site in the workspace
//! immediately `unwrap()`s/`expect()`s the result, so the observable
//! behavior (a panic) is identical.

/// A handle for spawning scoped threads, mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope again so it
    /// can spawn nested threads, as in crossbeam.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.0;
        inner.spawn(move || f(&Scope(inner)))
    }
}

/// Creates a scope in which threads may borrow from the enclosing stack
/// frame; all spawned threads are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope(s))))
}

/// `crossbeam::thread` module alias for callers that use the long path.
pub mod thread {
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = [1u64, 2, 3, 4];
        let sum = std::sync::atomic::AtomicU64::new(0);
        scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let part: u64 = chunk.iter().sum();
                    sum.fetch_add(part, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(sum.into_inner(), 10);
    }

    #[test]
    fn nested_spawn_compiles() {
        let out = scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
