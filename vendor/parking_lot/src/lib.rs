//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the poison-free `parking_lot` API the
//! workspace uses (`Mutex::lock`, `RwLock::read`/`write`, `into_inner`). A
//! poisoned std lock means a panic already happened on another thread while
//! holding the guard; recovering the inner value keeps the `parking_lot`
//! semantics (no poisoning) without unsafe code.

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
