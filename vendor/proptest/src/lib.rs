//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of proptest it uses: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`Just`], `prop::collection::vec`,
//! the [`proptest!`] test macro with `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`, weighted-free [`prop_oneof!`], and [`ProptestConfig`].
//!
//! Differences from upstream, deliberate for an offline test harness:
//!
//! * **No shrinking.** A failing case reports the assertion message (and the
//!   case's RNG seed) but is not minimized.
//! * **Deterministic seeding.** Each `proptest!` test derives its RNG stream
//!   from the test's name, so runs are reproducible without a persistence
//!   file. Set `PROPTEST_CASES` to override the case count globally.

use std::ops::Range;

/// Error produced by a single generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case violated a `prop_assume!` precondition; it is skipped and
    /// does not count toward the case budget.
    Reject(String),
    /// The case failed a `prop_assert!`-style assertion.
    Fail(String),
}

/// Result alias used by the closure each generated case runs in.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the offline suite quick while
        // still exercising each property across a spread of inputs.
        // PROPTEST_CASES overrides for deeper local runs.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

pub mod test_runner {
    /// The per-test random source: SplitMix64, seeded from the test name so
    /// every run of a given test replays the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the deterministic generator for a named test.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound.max(1)
        }

        /// The current seed, reported on failure for reproducibility.
        pub fn state(&self) -> u64 {
            self.state
        }
    }
}

use test_runner::TestRng;

/// A generator of random values of type `Value`.
///
/// Object safe: `sample` takes `&self`, so `Box<dyn Strategy<Value = T>>`
/// (as built by [`prop_oneof!`]) works; the combinators require `Sized`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy returning a fixed value (cloned per case).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// [`Strategy::prop_flat_map`] combinator.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1).max(1) as u64;
                self.start().wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, i64, i32);

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Uniform choice among boxed alternative strategies ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds the union; `arms` must be non-empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Length specification accepted by [`prop::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end.max(r.start + 1),
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod prop {
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec`s whose elements come from `elem`.
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        /// Generates vectors with lengths drawn from `size`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let (lo, hi) = (self.size.lo, self.size.hi);
                let len = lo + rng.below((hi - lo) as u64) as usize;
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }
}

/// Everything a proptest-based test file imports.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs `cases` random instantiations of its body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $( #[test] fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                while accepted < config.cases && attempts < config.cases.saturating_mul(20) {
                    attempts += 1;
                    let case_seed = rng.state();
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )+
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed (case {}, rng state {:#x}): {}",
                                stringify!($name), accepted, case_seed, msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Skips the current case (without failing) when a precondition is unmet.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among alternative strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($arm)),+];
        $crate::Union::new(arms)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let x = (1.5..9.5f64).sample(&mut rng);
            assert!((1.5..9.5).contains(&x));
            let n = (3usize..7).sample(&mut rng);
            assert!((3..7).contains(&n));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::test_runner::TestRng::deterministic("lens");
        let s = prop::collection::vec(0.0..1.0f64, 2..5);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = prop::collection::vec(0.0..1.0f64, 4);
        assert_eq!(exact.sample(&mut rng).len(), 4);
    }

    proptest! {
        #[test]
        fn macro_roundtrip(a in 0u64..100, b in prop::collection::vec(-1.0..1.0f64, 1..4)) {
            prop_assume!(a != 13);
            prop_assert!(a < 100);
            prop_assert_eq!(b.len(), b.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn configured_case_count(x in 0.0..1.0f64) {
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn oneof_and_combinators() {
        let mut rng = crate::test_runner::TestRng::deterministic("oneof");
        let s = prop_oneof![(0usize..3).prop_map(|n| n * 10), Just(99usize),];
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v == 0 || v == 10 || v == 20 || v == 99);
        }
        let dependent = (1usize..4).prop_flat_map(|n| prop::collection::vec(0.0..1.0f64, n));
        for _ in 0..50 {
            let v = dependent.sample(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }
}
