//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the small slice of `rand` it actually uses: a seedable,
//! platform-independent generator ([`rngs::StdRng`]) and the [`Rng::random`]
//! entry point for `u64`/`f64` draws. The generator is xoshiro256++ seeded
//! through SplitMix64 — identical streams for identical seeds on every
//! platform, which is the only property Nimbus relies on (the workspace never
//! assumes the upstream `StdRng` byte stream).

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of primitive values from a bit source.
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform over `u64`; uniform in `[0, 1)`
    /// for `f64`).
    fn random<T: UniformPrimitive>(&mut self) -> T {
        T::from_bits_source(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Primitive types [`Rng::random`] can produce.
pub trait UniformPrimitive {
    /// Draws one value from `rng`.
    fn from_bits_source<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformPrimitive for u64 {
    fn from_bits_source<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformPrimitive for f64 {
    fn from_bits_source<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformPrimitive for u32 {
    fn from_bits_source<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl UniformPrimitive for bool {
    fn from_bits_source<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator behind the workspace's `NimbusRng` alias.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.random::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
